"""Shared memoization infrastructure for the hash-consed ingest path.

Structural interning (:mod:`repro.sqlast.nodes`, :mod:`repro.difftree.dtnodes`)
makes equal subtrees *identical* objects, which turns every pure function
over trees into a memoization candidate: ``parse``, ``wrap_ast``,
``normalize``, ``anti_unify``/``graft``, ``expresses``/``assignment_for``
and ``to_sql`` all consult bounded LRU tables keyed by interned nodes, so
ingestion cost tracks *distinct structure* instead of raw log length.

This module owns the pieces those layers share:

* :class:`BoundedLRU` — the lock-protected LRU dict (moved here from
  :mod:`repro.cost.kernel`, which re-exports it) used by every memo table.
* :class:`IngestCounters` / :data:`INGEST` — process-wide counters
  (parses, intern hits, memo hits, dedup-skipped appends) surfaced in
  :class:`~repro.engine.report.GenerationReport` envelopes.
* The **fast-path gate**: :func:`fast_paths_enabled` /
  :func:`set_fast_paths` / :func:`fast_paths`.  Disabling it makes every
  memoized function recompute from scratch — the pre-interning reference
  path the ingest benchmark compares against for its throughput gate and
  bit-for-bit parity check.
* :func:`clear_memo_caches` — drops every registered memo table (used
  between benchmark modes so both start cold).

Memoized functions are pure, so warm caches never change results — only
how fast they are produced.  Counters are plain ints bumped without a
lock; under concurrent ingestion they are approximate (monotone, may
slightly undercount), which is fine for the diagnostics they feed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Optional


class BoundedLRU:
    """A small dict with least-recently-used eviction.

    Replaces wholesale ``.clear()`` eviction: long serving sessions evict
    one cold entry at a time instead of dropping everything at once.
    Reads refresh recency (Python dicts preserve insertion order, so the
    oldest entry is the first key).

    Thread-safe (like :class:`repro.serve.cache.InterfaceCache`): the
    recency-refresh on ``get`` and the evicting ``__setitem__`` are
    pop-then-reinsert sequences that corrupt the dict if interleaved, so
    every operation holds the lock — evaluators, cost models, and the
    ingest memo tables shared across the concurrent session scheduler's
    workers stay consistent.  ``values()``/``items()`` return
    point-in-time snapshots (callers iterate without holding the lock).

    Every table keeps uniform ``hits`` / ``misses`` / ``evictions``
    counters, snapshotted by :meth:`stats`.  Passing ``name`` registers
    :meth:`stats` as a weak source in the observability registry
    (:data:`repro.obs.REGISTRY`) under ``cache.<name>`` — every memo
    table and cache in the process shows up in one metrics snapshot
    without any scrape-time plumbing at the call sites.
    """

    __slots__ = (
        "capacity",
        "name",
        "hits",
        "misses",
        "evictions",
        "_data",
        "_lock",
        "__weakref__",
    )

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: Dict[Any, Any] = {}
        self._lock = threading.Lock()
        if name is not None:
            from .obs import REGISTRY  # local: keeps module import light

            REGISTRY.register_source(f"cache.{name}", self.stats, weak=True)

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return default
            self.hits += 1
            value = self._data.pop(key)
            self._data[key] = value
            return value

    def stats(self) -> Dict[str, int]:
        """Uniform counter snapshot (stable keys, JSON-native values)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._data),
                "capacity": self.capacity,
            }

    def __setitem__(self, key: Any, value: Any) -> None:
        with self._lock:
            if key in self._data:
                del self._data[key]
            self._data[key] = value
            while len(self._data) > self.capacity:
                del self._data[next(iter(self._data))]
                self.evictions += 1

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def values(self):
        with self._lock:
            return list(self._data.values())

    def items(self):
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


@dataclass
class IngestCounters:
    """Process-wide ingest instrumentation (see :data:`INGEST`).

    Attributes:
        parses: actual parser runs (memo/cache misses).
        parse_memo_hits: ``parse()`` calls served from the global memo.
        node_intern_hits: AST :class:`~repro.sqlast.nodes.Node`
            constructions that returned an existing interned instance.
        dtnode_intern_hits: same, for difftree
            :class:`~repro.difftree.dtnodes.DTNode` constructions.
        wrap_memo_hits: ``wrap_ast()`` calls served from the memo.
        express_memo_hits: ``assignment_for``/``expresses`` memo hits.
        au_memo_hits: memoized ``anti_unify`` subproblem hits.
        graft_memo_hits: memoized top-level ``graft`` hits.
        dedup_skipped_appends: appended queries an existing difftree
            already expressed (``extend_difftree`` skipped the graft).
        text_dedup_hits: appends served by the normalized-text dedup
            tier of :class:`~repro.serve.stream.LogStream`.
    """

    parses: int = 0
    parse_memo_hits: int = 0
    node_intern_hits: int = 0
    dtnode_intern_hits: int = 0
    wrap_memo_hits: int = 0
    express_memo_hits: int = 0
    au_memo_hits: int = 0
    graft_memo_hits: int = 0
    dedup_skipped_appends: int = 0
    text_dedup_hits: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict snapshot (stable keys, JSON-native values)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


#: The process-wide counter instance every layer bumps.
INGEST = IngestCounters()

# Absorb the ingest counters into the observability registry: they stay
# plain unlocked ints on the hot paths, and appear as ``ingest.<field>``
# in every metrics snapshot / Prometheus scrape.
from .obs import REGISTRY as _OBS_REGISTRY  # noqa: E402  (after INGEST exists)

_OBS_REGISTRY.register_source("ingest", INGEST.snapshot)


# -- fast-path gate -------------------------------------------------------------

_fast_paths = True


def fast_paths_enabled() -> bool:
    """Whether the memoized ingest fast paths are active (default: yes)."""
    return _fast_paths


def set_fast_paths(enabled: bool) -> None:
    """Globally enable/disable the memo fast paths (benchmarks/tests)."""
    global _fast_paths
    _fast_paths = bool(enabled)


@contextmanager
def fast_paths(enabled: bool):
    """Temporarily force the fast-path gate (restores the prior setting)."""
    global _fast_paths
    previous = _fast_paths
    _fast_paths = bool(enabled)
    try:
        yield
    finally:
        _fast_paths = previous


# -- columnar gate --------------------------------------------------------------
#
# Second switch in the same style: the array-encoded structural kernels of
# :mod:`repro.difftree.columnar` (anti-unify/graft pair-matching over
# head/fingerprint columns, batch canonical-key hashing).  Columnar is
# subordinate to the fast-path gate — the reference mode
# (``fast_paths(False)``) must be the pure object-walk path, so disabling
# fast paths disables columnar too.

_columnar = True


def columnar_enabled() -> bool:
    """Whether the columnar structural kernels are active (default: yes)."""
    return _columnar and _fast_paths


def set_columnar(enabled: bool) -> None:
    """Globally enable/disable the columnar kernels (benchmarks/tests)."""
    global _columnar
    _columnar = bool(enabled)


@contextmanager
def columnar(enabled: bool):
    """Temporarily force the columnar gate (restores the prior setting)."""
    global _columnar
    previous = _columnar
    _columnar = bool(enabled)
    try:
        yield
    finally:
        _columnar = previous


# -- carry gate -----------------------------------------------------------------
#
# Third switch in the same style: carrying the MCTS search tree across a
# serving session's appends with delta-scoped invalidation
# (:mod:`repro.search.carry`).  Like the columnar gate it is subordinate
# to the fast-path gate — the reference mode (``fast_paths(False)``) must
# re-explore the full decision space from scratch, which doubles as the
# parity oracle the maintainable-search benchmark compares against.

_carry = True


def carry_enabled() -> bool:
    """Whether the cross-append search-tree carry is active (default: yes)."""
    return _carry and _fast_paths


def set_carry(enabled: bool) -> None:
    """Globally enable/disable the search-tree carry (benchmarks/tests)."""
    global _carry
    _carry = bool(enabled)


@contextmanager
def carry(enabled: bool):
    """Temporarily force the carry gate (restores the prior setting)."""
    global _carry
    previous = _carry
    _carry = bool(enabled)
    try:
        yield
    finally:
        _carry = previous


# -- batch gate -----------------------------------------------------------------
#
# Fourth switch in the same style: the vectorized batch cost kernel of
# :mod:`repro.cost.batch` (candidate populations scored as numpy column
# ops instead of one scalar ``set_vector``/``apply_delta`` per
# candidate).  Like the columnar and carry gates it is subordinate to
# the fast-path gate — the reference mode (``fast_paths(False)``) must
# be the scalar per-candidate path, which doubles as the bit-parity
# oracle the batch benchmark compares against.

_batch = True


def batch_enabled() -> bool:
    """Whether the batched cost kernel is active (default: yes)."""
    return _batch and _fast_paths


def set_batch(enabled: bool) -> None:
    """Globally enable/disable the batched cost kernel (benchmarks/tests)."""
    global _batch
    _batch = bool(enabled)


@contextmanager
def batch(enabled: bool):
    """Temporarily force the batch gate (restores the prior setting)."""
    global _batch
    previous = _batch
    _batch = bool(enabled)
    try:
        yield
    finally:
        _batch = previous


# -- memo-table registry --------------------------------------------------------

_CLEARERS: List[Callable[[], None]] = []


def register_cache(clear: Callable[[], None]) -> None:
    """Register a cache-clearing callable for :func:`clear_memo_caches`."""
    _CLEARERS.append(clear)


def memo_table(capacity: int, name: Optional[str] = None) -> BoundedLRU:
    """A :class:`BoundedLRU` auto-registered with :func:`clear_memo_caches`.

    ``name`` additionally registers the table's counters in the
    observability registry (see :class:`BoundedLRU`).
    """
    table = BoundedLRU(capacity, name=name)
    register_cache(table.clear)
    return table


def clear_memo_caches() -> None:
    """Drop every registered memo table (intern tables are weak and stay)."""
    for clear in _CLEARERS:
        clear()
