"""State evaluation: the best widget tree (and cost) of a difftree.

During MCTS the reward of a difftree state is estimated by sampling ``k``
widget assignments and keeping the cheapest (paper: "we randomly assign
widgets to the difftree k times and select the lowest cost"); we seed the
samples with the greedy assignment, which empirically tightens the
estimate at no extra cost.  After the search, the winning difftree gets a
thorough optimization pass: exhaustive enumeration when the decision
product is small, coordinate descent otherwise.

All paths run through the compiled kernel (:mod:`repro.cost.kernel`):
candidates are *decision vectors*, scored against flat arrays with delta
re-evaluation between enumeration neighbors, and only the winning vector
is materialized back into a real widget tree.  Candidate order, RNG
consumption, and tie-breaking replicate the pre-kernel implementations
exactly, so results are bit-for-bit unchanged — just cheaper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import memo as _memo
from ..difftree import DTNode
from ..widgets.tree import ORIENTATIONS, SIZE_CLASSES, WidgetNode
from .batch import STATS as _BATCH_STATS
from .batch import BatchCostKernel
from .kernel import CostBreakdown, CostKernel
from .model import CostModel

#: Population chunk size of the batched enumeration pass: large enough
#: to amortize the per-batch numpy overhead, small enough to keep the
#: nodes × candidates working set in cache.
_ENUM_CHUNK = 256

#: Smallest one-shot population worth compiling a batch kernel for.
#: Measured on the sdss workload: a batch compile costs ~400us and a
#: K=6 population pass only breaks even with six scalar evaluations, so
#: a state scored once (the search layer caches per state) needs K in
#: the mid-teens before the compile amortizes.  Reused batch kernels
#: (coordinate descent) skip this floor.
_MIN_BATCH_POPULATION = 16


def _batch_for(
    model: CostModel, tree: DTNode, population: int, reused: bool = False
) -> Optional[BatchCostKernel]:
    """The batch kernel when batching ``population`` candidates pays off.

    ``None`` routes the caller to the scalar path: the gate is off, the
    population is too small for a one-shot batch to beat scalar deltas
    (see ``_MIN_BATCH_POPULATION``; ``reused=True`` lifts the floor for
    callers that score many populations against one kernel), or batch
    compilation is unavailable — only the last case counts as a
    *fallback* (the batched path was wanted but could not run).
    """
    if population < (2 if reused else _MIN_BATCH_POPULATION):
        return None
    if not _memo.batch_enabled():
        return None
    batch = model.batch_kernel_for(tree)
    if batch is None:
        _BATCH_STATS.fallback_scalar_evals += population
        model.kernel_stats.batch_fallback_evals += population
    return batch


@dataclass(frozen=True)
class EvaluatedInterface:
    """A widget tree together with its cost under a model."""

    tree: DTNode
    widget_tree: WidgetNode
    breakdown: CostBreakdown

    @property
    def cost(self) -> float:
        return self.breakdown.total

    @property
    def rank(self):
        """Feasibility-aware comparison key (see CostBreakdown.rank)."""
        return self.breakdown.rank


def _materialized(
    kernel: CostKernel, vector: Sequence[object], breakdown: CostBreakdown
) -> EvaluatedInterface:
    return EvaluatedInterface(
        kernel.tree, kernel.materialize(vector), breakdown
    )


def sampled_evaluation(
    model: CostModel,
    tree: DTNode,
    k: int = 5,
    rng: Optional[random.Random] = None,
    include_greedy: bool = True,
) -> EvaluatedInterface:
    """Best of ``k`` sampled widget assignments for ``tree``.

    Samples are decision vectors drawn with the same RNG consumption as
    chooser-driven derivation; only the winner becomes a widget tree.
    """
    rng = rng or random.Random(0)
    kernel = model.kernel_for(tree)
    vectors: List[List[object]] = []
    if include_greedy:
        vectors.append(kernel.schema.greedy_vector())
        k = max(0, k - 1)
    for _ in range(k):
        vectors.append(kernel.schema.random_vector(rng))
    # RNG consumption is complete before any scoring happens, so the
    # batched and scalar paths see identical sample populations — the
    # batch gate changes throughput, never results.
    batch = _batch_for(model, tree, len(vectors))
    if batch is not None:
        bb = batch.evaluate_population(vectors)
        j = bb.best_index()
        return _materialized(kernel, tuple(vectors[j]), bb.breakdown(j))
    best_vector: Optional[Tuple[object, ...]] = None
    best: Optional[CostBreakdown] = None
    for vector in vectors:
        breakdown = kernel.evaluate(vector)
        if best is None or breakdown.rank < best.rank:
            best = breakdown
            best_vector = tuple(vector)
    assert best is not None and best_vector is not None
    return _materialized(kernel, best_vector, best)


def exhaustive_evaluation(
    model: CostModel, tree: DTNode, cap: int = 4000
) -> EvaluatedInterface:
    """Best widget tree over the (capped) full decision product.

    Enumerates decision vectors with per-candidate delta re-evaluation
    (the kernel patches only what each single choice change touched).
    Falls back to coordinate descent when the product exceeds ``cap`` —
    the cap keeps the paper's "enumerate all possible widget trees for
    the final difftree" tractable for large interfaces.
    """
    kernel = model.kernel_for(tree)
    if kernel.schema.num_assignments <= cap:
        batch = _batch_for(
            model, tree, min(kernel.schema.num_assignments, cap)
        )
        if batch is not None:
            return _batched_enumeration(kernel, batch, cap)
        best_vector: Optional[Tuple[object, ...]] = None
        best: Optional[CostBreakdown] = None
        for vector, breakdown in kernel.iter_enumeration(cap=cap):
            if best is None or breakdown.rank < best.rank:
                best = breakdown
                best_vector = vector
        assert best is not None and best_vector is not None
        return _materialized(kernel, best_vector, best)
    return coordinate_descent(model, tree)


def _batched_enumeration(
    kernel: CostKernel, batch: BatchCostKernel, cap: int
) -> EvaluatedInterface:
    """Score the enumeration product in delta-fed population chunks.

    Candidate order, winner, and tie-breaking match
    :meth:`CostKernel.iter_enumeration` exactly (see
    :meth:`BatchCostKernel.enumerate_best`).
    """
    vector, breakdown = batch.enumerate_best(cap=cap, chunk=_ENUM_CHUNK)
    return _materialized(kernel, vector, breakdown)


def coordinate_descent(
    model: CostModel, tree: DTNode, max_rounds: int = 6
) -> EvaluatedInterface:
    """Optimize decisions one at a time until a fixpoint (local optimum).

    Each trial move is one kernel delta (patch + breakdown), not a full
    rebuild; the loop structure and visit order match the pre-kernel
    implementation so the fixpoint is identical.  With the batch gate on,
    each index's whole option population is scored in one batched call —
    the first-minimum column reproduces the scalar scan's sequential
    takeover semantics exactly, so the fixpoint (and every breakdown
    field) is unchanged.
    """
    kernel = model.kernel_for(tree)
    batch = _batch_for(model, tree, 2, reused=True)
    if batch is not None:
        return _coordinate_descent_batched(kernel, batch, max_rounds)
    schema = kernel.schema
    widget_indices = schema.widget_indices
    orientation_indices = schema.orientation_indices
    vector = schema.greedy_vector()
    kernel.set_vector(vector)
    current = kernel.breakdown()
    best_vector = tuple(vector)
    for _ in range(max_rounds):
        improved = False
        for index in widget_indices:
            original = vector[index]
            for name in schema.decisions[index].candidates:
                for size_class in SIZE_CLASSES:
                    if (name, size_class) == original:
                        continue
                    vector[index] = (name, size_class)
                    kernel.apply_delta(index, (name, size_class))
                    candidate = kernel.breakdown()
                    if candidate.rank < current.rank:
                        current = candidate
                        original = (name, size_class)
                        best_vector = tuple(vector)
                        improved = True
            vector[index] = original
            kernel.apply_delta(index, original)
        for index in orientation_indices:
            original = vector[index]
            for orientation in ORIENTATIONS:
                if orientation == original:
                    continue
                vector[index] = orientation
                kernel.apply_delta(index, orientation)
                candidate = kernel.breakdown()
                if candidate.rank < current.rank:
                    current = candidate
                    original = orientation
                    best_vector = tuple(vector)
                    improved = True
            vector[index] = original
            kernel.apply_delta(index, original)
        if not improved:
            break
    return _materialized(kernel, best_vector, current)


def _coordinate_descent_batched(
    kernel: CostKernel, batch: BatchCostKernel, max_rounds: int
) -> EvaluatedInterface:
    """Coordinate descent with per-index option populations batched.

    Equivalent to the scalar scan: within one index, a scalar takeover
    chain always ends on the *first* candidate attaining the scan's
    minimal rank (each takeover strictly lowers the bar, and nothing
    after the first global minimum can beat it) — which is exactly
    ``best_index``'s first-minimum column.  ``improved`` is then "the
    scan minimum beat the rank current at scan start".
    """
    schema = kernel.schema
    vector = schema.greedy_vector()
    kernel.set_vector(vector)
    current = kernel.breakdown()
    current_rank = current.rank
    best_vector = tuple(vector)
    for _ in range(max_rounds):
        improved = False
        for index in schema.enumeration_indices:
            original = vector[index]
            options = [o for o in schema.options_for(index) if o != original]
            if not options:
                continue
            population: List[Tuple[object, ...]] = []
            for option in options:
                vector[index] = option
                population.append(tuple(vector))
            vector[index] = original
            bb = batch.evaluate_population(population)
            j = bb.best_index()
            rank = bb.rank(j)
            if rank < current_rank:
                current = bb.breakdown(j)
                current_rank = rank
                vector[index] = options[j]
                best_vector = tuple(vector)
                improved = True
        if not improved:
            break
    return _materialized(kernel, best_vector, current)


def worst_sampled_evaluation(
    model: CostModel,
    tree: DTNode,
    k: int = 20,
    rng: Optional[random.Random] = None,
) -> EvaluatedInterface:
    """The *worst feasible* of ``k`` random widget assignments.

    Used to regenerate paper Figure 6(d): a low-reward interface showing
    that poor widget choices are easily possible.
    """
    rng = rng or random.Random(0)
    kernel = model.kernel_for(tree)
    sampled = [kernel.schema.random_vector(rng) for _ in range(k)]
    batch = _batch_for(model, tree, len(sampled))
    if batch is not None:
        bb = batch.evaluate_population(sampled)
        j = bb.worst_index()
        return _materialized(kernel, tuple(sampled[j]), bb.breakdown(j))
    worst: Optional[CostBreakdown] = None
    worst_vector: Optional[Tuple[object, ...]] = None
    fallback: Optional[CostBreakdown] = None
    fallback_vector: Optional[Tuple[object, ...]] = None
    for vector in sampled:
        breakdown = kernel.evaluate(vector)
        if fallback is None or breakdown.total > fallback.total:
            fallback = breakdown
            fallback_vector = tuple(vector)
        if breakdown.feasible and (worst is None or breakdown.total > worst.total):
            worst = breakdown
            worst_vector = tuple(vector)
    breakdown = worst if worst is not None else fallback
    vector = worst_vector if worst_vector is not None else fallback_vector
    assert breakdown is not None and vector is not None
    return _materialized(kernel, vector, breakdown)
