"""State evaluation: the best widget tree (and cost) of a difftree.

During MCTS the reward of a difftree state is estimated by sampling ``k``
widget assignments and keeping the cheapest (paper: "we randomly assign
widgets to the difftree k times and select the lowest cost"); we seed the
samples with the greedy assignment, which empirically tightens the
estimate at no extra cost.  After the search, the winning difftree gets a
thorough optimization pass: exhaustive enumeration when the decision
product is small, coordinate descent otherwise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..difftree import DTNode
from ..widgets.tree import (
    ORIENTATIONS,
    GreedyChooser,
    RandomChooser,
    ReplayChooser,
    SIZE_CLASSES,
    WidgetNode,
    decision_space,
    derive_widget_tree,
    enumerate_widget_trees,
)
from .model import CostBreakdown, CostModel


@dataclass(frozen=True)
class EvaluatedInterface:
    """A widget tree together with its cost under a model."""

    tree: DTNode
    widget_tree: WidgetNode
    breakdown: CostBreakdown

    @property
    def cost(self) -> float:
        return self.breakdown.total

    @property
    def rank(self):
        """Feasibility-aware comparison key (see CostBreakdown.rank)."""
        return self.breakdown.rank


def sampled_evaluation(
    model: CostModel,
    tree: DTNode,
    k: int = 5,
    rng: Optional[random.Random] = None,
    include_greedy: bool = True,
) -> EvaluatedInterface:
    """Best of ``k`` sampled widget assignments for ``tree``."""
    rng = rng or random.Random(0)
    best: Optional[EvaluatedInterface] = None
    samples = []
    if include_greedy:
        samples.append(derive_widget_tree(tree, GreedyChooser()))
        k = max(0, k - 1)
    for _ in range(k):
        samples.append(derive_widget_tree(tree, RandomChooser(rng)))
    for widget_tree in samples:
        breakdown = model.evaluate(tree, widget_tree)
        candidate = EvaluatedInterface(tree, widget_tree, breakdown)
        if best is None or candidate.rank < best.rank:
            best = candidate
    assert best is not None
    return best


def exhaustive_evaluation(
    model: CostModel, tree: DTNode, cap: int = 4000
) -> EvaluatedInterface:
    """Best widget tree over the (capped) full decision product.

    Falls back to coordinate descent when the product exceeds ``cap`` —
    the cap keeps the paper's "enumerate all possible widget trees for the
    final difftree" tractable for large interfaces.
    """
    space = decision_space(tree)
    if space.num_assignments <= cap:
        best: Optional[EvaluatedInterface] = None
        for widget_tree in enumerate_widget_trees(tree, cap=cap):
            breakdown = model.evaluate(tree, widget_tree)
            candidate = EvaluatedInterface(tree, widget_tree, breakdown)
            if best is None or candidate.rank < best.rank:
                best = candidate
        assert best is not None
        return best
    return coordinate_descent(model, tree)


def coordinate_descent(
    model: CostModel, tree: DTNode, max_rounds: int = 6
) -> EvaluatedInterface:
    """Optimize decisions one at a time until a fixpoint (local optimum)."""
    space = decision_space(tree)
    widgets = {path: (options[0], "M") for path, options in space.widget_options.items()}
    orientations = {path: "vertical" for path in space.orientation_points}

    def build_and_cost() -> EvaluatedInterface:
        widget_tree = derive_widget_tree(
            tree, ReplayChooser(dict(widgets), dict(orientations))
        )
        return EvaluatedInterface(tree, widget_tree, model.evaluate(tree, widget_tree))

    current = build_and_cost()
    for _ in range(max_rounds):
        improved = False
        for path, options in sorted(space.widget_options.items()):
            original = widgets[path]
            for name in options:
                for size_class in SIZE_CLASSES:
                    if (name, size_class) == original:
                        continue
                    widgets[path] = (name, size_class)
                    candidate = build_and_cost()
                    if candidate.rank < current.rank:
                        current = candidate
                        original = (name, size_class)
                        improved = True
            widgets[path] = original
        for path in space.orientation_points:
            original_o = orientations[path]
            for orientation in ORIENTATIONS:
                if orientation == original_o:
                    continue
                orientations[path] = orientation
                candidate = build_and_cost()
                if candidate.rank < current.rank:
                    current = candidate
                    original_o = orientation
                    improved = True
            orientations[path] = original_o
        if not improved:
            break
    return current


def worst_sampled_evaluation(
    model: CostModel,
    tree: DTNode,
    k: int = 20,
    rng: Optional[random.Random] = None,
) -> EvaluatedInterface:
    """The *worst feasible* of ``k`` random widget assignments.

    Used to regenerate paper Figure 6(d): a low-reward interface showing
    that poor widget choices are easily possible.
    """
    rng = rng or random.Random(0)
    worst: Optional[EvaluatedInterface] = None
    fallback: Optional[EvaluatedInterface] = None
    for _ in range(k):
        widget_tree = derive_widget_tree(tree, RandomChooser(rng))
        breakdown = model.evaluate(tree, widget_tree)
        candidate = EvaluatedInterface(tree, widget_tree, breakdown)
        if fallback is None or candidate.cost > fallback.cost:
            fallback = candidate
        if breakdown.feasible and (worst is None or candidate.cost > worst.cost):
            worst = candidate
    result = worst or fallback
    assert result is not None
    return result
