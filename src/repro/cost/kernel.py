"""Compiled cost-evaluation kernel: flat arrays + delta re-evaluation.

The search spends nearly all of its time scoring candidate widget trees,
and the reference implementation (:meth:`CostModel.evaluate_reference`)
recomputes everything from scratch per candidate: it re-walks the tree
for ``Σ M(w)``, re-diffs the per-query assignments into changed-choice
sets for every candidate, and chases parent pointers through dict-by-
``id()`` indexes for every Steiner term.  Almost none of that work
depends on the candidate: every widget tree derived from one difftree
shares the same *topology* (decisions only swap widget types/sizes and
box orientations — see :func:`repro.widgets.tree.decision_schema`), so
the per-pair changed-choice sets, the touched-widget sets, and even the
Steiner subtree sizes are invariants of the (difftree, query log) pair.

The kernel is a two-level pipeline:

* **Level 1 — :class:`CompiledSequence`** (per difftree × query log):
  choice assignments of every query plus the per-consecutive-pair
  changed choice-path sets, computed exactly once and interned as
  path→int ids (:class:`repro.difftree.CompiledChanges`).  Supports
  :meth:`CompiledSequence.extend` so an append-only serving session only
  diffs the newly appended pairs.

* **Level 2 — :class:`CostKernel`** (per difftree): the greedy skeleton
  flattened into parallel arrays (parent index, depth, preorder/Euler
  first-visit order — which *is* the flat index — plus per-node
  appropriateness/effort/size tables per widget-type option).
  ``set_vector()`` scores a full decision vector with array lookups
  (Steiner via sort-by-tour + pairwise LCA on int arrays, ``M`` and
  layout as running sums over the arrays), and ``apply_delta()``
  re-evaluates after a single decision change by patching only the node
  it touched, its ancestor chain of bounding boxes, and the query pairs
  whose changed-choice sets include it.

Bitwise-parity invariant
    ``apply_delta`` followed by :meth:`CostKernel.breakdown` must equal
    a from-scratch :meth:`CostModel.evaluate_reference` of the
    materialized widget tree on **every** :class:`CostBreakdown` field,
    bit for bit.  All float accumulations therefore replay the reference
    order: ``M`` sums in preorder, pair efforts in sorted-choice-path
    order, pair costs in pair order, and box arithmetic child-by-child.
    Patches never update a float total in place — they re-run the small
    affected sum over cached, bitwise-identical inputs.  The
    differential test suite (``tests/test_cost_kernel.py``) enforces
    this on randomized difftree/widget-tree/workload triples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import memo as _memo
from ..difftree import DTNode, Path, assignment_for
from ..difftree.columnar import Topology
from ..difftree.express import (
    Assignment,
    CompiledChanges,
    changed_choice_sets,
    changed_choices,
)
from ..layout.boxes import BOX_GAP, BOX_PADDING, HEADER_HEIGHT, TITLE_HEIGHT, Screen
from ..memo import BoundedLRU
from ..sqlast import nodes as N
from ..widgets.domain import ChoiceDomain
from ..widgets.library import SIZE_CLASSES, widget_type
from ..widgets.tree import (
    ORIENTATIONS,
    DecisionSchema,
    OrientationDecision,
    ReplayChooser,
    WidgetDecision,
    WidgetNode,
    decision_schema,
    derive_widget_tree,
)

__all__ = [
    "BoundedLRU",  # re-exported from repro.memo (historical home)
    "CompiledSequence",
    "CostBreakdown",
    "CostKernel",
    "CostWeights",
    "KernelStats",
]


@dataclass(frozen=True)
class CostWeights:
    """Linear weights of the cost terms.

    Attributes:
        m: weight of the appropriateness sum Σ M(w).
        u: weight of the sequence-usability sum Σ U.  The default keeps
            one widget interaction roughly comparable to a fraction of an
            appropriateness point, so a fine-grained interface that takes
            a few more clicks per log step still beats one giant
            whole-query chooser (the paper's preferred trade-off, cf.
            Figure 6(a) versus Figure 2(a)-style interfaces).
        steiner: weight (inside U) of the connecting-subtree size.
        effort: weight (inside U) of per-widget interaction effort.
    """

    m: float = 1.0
    u: float = 0.3
    steiner: float = 0.25
    effort: float = 1.0


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized cost of one widget tree for one query sequence."""

    m_cost: float
    u_cost: float
    feasible: bool
    width: float
    height: float
    steiner_nodes: int = 0
    effort: float = 0.0
    pair_costs: Tuple[float, ...] = ()
    overflow_w: float = 0.0
    overflow_h: float = 0.0

    @property
    def total(self) -> float:
        if not self.feasible:
            return math.inf
        return self.m_cost + self.u_cost

    @property
    def rank(self) -> Tuple[int, float]:
        """Total order usable even among invalid interfaces.

        Feasible interfaces compare by cost; infeasible ones compare by
        how far they overflow the screen (then by finite cost), so
        optimizers have a gradient toward feasibility instead of a flat
        infinite plateau.
        """
        if self.feasible:
            return (0, self.m_cost + self.u_cost)
        return (1, self.overflow_w + self.overflow_h + self.m_cost + self.u_cost)


@dataclass
class KernelStats:
    """Counters of compiled-kernel activity (one instance per model).

    Per-run totals are absorbed into the process-wide observability
    registry (``cost.kernel.*``) when a search task delivers its result
    — see ``repro.search.common`` — so the hot eval/delta paths keep
    bumping plain ints with no indirection.
    """

    kernels_compiled: int = 0
    sequences_compiled: int = 0
    sequences_extended: int = 0
    full_evals: int = 0
    delta_evals: int = 0
    adopted_evals: int = 0
    fallback_evals: int = 0
    #: Candidates scored through the batched population path
    #: (:mod:`repro.cost.batch`) instead of per-candidate set_vector.
    batched_evals: int = 0
    #: Candidates that wanted the batched path (gate on) but fell back
    #: to scalar evaluation — numpy missing or batch compile failed.
    batch_fallback_evals: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict snapshot (stable keys, JSON-native values)."""
        from dataclasses import fields

        return {f.name: getattr(self, f.name) for f in fields(self)}


# BoundedLRU moved to repro.memo (shared with the ingest memo tables);
# re-exported above for its historical importers.


# -- Level 1: the compiled query sequence ---------------------------------------


_UNSET = object()


@dataclass
class CompiledSequence:
    """Per-(difftree, query log) assignments and interned changed sets.

    Attributes:
        queries: the query log the sequence was compiled for.
        assignments: one choice assignment per query, or ``None`` when
            some query is not expressible by the difftree.
        changes: the per-consecutive-pair changed choice paths, interned
            as path→int ids (``None`` iff ``assignments`` is).
    """

    queries: Tuple[N.Node, ...]
    assignments: Optional[List[Assignment]]
    changes: Optional[CompiledChanges]

    @property
    def ok(self) -> bool:
        return self.assignments is not None

    @classmethod
    def compile(
        cls,
        tree: DTNode,
        queries: Sequence[N.Node],
        assignments: Any = _UNSET,
    ) -> "CompiledSequence":
        """Compile the sequence, reusing precomputed ``assignments`` if given."""
        if assignments is _UNSET:
            computed: Optional[List[Assignment]] = []
            for query in queries:
                assignment = assignment_for(tree, query)
                if assignment is None:
                    computed = None
                    break
                computed.append(assignment)
            assignments = computed
        if assignments is None:
            return cls(queries=tuple(queries), assignments=None, changes=None)
        assignments = list(assignments)
        return cls(
            queries=tuple(queries),
            assignments=assignments,
            changes=CompiledChanges.compile(assignments),
        )

    def extend(
        self, tree: DTNode, new_queries: Sequence[N.Node]
    ) -> "CompiledSequence":
        """Sequence for ``queries + new_queries``, diffing only new pairs.

        Valid only when ``tree`` is the same difftree this sequence was
        compiled for (the caller checks canonical keys): existing
        assignments and pair sets are reused verbatim; the appended
        queries are matched and the boundary + appended pairs diffed.
        Matching goes through the fingerprint-memoized
        :func:`~repro.difftree.assignment_for`, so appending a query
        shape this difftree has matched before re-walks nothing.
        """
        if not new_queries:
            return self
        all_queries = self.queries + tuple(new_queries)
        if not self.ok:
            return CompiledSequence(queries=all_queries, assignments=None, changes=None)
        tail: List[Assignment] = []
        for query in new_queries:
            assignment = assignment_for(tree, query)
            if assignment is None:
                return CompiledSequence(
                    queries=all_queries, assignments=None, changes=None
                )
            tail.append(assignment)
        assignments = list(self.assignments) + tail
        boundary = [self.assignments[-1]] + tail if self.assignments else tail
        tail_pairs = changed_choice_sets(boundary)
        changes = (
            self.changes.extended(tail_pairs)
            if self.changes is not None
            else CompiledChanges.compile(assignments)
        )
        return CompiledSequence(
            queries=all_queries, assignments=assignments, changes=changes
        )

    def without(
        self, indices: Sequence[int]
    ) -> Tuple["CompiledSequence", int]:
        """Sequence with the queries at ``indices`` removed.

        The retention-window primitive: surviving assignments and pair
        sets are reused verbatim; only the *rejoined* boundary pairs —
        consecutive survivors that were not adjacent before the removal
        — are re-diffed.  A retired prefix of ``k`` queries therefore
        recomputes at most one pair, however long the log.

        Returns ``(new_sequence, pairs_rediffed)``; pair order is
        preserved, so downstream float accumulations stay bitwise
        identical to a from-scratch compile of the surviving log.
        """
        dropped = {i for i in indices if 0 <= i < len(self.queries)}
        if not dropped:
            return self, 0
        keep = [i for i in range(len(self.queries)) if i not in dropped]
        queries = tuple(self.queries[i] for i in keep)
        if not self.ok:
            return (
                CompiledSequence(queries=queries, assignments=None, changes=None),
                0,
            )
        assignments = [self.assignments[i] for i in keep]
        pair_paths: List[Tuple[Path, ...]] = []
        rediffed = 0
        for a, b in zip(keep, keep[1:]):
            if b == a + 1:
                pair_paths.append(self.changes.pair_paths[a])
            else:
                pair_paths.append(
                    tuple(
                        changed_choices(
                            self.assignments[a], self.assignments[b]
                        )
                    )
                )
                rediffed += 1
        return (
            CompiledSequence(
                queries=queries,
                assignments=assignments,
                changes=CompiledChanges.from_pair_paths(pair_paths),
            ),
            rediffed,
        )


# -- Level 2: the flat widget-tree evaluator ------------------------------------


class CostKernel:
    """Flat-array evaluator for every widget tree of one difftree.

    Compile once per (difftree, query log, screen, weights); then score
    decision vectors via :meth:`set_vector` / :meth:`apply_delta` +
    :meth:`breakdown`, adopt externally derived widget trees via
    :meth:`adopt`, and materialize a winning vector back into a real
    :class:`~repro.widgets.tree.WidgetNode` tree via :meth:`materialize`.

    Invariant: for any reachable decision state, :meth:`breakdown`
    equals ``CostModel.evaluate_reference(tree, materialize(vector))``
    on every field — including after arbitrary chains of
    :meth:`apply_delta` (delta re-evaluation must equal full
    evaluation).
    """

    def __init__(
        self,
        tree: DTNode,
        sequence: CompiledSequence,
        screen: Screen,
        weights: CostWeights,
        stats: Optional[KernelStats] = None,
    ) -> None:
        self.tree = tree
        self.sequence = sequence
        self.screen = screen
        self.weights = weights
        self.stats = stats if stats is not None else KernelStats()
        skeleton, schema = decision_schema(tree)
        self.schema = schema
        self._flatten(skeleton)
        self._bind_decisions()
        self._compile_pairs()
        # Mutable candidate state: current decision vector + derived values.
        self._vector: List[object] = []
        self.set_vector(schema.greedy_vector())

    # -- compilation ---------------------------------------------------------

    def _flatten(self, skeleton: WidgetNode) -> None:
        """Preorder-flatten the skeleton into parallel arrays.

        The flat index is the DFS first-visit (Euler tour) order — the
        sort key of the Steiner computation — and matches the iteration
        order of ``WidgetNode.walk()`` so ``M`` sums accumulate in the
        reference order.
        """
        parent: List[int] = []
        depth: List[int] = []
        children: List[Tuple[int, ...]] = []
        titles: List[str] = []
        choice_paths: List[Optional[Path]] = []
        orientation_paths: List[Optional[Path]] = []
        domains: List[Optional[ChoiceDomain]] = []
        fixed_name: List[str] = []
        fixed_size: List[str] = []

        stack: List[Tuple[WidgetNode, int]] = [(skeleton, -1)]
        while stack:
            node, parent_idx = stack.pop()
            index = len(parent)
            parent.append(parent_idx)
            depth.append(0 if parent_idx < 0 else depth[parent_idx] + 1)
            children.append(())  # filled below once child indexes exist
            titles.append(node.title)
            choice_paths.append(node.choice_path)
            orientation_paths.append(node.orientation_path)
            domains.append(node.domain)
            fixed_name.append(node.widget)
            fixed_size.append(node.size_class)
            stack.extend((child, index) for child in reversed(node.children))

        kid_lists: List[List[int]] = [[] for _ in parent]
        for index, parent_idx in enumerate(parent):
            if parent_idx >= 0:
                kid_lists[parent_idx].append(index)
        # Reversed-push preorder emits a parent's children in order, so
        # the ascending flat indexes collected here are already in child
        # order — required for order-sensitive box sums.
        children = [tuple(kids) for kids in kid_lists]

        self._parent = parent
        self._depth = depth
        self._children = children
        self._title = titles
        self._choice_path = choice_paths
        self._orientation_path = orientation_paths
        self._domain = domains
        self._fixed_name = fixed_name
        self._fixed_size = fixed_size
        self._num_nodes = len(parent)
        #: Preallocated candidate-state buffers: ``set_vector`` refills
        #: these in place instead of reallocating four lists per call
        #: (every slot is overwritten on each full load, so no reset is
        #: needed between candidates).
        self._name: List[str] = list(fixed_name)
        self._size: List[str] = list(fixed_size)
        self._box_w: List[float] = [0.0] * self._num_nodes
        self._box_h: List[float] = [0.0] * self._num_nodes
        #: Per-node lazy caches: name -> M(w); (name, size) -> effort/box.
        self._m_table: List[Dict[str, float]] = [{} for _ in parent]
        self._eff_table: List[Dict[Tuple[str, str], float]] = [{} for _ in parent]
        self._size_table: List[Dict[Tuple[str, str], Tuple[float, float]]] = [
            {} for _ in parent
        ]

    def _bind_decisions(self) -> None:
        """Map schema decision indexes <-> flat node indexes."""
        by_choice_path = {
            path: i
            for i, path in enumerate(self._choice_path)
            if path is not None
        }
        by_orientation_path = {
            path: i
            for i, path in enumerate(self._orientation_path)
            if path is not None
        }
        self._widget_dec = [-1] * self._num_nodes
        self._orient_dec = [-1] * self._num_nodes
        self._dec_node: List[int] = []
        for d, decision in enumerate(self.schema.decisions):
            if isinstance(decision, WidgetDecision):
                node = by_choice_path[decision.path]
                self._widget_dec[node] = d
            else:
                node = by_orientation_path[decision.path]
                self._orient_dec[node] = d
            self._dec_node.append(node)

    def _compile_pairs(self) -> None:
        """Touched-widget sets and Steiner sizes per consecutive pair.

        Both are invariants of the (difftree, query log) pair: the
        changed choice paths come from the compiled sequence, the widget
        topology from the skeleton — no candidate ever changes them.
        """
        self._pair_touched: List[Tuple[int, ...]] = []
        self._pair_steiner: List[int] = []
        self.topology: Optional[Topology] = None
        node_pairs: List[List[int]] = [[] for _ in range(self._num_nodes)]
        if self.sequence.ok and self.sequence.changes is not None:
            changes = self.sequence.changes
            by_choice_path = {
                path: i
                for i, path in enumerate(self._choice_path)
                if path is not None
            }
            # id -> flat node (or -1): ids ascend in lexicographic path
            # order, so iterating a pair's sorted ids visits widgets in
            # the reference (sorted changed-path) order.
            id_to_node = [by_choice_path.get(path, -1) for path in changes.paths]
            # Binary-lifting LCA over the flat parent array (the same
            # Euler encoding ColumnarTree uses): O(log n) per distance
            # instead of a parent-chain walk, int-exact either way — the
            # reference walk stays below as the ``fast_paths(False)``
            # parity oracle.
            if changes.pair_ids and _memo.columnar_enabled():
                self.topology = Topology(self._parent)
            steiner = (
                self._steiner_size
                if self.topology is None
                else self.topology.steiner_size
            )
            for p, pair in enumerate(changes.pair_ids):
                touched = tuple(
                    id_to_node[i] for i in pair if id_to_node[i] >= 0
                )
                self._pair_touched.append(touched)
                self._pair_steiner.append(steiner(touched))
                for node in touched:
                    node_pairs[node].append(p)
        self._node_pairs: List[Tuple[int, ...]] = [tuple(ps) for ps in node_pairs]
        self._num_pairs = len(self._pair_touched)
        # Preallocated pair buffers (refilled in place by set_vector —
        # every pair is refreshed on a full load).
        self._pair_effort: List[float] = [0.0] * self._num_pairs
        self._pair_cost: List[float] = [0.0] * self._num_pairs

    def _steiner_size(self, touched: Tuple[int, ...]) -> int:
        """Node count of the minimal subtree connecting ``touched``.

        Classic virtual-tree identity: sort targets by Euler first-visit
        order (the flat index), sum pairwise distances around the cycle;
        every Steiner edge is traversed exactly twice, so the node count
        is ``total // 2 + 1``.
        """
        k = len(touched)
        if k == 0:
            return 0
        if k == 1:
            return 1
        order = sorted(touched)
        total = 0
        for a, b in zip(order, order[1:]):
            total += self._distance(a, b)
        total += self._distance(order[-1], order[0])
        return total // 2 + 1

    def _distance(self, a: int, b: int) -> int:
        parent, depth = self._parent, self._depth
        da, db = depth[a], depth[b]
        dist = 0
        while da > db:
            a = parent[a]
            da -= 1
            dist += 1
        while db > da:
            b = parent[b]
            db -= 1
            dist += 1
        while a != b:
            a = parent[a]
            b = parent[b]
            dist += 2
        return dist

    # -- per-node value tables ------------------------------------------------

    def _m_of(self, i: int, name: str) -> float:
        table = self._m_table[i]
        value = table.get(name)
        if value is None:
            value = widget_type(name).appropriateness(self._domain[i])
            table[name] = value
        return value

    def _eff_of(self, i: int, name: str, size_class: str) -> float:
        table = self._eff_table[i]
        key = (name, size_class)
        value = table.get(key)
        if value is None:
            value = widget_type(name).effort(self._domain[i], size_class)
            table[key] = value
        return value

    def _wsize_of(self, i: int, name: str, size_class: str) -> Tuple[float, float]:
        table = self._size_table[i]
        key = (name, size_class)
        value = table.get(key)
        if value is None:
            value = widget_type(name).size(self._domain[i], size_class)
            table[key] = value
        return value

    # -- layout (mirrors repro.layout.boxes.measure, over arrays) -------------

    def _compute_box(self, i: int) -> Tuple[float, float]:
        name = self._name[i]
        kids = self._children[i]
        box_w, box_h = self._box_w, self._box_h
        if name in ("vertical", "horizontal"):
            if not kids:
                return (0.0, 0.0)
            gaps = BOX_GAP * (len(kids) - 1)
            if name == "vertical":
                width = max(box_w[k] for k in kids)
                height = sum(box_h[k] for k in kids) + gaps
            else:
                width = sum(box_w[k] for k in kids) + gaps
                height = max(box_h[k] for k in kids)
            width = width + 2 * BOX_PADDING
            height = height + 2 * BOX_PADDING
            if self._title[i]:
                height = height + TITLE_HEIGHT
            return (width, height)
        if name == "tabs":
            header = self._wsize_of(i, name, self._size[i])
            if kids:
                content_w = max(box_w[k] for k in kids)
                content_h = max(box_h[k] for k in kids)
            else:
                content_w = content_h = 0.0
            width = max(header[0], content_w)
            height = HEADER_HEIGHT + content_h
            return (width + 2 * BOX_PADDING, height + 2 * BOX_PADDING)
        if name == "adder":
            buttons = self._wsize_of(i, name, self._size[i])
            if kids:
                gaps = BOX_GAP * (len(kids) - 1)
                content_w = max(box_w[k] for k in kids)
                content_h = sum(box_h[k] for k in kids) + gaps
            else:
                content_w = content_h = 0.0
            width = max(buttons[0], content_w)
            height = buttons[1] + content_h + BOX_GAP
            return (width + 2 * BOX_PADDING, height + 2 * BOX_PADDING)
        width, height = self._wsize_of(i, name, self._size[i])
        if self._title[i]:
            height = height + TITLE_HEIGHT
            width = max(width, 7.0 * len(self._title[i]))
        return (width, height)

    def _refresh_box(self, i: int) -> None:
        width, height = self._compute_box(i)
        self._box_w[i] = width
        self._box_h[i] = height

    # -- candidate state ------------------------------------------------------

    def set_vector(self, vector: Sequence[object]) -> None:
        """Load a full decision vector and recompute the candidate state."""
        if len(vector) != len(self.schema.decisions):
            raise ValueError(
                f"vector length {len(vector)} != "
                f"{len(self.schema.decisions)} decisions"
            )
        self._vector = list(vector)
        n = self._num_nodes
        self._name[:] = self._fixed_name
        self._size[:] = self._fixed_size
        for d, value in enumerate(self._vector):
            node = self._dec_node[d]
            if isinstance(self.schema.decisions[d], WidgetDecision):
                name, size_class = value  # type: ignore[misc]
                self._name[node] = name
                self._size[node] = size_class
            else:
                self._name[node] = value  # type: ignore[assignment]
        self._m = [self._m_of(i, self._name[i]) for i in range(n)]
        self._eff = [
            self._eff_of(i, self._name[i], self._size[i])
            if self._choice_path[i] is not None
            else 0.0
            for i in range(n)
        ]
        for i in range(n - 1, -1, -1):
            self._refresh_box(i)
        for p in range(self._num_pairs):
            self._refresh_pair(p)
        self._m_total: Optional[float] = None
        self._u_totals: Optional[Tuple[float, int, float]] = None
        self.stats.full_evals += 1

    def _refresh_pair(self, p: int) -> None:
        # The touched tuple ascends in sorted-changed-path order, so the
        # effort sum accumulates exactly like the reference loop.
        effort = sum(self._eff[i] for i in self._pair_touched[p])
        self._pair_effort[p] = effort
        self._pair_cost[p] = (
            self.weights.steiner * self._pair_steiner[p]
            + self.weights.effort * effort
        )

    def apply_delta(self, index: int, value: object) -> None:
        """Re-evaluate after changing the single decision at ``index``.

        Patches the controlled node's tables, the bounding boxes of its
        ancestor chain, and (for widget decisions) the pairs whose
        changed-choice sets touch it.  Equal to a full
        :meth:`set_vector` of the updated vector on every breakdown
        field — the delta-equals-full invariant.

        Raises:
            ValueError: when ``index`` is outside the schema's decision
                range, or ``value`` does not have the decision's shape
                (a ``(name, size_class)`` pair for widget decisions, an
                orientation name for orientation decisions).
        """
        if not 0 <= index < len(self.schema.decisions):
            raise ValueError(
                f"decision index {index} out of range "
                f"(schema has {len(self.schema.decisions)} decisions)"
            )
        decision = self.schema.decisions[index]
        node = self._dec_node[index]
        if isinstance(decision, WidgetDecision):
            try:
                name, size_class = value  # type: ignore[misc]
            except (TypeError, ValueError):
                raise ValueError(
                    f"widget decision {index} expects a (name, size_class) "
                    f"pair, got {value!r}"
                ) from None
        elif value not in ORIENTATIONS:
            raise ValueError(
                f"orientation decision {index} expects one of "
                f"{ORIENTATIONS}, got {value!r}"
            )
        self._vector[index] = value
        if isinstance(decision, WidgetDecision):
            self._name[node] = name
            self._size[node] = size_class
            self._m[node] = self._m_of(node, name)
            self._m_total = None
            if self._choice_path[node] is not None:
                self._eff[node] = self._eff_of(node, name, size_class)
                for p in self._node_pairs[node]:
                    self._refresh_pair(p)
                if self._node_pairs[node]:
                    self._u_totals = None
        else:
            self._name[node] = value  # type: ignore[assignment]
            # Both orientations currently share one layout M(w), but the
            # parity invariant must not depend on that staying true.
            self._m[node] = self._m_of(node, self._name[node])
            self._m_total = None
        self._refresh_box(node)
        cursor = self._parent[node]
        while cursor >= 0:
            self._refresh_box(cursor)
            cursor = self._parent[cursor]
        self.stats.delta_evals += 1

    @property
    def vector(self) -> Tuple[object, ...]:
        """Snapshot of the current decision vector."""
        return tuple(self._vector)

    # -- evaluation -----------------------------------------------------------

    def breakdown(self) -> CostBreakdown:
        """The cost breakdown of the current candidate state."""
        if self._m_total is None:
            # Preorder accumulation — the reference M(w) walk order.
            total = 0.0
            for value in self._m:
                total += value
            self._m_total = total
        m_cost = self.weights.m * self._m_total
        width = self._box_w[0]
        height = self._box_h[0]
        feasible = width <= self.screen.width and height <= self.screen.height
        if not self.sequence.ok:
            u_cost = 0.0
            steiner_total = 0
            effort_total = 0.0
            pair_costs: Tuple[float, ...] = ()
            feasible = False
        else:
            if self._u_totals is None:
                u_total = 0.0
                steiner_total = 0
                effort_total = 0.0
                for p in range(self._num_pairs):
                    u_total += self._pair_cost[p]
                    steiner_total += self._pair_steiner[p]
                    effort_total += self._pair_effort[p]
                self._u_totals = (u_total, steiner_total, effort_total)
            u_total, steiner_total, effort_total = self._u_totals
            u_cost = self.weights.u * u_total
            pair_costs = tuple(self._pair_cost)
        return CostBreakdown(
            m_cost=m_cost,
            u_cost=u_cost,
            feasible=feasible,
            width=width,
            height=height,
            steiner_nodes=steiner_total,
            effort=effort_total,
            pair_costs=pair_costs,
            overflow_w=max(0.0, width - self.screen.width),
            overflow_h=max(0.0, height - self.screen.height),
        )

    def evaluate(self, vector: Sequence[object]) -> CostBreakdown:
        """Full evaluation of one decision vector."""
        self.set_vector(vector)
        return self.breakdown()

    # -- interop with real widget trees ---------------------------------------

    def adopt(self, root: WidgetNode) -> Optional[List[object]]:
        """Read the decision vector off an externally derived widget tree.

        Returns ``None`` when ``root`` does not share the skeleton's
        topology (e.g. a hand-built tree or one derived from another
        difftree) — callers fall back to the reference evaluator.
        """
        n = self._num_nodes
        vector: List[Optional[object]] = [None] * len(self.schema.decisions)
        stack = [root]
        i = 0
        while stack:
            node = stack.pop()
            if i >= n:
                return None
            if len(node.children) != len(self._children[i]):
                return None
            if (
                node.title != self._title[i]
                or node.choice_path != self._choice_path[i]
                or node.domain != self._domain[i]
            ):
                return None
            d = self._widget_dec[i]
            if d >= 0:
                decision = self.schema.decisions[d]
                if (
                    node.widget not in decision.candidates
                    or node.size_class not in SIZE_CLASSES
                ):
                    return None
                vector[d] = (node.widget, node.size_class)
            elif self._orient_dec[i] >= 0:
                if node.widget not in ORIENTATIONS:
                    return None
                vector[self._orient_dec[i]] = node.widget
            else:
                if (
                    node.widget != self._fixed_name[i]
                    or node.size_class != self._fixed_size[i]
                ):
                    return None
            i += 1
            stack.extend(reversed(node.children))
        if i != n or any(value is None for value in vector):
            return None
        return vector  # type: ignore[return-value]

    def materialize(self, vector: Sequence[object]) -> WidgetNode:
        """Derive the real widget tree behind a decision vector."""
        widgets, orientations = self.schema.tables(vector)
        return derive_widget_tree(self.tree, ReplayChooser(widgets, orientations))

    def iter_enumeration(
        self, cap: int = 5000
    ) -> Iterator[Tuple[Tuple[object, ...], CostBreakdown]]:
        """Score the full decision product via delta re-evaluation.

        Yields ``(vector_snapshot, breakdown)`` in the canonical
        enumeration order (identical candidates and tie-breaks to
        enumerating real widget trees), applying only per-candidate
        deltas after the first full evaluation.
        """
        from ..widgets.tree import enumerate_decision_vectors

        for vector, deltas in enumerate_decision_vectors(self.schema, cap=cap):
            if deltas is None:
                self.set_vector(vector)
            else:
                for delta in deltas:
                    self.apply_delta(delta.index, delta.value)
            yield tuple(vector), self.breakdown()
