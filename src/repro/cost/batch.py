"""Vectorized batch cost kernel: score K candidate vectors in one pass.

The scalar :class:`~repro.cost.kernel.CostKernel` made *one* candidate
cheap (flat arrays + delta re-evaluation), but the search layer rarely
wants one candidate: MCTS rewards score ``k_assignments`` samples per
state, the final widget pass enumerates the whole decision product, and
coordinate descent probes every option of an index.  This module scores
such a *population* as column-wise numpy ops over ``nodes × candidates``
arrays — the MonetDB/X100 vectorized-execution idiom applied to widget
trees:

* **Gather tables** — every widget decision pre-tabulates its options'
  ``M``/effort/leaf-box values as dense per-option arrays at compile
  time; loading a population is one fancy-index gather per decision
  instead of per-candidate dict lookups.
* **One bottom-up box pass** — bounding boxes are computed in the same
  reverse-preorder order as the scalar kernel, but each node's formula
  is evaluated once across the whole candidate axis (orientation
  decisions compute both layouts and select via a boolean mask).
* **Masked column reductions** — pair efforts and Steiner costs fold
  over the candidate axis; pairs whose changed-choice sets touch no
  decision node collapse to compile-time constants.
* **Vector feasibility** — the screen check and overflow terms are one
  elementwise compare per population.

Bit-parity invariant
    For every column ``j``, :meth:`BatchBreakdowns.breakdown` equals the
    scalar kernel's :meth:`~repro.cost.kernel.CostKernel.breakdown` of
    the same vector on **every** field.  numpy's pairwise summation is
    *not* bit-compatible with Python's sequential float adds, so every
    reduction along the node/pair axis stays a sequential Python fold
    whose per-step operation is a numpy elementwise op across the
    candidate axis; per-element arithmetic replays the scalar formulas
    in the exact same association order.  The scalar kernel stays the
    parity oracle behind the ``repro.memo.batch`` gate (subordinate to
    ``fast_paths``, like the columnar and carry gates).

The scalar delta path still wins for K=1 probes (a single ``apply_delta``
patches a handful of floats; a batch call re-gathers whole columns), so
callers batch only genuine populations — see :mod:`repro.cost.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator: no numpy -> scalar fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised via available()
    np = None  # type: ignore[assignment]

from ..layout.boxes import BOX_GAP, BOX_PADDING, HEADER_HEIGHT, TITLE_HEIGHT
from ..obs import REGISTRY as _OBS_REGISTRY
from ..obs import enabled as _obs_enabled
from ..widgets.tree import ORIENTATIONS, WidgetDecision
from .kernel import CostBreakdown, CostKernel

__all__ = [
    "BatchBreakdowns",
    "BatchCompileError",
    "BatchCostKernel",
    "BatchStats",
    "STATS",
    "available",
]


def available() -> bool:
    """Whether the batched kernel can run at all (numpy importable)."""
    return np is not None


class BatchCompileError(RuntimeError):
    """The widget-tree shape defeats batch compilation (fall back to scalar)."""


@dataclass
class BatchStats:
    """Process-wide batch-kernel counters (see :data:`STATS`).

    Attributes:
        batch_calls: population loads (``set_population`` calls).
        batched_evals: candidates scored through the batched path.
        delta_calls: batched ``apply_delta`` column patches.
        fallback_scalar_evals: candidates that wanted the batched path
            (gate on) but ran scalar — numpy missing or compile failed.
        max_batch_size: largest population seen.
    """

    batch_calls: int = 0
    batched_evals: int = 0
    delta_calls: int = 0
    fallback_scalar_evals: int = 0
    max_batch_size: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict snapshot (stable keys, JSON-native values)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


#: The process-wide counter instance the batched paths bump.
STATS = BatchStats()

# Absorbed into the observability registry as ``cost.kernel.batch.*``;
# the population-size distribution additionally lands in the
# ``cost.kernel.batch.size`` histogram (observed only when obs is on).
_OBS_REGISTRY.register_source("cost.kernel.batch", STATS.snapshot)


# -- sequential folds across the candidate axis ---------------------------------
#
# Rows are either plain Python floats (candidate-invariant nodes) or 1-D
# float64 arrays of length K.  Folding sequentially — never np.sum /
# np.max along an axis — keeps every accumulation in the scalar kernel's
# association order, which is what makes the breakdowns bit-identical.


def _fold_sum(rows):
    total = 0.0
    for row in rows:
        total = total + row
    return total


def _fold_max(rows):
    acc = rows[0]
    for row in rows[1:]:
        if isinstance(acc, float) and isinstance(row, float):
            if row > acc:
                acc = row
        else:
            acc = np.maximum(acc, row)
    return acc


class BatchBreakdowns:
    """Per-candidate cost columns of one evaluated population.

    Columns materialize to :class:`CostBreakdown` lazily — selection
    (:meth:`best_index` / :meth:`worst_index`) runs on the arrays, and
    only the winner pays the object construction.
    """

    __slots__ = (
        "m_cost",
        "u_cost",
        "feasible",
        "width",
        "height",
        "overflow_w",
        "overflow_h",
        "steiner_total",
        "effort_total",
        "_pair_rows",
        "_seq_ok",
    )

    def __init__(
        self,
        m_cost,
        u_cost,
        feasible,
        width,
        height,
        overflow_w,
        overflow_h,
        steiner_total: int,
        effort_total,
        pair_rows: Sequence[object],
        seq_ok: bool,
    ) -> None:
        self.m_cost = m_cost
        self.u_cost = u_cost
        self.feasible = feasible
        self.width = width
        self.height = height
        self.overflow_w = overflow_w
        self.overflow_h = overflow_h
        self.steiner_total = steiner_total
        self.effort_total = effort_total
        self._pair_rows = pair_rows
        self._seq_ok = seq_ok

    def __len__(self) -> int:
        return int(self.m_cost.shape[0])

    # -- selection (array-side, scalar tie-break semantics) ------------------

    def rank(self, j: int) -> Tuple[int, float]:
        """``CostBreakdown.rank`` of column ``j`` (bit-equal tuple).

        Computed on extracted Python floats in the scalar association
        order, so comparing against a scalar-kernel rank never flips on
        a representation difference.
        """
        if bool(self.feasible[j]):
            return (0, float(self.m_cost[j]) + float(self.u_cost[j]))
        return (
            1,
            float(self.overflow_w[j])
            + float(self.overflow_h[j])
            + float(self.m_cost[j])
            + float(self.u_cost[j]),
        )

    def best_index(self) -> int:
        """First column with the minimal rank (scalar strict-``<`` order).

        Feasible columns always beat infeasible ones; ties keep the
        earliest column, exactly like the scalar keep-first-minimum
        loops this replaces.
        """
        totals = self.m_cost + self.u_cost
        if bool(self.feasible.any()):
            key = np.where(self.feasible, totals, np.inf)
            return int(key.argmin())
        key = ((self.overflow_w + self.overflow_h) + self.m_cost) + self.u_cost
        return int(key.argmin())

    def worst_index(self) -> int:
        """First column with the maximal total, preferring feasible ones.

        Mirrors ``worst_sampled_evaluation``'s scalar scan: the worst
        *feasible* candidate wins when one exists; otherwise the first
        candidate overall (every infeasible total is ``inf`` and the
        scalar strict-``>`` scan keeps the first).
        """
        totals = self.m_cost + self.u_cost
        if bool(self.feasible.any()):
            key = np.where(self.feasible, totals, -np.inf)
            return int(key.argmax())
        return 0

    # -- materialization -----------------------------------------------------

    def breakdown(self, j: int) -> CostBreakdown:
        """The full :class:`CostBreakdown` of column ``j``."""
        if self._seq_ok:
            pair_costs = tuple(
                row if isinstance(row, float) else float(row[j])
                for row in self._pair_rows
            )
            effort = (
                self.effort_total
                if isinstance(self.effort_total, float)
                else float(self.effort_total[j])
            )
        else:
            pair_costs = ()
            effort = 0.0
        return CostBreakdown(
            m_cost=float(self.m_cost[j]),
            u_cost=float(self.u_cost[j]),
            feasible=bool(self.feasible[j]),
            width=float(self.width[j]),
            height=float(self.height[j]),
            steiner_nodes=self.steiner_total,
            effort=effort,
            pair_costs=pair_costs,
            overflow_w=float(self.overflow_w[j]),
            overflow_h=float(self.overflow_h[j]),
        )

    def breakdowns(self) -> List[CostBreakdown]:
        """Materialize every column (parity tests / benchmarks)."""
        return [self.breakdown(j) for j in range(len(self))]


# -- the batched kernel ----------------------------------------------------------

# Box-pass step kinds (compiled once per kernel, executed per population).
_LEAF_CONST = 0  # (w, h) candidate-invariant
_LEAF_DEC = 1  # widget decision leaf: gathered per-option box columns
_VBOX = 2  # fixed vertical box
_HBOX = 3  # fixed horizontal box
_OBOX = 4  # orientation decision box: both layouts + mask select
_TABS = 5  # fixed tabs container
_ADDER = 6  # fixed adder container


class BatchCostKernel:
    """Evaluates K decision vectors of one compiled kernel simultaneously.

    Compiled *from* a :class:`CostKernel` (it reuses the flat skeleton,
    pair sets, and lazy value tables); holds its own mutable population
    state — ``codes`` per decision, per-node ``M``/effort/box rows, and
    per-pair cost rows — mirroring the scalar kernel's candidate state
    across the candidate axis.

    Usage::

        batch = BatchCostKernel(kernel)
        bb = batch.evaluate_population(vectors)   # K columns
        j = bb.best_index()
        best = bb.breakdown(j)                    # == kernel.evaluate(vectors[j])

    Column-wise :meth:`apply_delta` exists for delta-shaped callers and
    the permutation-independence tests; populations whose columns arrive
    in any order converge to identical state.
    """

    def __init__(self, kernel: CostKernel) -> None:
        if np is None:
            raise BatchCompileError("numpy is not available")
        self.kernel = kernel
        self.schema = kernel.schema
        self.weights = kernel.weights
        self.screen = kernel.screen
        # Shared skeleton invariants (the scalar kernel owns them; the
        # batch kernel only reads).
        self._parent = kernel._parent
        self._children = kernel._children
        self._dec_node = list(kernel._dec_node)
        self._node_pairs = kernel._node_pairs
        self._pair_touched = kernel._pair_touched
        self._num_nodes = kernel._num_nodes
        self._num_pairs = kernel._num_pairs
        self._seq_ok = kernel.sequence.ok
        self._compile()
        # Mutable population state (built by set_population).
        self._K = 0
        self._codes: List[object] = []
        self._m_rows: List[object] = []
        self._eff_rows: List[object] = []
        self._bw: List[object] = []
        self._bh: List[object] = []
        self._pair_effort: List[object] = []
        self._pair_cost: List[object] = []
        self._m_total: Optional[object] = None
        self._u_totals: Optional[Tuple[object, object]] = None

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> None:
        kernel = self.kernel
        n = self._num_nodes
        decisions = self.schema.decisions

        # Per-decision option encodings + gather tables.
        self._opt_values: List[Tuple[object, ...]] = []
        self._opt_index: List[Dict[object, int]] = []
        self._m_opt: List[Optional[object]] = []
        self._eff_opt: List[Optional[object]] = []
        self._bw_opt: List[Optional[object]] = []
        self._bh_opt: List[Optional[object]] = []
        self._orient_m: List[Optional[Tuple[float, float]]] = []
        for d, decision in enumerate(decisions):
            options = self.schema.options_for(d)
            self._opt_values.append(tuple(options))
            self._opt_index.append({value: o for o, value in enumerate(options)})
            node = self._dec_node[d]
            if isinstance(decision, WidgetDecision):
                if kernel._orient_dec[node] >= 0:
                    raise BatchCompileError("node carries two decision kinds")
                if self._children[node]:
                    # Decision nodes are derivation leaves; a candidate
                    # container name over real children would need the
                    # child rows per option — scalar handles it, the
                    # gather tables do not.
                    raise BatchCompileError("widget decision node has children")
                m_col = np.empty(len(options))
                eff_col = np.empty(len(options))
                bw_col = np.empty(len(options))
                bh_col = np.empty(len(options))
                for o, (name, size_class) in enumerate(options):
                    m_col[o] = kernel._m_of(node, name)
                    eff_col[o] = kernel._eff_of(node, name, size_class)
                    w, h = self._leaf_box(node, name, size_class)
                    bw_col[o] = w
                    bh_col[o] = h
                self._m_opt.append(m_col)
                self._eff_opt.append(eff_col)
                self._bw_opt.append(bw_col)
                self._bh_opt.append(bh_col)
                self._orient_m.append(None)
            else:
                if kernel._choice_path[node] is not None:
                    # An orientation node on a choice path would make its
                    # effort orientation-dependent; the scalar kernel
                    # handles that, the gather tables here do not.
                    raise BatchCompileError("orientation node on a choice path")
                self._m_opt.append(None)
                self._eff_opt.append(None)
                self._bw_opt.append(None)
                self._bh_opt.append(None)
                self._orient_m.append(
                    (kernel._m_of(node, "vertical"), kernel._m_of(node, "horizontal"))
                )

        # Per-node M / effort descriptors: a decision index or a constant.
        # (-1, const) = fixed; (d, None) = gathered from decision d's table.
        self._node_m: List[Tuple[int, float]] = []
        self._node_eff: List[Tuple[int, float]] = []
        for i in range(n):
            wd = kernel._widget_dec[i]
            od = kernel._orient_dec[i]
            if wd >= 0:
                self._node_m.append((wd, 0.0))
                self._node_eff.append((wd, 0.0))
            elif od >= 0:
                self._node_m.append((od, 0.0))
                self._node_eff.append((-1, 0.0))
            else:
                name, size = kernel._fixed_name[i], kernel._fixed_size[i]
                self._node_m.append((-1, kernel._m_of(i, name)))
                eff = (
                    kernel._eff_of(i, name, size)
                    if kernel._choice_path[i] is not None
                    else 0.0
                )
                self._node_eff.append((-1, eff))
        self._is_widget_dec = [kernel._widget_dec[i] >= 0 for i in range(n)]

        # The box program: one step per node, stored in the reverse
        # preorder the scalar pass runs in (children before parents).
        steps: List[Optional[tuple]] = [None] * n
        for i in range(n):
            steps[i] = self._compile_box_step(i)
        self._box_step: List[tuple] = steps  # indexed by node
        self._box_order = list(range(n - 1, -1, -1))

        # Pair classification: pairs touching no decision node fold to
        # compile-time constants (the common case for stable prefixes).
        self._pair_const_effort: List[Optional[float]] = []
        self._pair_const_cost: List[Optional[float]] = []
        self._pair_steiner_cost: List[float] = []
        steiner_total = 0
        for p in range(self._num_pairs):
            touched = self._pair_touched[p]
            steiner_cost = self.weights.steiner * kernel._pair_steiner[p]
            self._pair_steiner_cost.append(steiner_cost)
            steiner_total += kernel._pair_steiner[p]
            if any(self._is_widget_dec[i] for i in touched):
                self._pair_const_effort.append(None)
                self._pair_const_cost.append(None)
            else:
                effort = _fold_sum(self._node_eff[i][1] for i in touched)
                self._pair_const_effort.append(effort)
                self._pair_const_cost.append(
                    steiner_cost + self.weights.effort * effort
                )
        self._steiner_total = steiner_total

    def _compile_box_step(self, i: int) -> tuple:
        kernel = self.kernel
        wd = kernel._widget_dec[i]
        od = kernel._orient_dec[i]
        kids = self._children[i]
        titled = bool(kernel._title[i])
        if wd >= 0:
            # Per-option boxes come from the gather table, which bakes
            # the full _compute_box name dispatch for a childless node —
            # candidates may be container names like "tabs".
            return (_LEAF_DEC, i, wd)
        if od >= 0:
            if not kids:
                return (_LEAF_CONST, i, 0.0, 0.0)
            return (_OBOX, i, od, kids, BOX_GAP * (len(kids) - 1), titled)
        name = kernel._fixed_name[i]
        size = kernel._fixed_size[i]
        if name in ("vertical", "horizontal"):
            if not kids:
                return (_LEAF_CONST, i, 0.0, 0.0)
            kind = _VBOX if name == "vertical" else _HBOX
            return (kind, i, kids, BOX_GAP * (len(kids) - 1), titled)
        if name == "tabs":
            header = kernel._wsize_of(i, name, size)
            if not kids:
                width = max(header[0], 0.0)
                height = HEADER_HEIGHT + 0.0
                return (
                    _LEAF_CONST,
                    i,
                    width + 2 * BOX_PADDING,
                    height + 2 * BOX_PADDING,
                )
            return (_TABS, i, kids, header[0], header[1])
        if name == "adder":
            buttons = kernel._wsize_of(i, name, size)
            if not kids:
                width = max(buttons[0], 0.0)
                height = buttons[1] + 0.0 + BOX_GAP
                return (
                    _LEAF_CONST,
                    i,
                    width + 2 * BOX_PADDING,
                    height + 2 * BOX_PADDING,
                )
            return (_ADDER, i, kids, buttons[0], buttons[1])
        w, h = kernel._wsize_of(i, name, size)
        if kernel._title[i]:
            h = h + TITLE_HEIGHT
            w = max(w, 7.0 * len(kernel._title[i]))
        return (_LEAF_CONST, i, w, h)

    def _leaf_box(self, i: int, name: str, size: str) -> Tuple[float, float]:
        """Scalar ``_compute_box`` for node ``i`` were it named ``name``.

        Widget-decision candidates can be container names ("tabs",
        "adder", even orientation boxes) — the scalar kernel dispatches
        its box formula on the *current* name, so the per-option gather
        table must do the same.  Decision nodes are childless, which
        collapses each container branch to its empty-content form.
        """
        kernel = self.kernel
        if name in ("vertical", "horizontal"):
            return (0.0, 0.0)
        if name == "tabs":
            header = kernel._wsize_of(i, name, size)
            width = max(header[0], 0.0)
            height = HEADER_HEIGHT + 0.0
            return (width + 2 * BOX_PADDING, height + 2 * BOX_PADDING)
        if name == "adder":
            buttons = kernel._wsize_of(i, name, size)
            width = max(buttons[0], 0.0)
            height = buttons[1] + 0.0 + BOX_GAP
            return (width + 2 * BOX_PADDING, height + 2 * BOX_PADDING)
        w, h = kernel._wsize_of(i, name, size)
        if kernel._title[i]:
            h = h + TITLE_HEIGHT
            w = max(w, 7.0 * len(kernel._title[i]))
        return (w, h)

    # -- population state ----------------------------------------------------

    def _encode(self, d: int, values: Sequence[object]):
        index = self._opt_index[d]
        try:
            return np.fromiter(
                (index[v] for v in values), dtype=np.intp, count=len(values)
            )
        except KeyError as exc:
            raise ValueError(
                f"value {exc.args[0]!r} is not an option of decision {d}"
            ) from None

    def _encode_columns(self, vectors: Sequence[Sequence[object]]):
        """Per-decision code columns for a population, in one pass each.

        The fused transpose + dict gather (one generator feeding
        ``np.fromiter``) is the population loader's hot loop: O(D·K)
        lookups with no intermediate K-lists or object arrays.
        """
        K = len(vectors)
        codes = []
        for d, index in enumerate(self._opt_index):
            try:
                codes.append(
                    np.fromiter(
                        (index[vector[d]] for vector in vectors),
                        dtype=np.intp,
                        count=K,
                    )
                )
            except KeyError as exc:
                raise ValueError(
                    f"value {exc.args[0]!r} is not an option of decision {d}"
                ) from None
        return codes

    def set_population(self, vectors: Sequence[Sequence[object]]) -> None:
        """Load K decision vectors as the current population (columns)."""
        K = len(vectors)
        if K == 0:
            raise ValueError("population must contain at least one vector")
        num_decisions = len(self.schema.decisions)
        for vector in vectors:
            if len(vector) != num_decisions:
                raise ValueError(
                    f"vector length {len(vector)} != {num_decisions} decisions"
                )
        self._load_codes(self._encode_columns(vectors), K)

    def _load_codes(self, codes: List[object], K: int) -> None:
        """Load pre-encoded per-decision code columns as the population."""
        num_decisions = len(self.schema.decisions)
        self._K = K
        self._codes = codes
        self._g_m: List[object] = [None] * num_decisions
        self._g_eff: List[object] = [None] * num_decisions
        self._g_bw: List[object] = [None] * num_decisions
        self._g_bh: List[object] = [None] * num_decisions
        for d in range(num_decisions):
            self._refresh_gather(d)
        self._m_rows = [
            const if d < 0 else self._g_m[d] for d, const in self._node_m
        ]
        self._eff_rows = [
            const if d < 0 else self._g_eff[d] for d, const in self._node_eff
        ]
        self._bw = [0.0] * self._num_nodes
        self._bh = [0.0] * self._num_nodes
        for i in self._box_order:
            self._run_box_step(self._box_step[i])
        self._pair_effort = list(self._pair_const_effort)
        self._pair_cost = list(self._pair_const_cost)
        for p in range(self._num_pairs):
            if self._pair_cost[p] is None:
                self._refresh_pair(p)
        self._m_total = None
        self._u_totals = None
        STATS.batch_calls += 1
        STATS.batched_evals += K
        if K > STATS.max_batch_size:
            STATS.max_batch_size = K
        self.kernel.stats.batched_evals += K
        if _obs_enabled():
            _OBS_REGISTRY.histogram("cost.kernel.batch.size").observe(K)

    def _refresh_gather(self, d: int) -> None:
        codes = self._codes[d]
        if self._m_opt[d] is not None:
            self._g_m[d] = self._m_opt[d][codes]
            self._g_eff[d] = self._eff_opt[d][codes]
            self._g_bw[d] = self._bw_opt[d][codes]
            self._g_bh[d] = self._bh_opt[d][codes]
        else:
            m_v, m_h = self._orient_m[d]
            # ORIENTATIONS order pins code 1 == "horizontal".
            self._g_m[d] = np.where(codes == 1, m_h, m_v)

    def _run_box_step(self, step: tuple) -> None:
        kind = step[0]
        i = step[1]
        bw, bh = self._bw, self._bh
        if kind == _LEAF_CONST:
            bw[i] = step[2]
            bh[i] = step[3]
            return
        if kind == _LEAF_DEC:
            d = step[2]
            bw[i] = self._g_bw[d]
            bh[i] = self._g_bh[d]
            return
        if kind == _VBOX or kind == _HBOX:
            _, _, kids, gaps, titled = step
            if kind == _VBOX:
                width = _fold_max([bw[k] for k in kids])
                height = _fold_sum(bh[k] for k in kids) + gaps
            else:
                width = _fold_sum(bw[k] for k in kids) + gaps
                height = _fold_max([bh[k] for k in kids])
            width = width + 2 * BOX_PADDING
            height = height + 2 * BOX_PADDING
            if titled:
                height = height + TITLE_HEIGHT
            bw[i] = width
            bh[i] = height
            return
        if kind == _OBOX:
            _, _, d, kids, gaps, titled = step
            kid_w = [bw[k] for k in kids]
            kid_h = [bh[k] for k in kids]
            wv = _fold_max(kid_w) + 2 * BOX_PADDING
            hv = (_fold_sum(kid_h) + gaps) + 2 * BOX_PADDING
            wh = (_fold_sum(kid_w) + gaps) + 2 * BOX_PADDING
            hh = _fold_max(kid_h) + 2 * BOX_PADDING
            if titled:
                hv = hv + TITLE_HEIGHT
                hh = hh + TITLE_HEIGHT
            horizontal = self._codes[d] == 1
            bw[i] = np.where(horizontal, wh, wv)
            bh[i] = np.where(horizontal, hh, hv)
            return
        if kind == _TABS:
            _, _, kids, header_w, header_h = step
            content_w = _fold_max([bw[k] for k in kids])
            content_h = _fold_max([bh[k] for k in kids])
            width = _fold_max([header_w, content_w])
            height = HEADER_HEIGHT + content_h
            bw[i] = width + 2 * BOX_PADDING
            bh[i] = height + 2 * BOX_PADDING
            return
        # _ADDER
        _, _, kids, buttons_w, buttons_h = step
        gaps = BOX_GAP * (len(kids) - 1)
        content_w = _fold_max([bw[k] for k in kids])
        content_h = _fold_sum(bh[k] for k in kids) + gaps
        width = _fold_max([buttons_w, content_w])
        height = buttons_h + content_h + BOX_GAP
        bw[i] = width + 2 * BOX_PADDING
        bh[i] = height + 2 * BOX_PADDING

    def _refresh_pair(self, p: int) -> None:
        # Touched tuples ascend in sorted-changed-path order — the
        # reference effort accumulation order (same as the scalar pass).
        effort = _fold_sum(self._eff_rows[i] for i in self._pair_touched[p])
        self._pair_effort[p] = effort
        self._pair_cost[p] = (
            self._pair_steiner_cost[p] + self.weights.effort * effort
        )

    def apply_delta(self, index: int, values: Sequence[object]) -> None:
        """Patch one decision across the population (one value per column).

        The batched mirror of the scalar ``apply_delta``: only the
        controlled node's rows, its ancestor-chain boxes, and the pairs
        touching it are recomputed, and the result is independent of the
        order deltas arrive in (column permutations converge to the same
        state as a fresh ``set_population``).
        """
        num_decisions = len(self.schema.decisions)
        if not 0 <= index < num_decisions:
            raise ValueError(
                f"decision index {index} out of range "
                f"(schema has {num_decisions} decisions)"
            )
        if len(values) != self._K:
            raise ValueError(
                f"expected {self._K} per-column values, got {len(values)}"
            )
        self._codes[index] = self._encode(index, values)
        self._refresh_gather(index)
        node = self._dec_node[index]
        self._m_rows[node] = self._g_m[index]
        self._m_total = None
        if self._m_opt[index] is not None:
            self._eff_rows[node] = self._g_eff[index]
            pairs = self._node_pairs[node]
            for p in pairs:
                self._refresh_pair(p)
            if pairs:
                self._u_totals = None
        cursor = node
        while cursor >= 0:
            self._run_box_step(self._box_step[cursor])
            cursor = self._parent[cursor]
        STATS.delta_calls += 1

    def column(self, j: int) -> Tuple[object, ...]:
        """Decision vector of column ``j`` (decoded from the codes)."""
        return tuple(
            self._opt_values[d][int(self._codes[d][j])]
            for d in range(len(self.schema.decisions))
        )

    @property
    def population_size(self) -> int:
        return self._K

    # -- evaluation -----------------------------------------------------------

    def _as_row(self, value):
        if isinstance(value, float):
            return np.full(self._K, value)
        return value

    def breakdowns(self) -> BatchBreakdowns:
        """Cost columns of the current population (lazy totals, cached)."""
        if self._K == 0:
            raise RuntimeError("no population loaded")
        if self._m_total is None:
            self._m_total = _fold_sum(self._m_rows)  # preorder, like scalar
        m_cost = self._as_row(self.weights.m * self._m_total)
        width = self._as_row(self._bw[0])
        height = self._as_row(self._bh[0])
        feasible = (width <= self.screen.width) & (height <= self.screen.height)
        if not self._seq_ok:
            u_cost = np.zeros(self._K)
            effort_total: object = 0.0
            feasible = np.zeros(self._K, dtype=bool)
            steiner_total = 0
        else:
            if self._u_totals is None:
                u_total = _fold_sum(self._pair_cost)
                effort_total = _fold_sum(self._pair_effort)
                self._u_totals = (u_total, effort_total)
            u_total, effort_total = self._u_totals
            u_cost = self._as_row(self.weights.u * u_total)
            steiner_total = self._steiner_total
        return BatchBreakdowns(
            m_cost=m_cost,
            u_cost=u_cost,
            feasible=feasible,
            width=width,
            height=height,
            overflow_w=np.maximum(0.0, width - self.screen.width),
            overflow_h=np.maximum(0.0, height - self.screen.height),
            steiner_total=steiner_total,
            effort_total=effort_total,
            pair_rows=self._pair_cost if self._seq_ok else (),
            seq_ok=self._seq_ok,
        )

    def evaluate_population(
        self, vectors: Sequence[Sequence[object]]
    ) -> BatchBreakdowns:
        """Load and score ``vectors`` in one batched pass."""
        self.set_population(vectors)
        return self.breakdowns()

    def enumerate_best(
        self, cap: int = 5000, chunk: int = 256
    ) -> Tuple[Tuple[object, ...], CostBreakdown]:
        """Best ``(vector, breakdown)`` over the enumeration product.

        Candidate ``t``'s code for the decision at enumeration-order
        position ``i`` is the odometer digit ``(t // stride_i) % n_i``
        — a pure function of the ordinal — so whole chunks of code
        columns come from vectorized arange arithmetic with zero
        per-candidate Python work.  (Digits equal batch codes directly:
        both sides order options by ``schema.options_for``.)

        Candidate order matches :meth:`CostKernel.iter_enumeration`;
        within a chunk the first minimal rank wins (``best_index``) and
        a later chunk only takes over on a strictly smaller rank — the
        scalar keep-first-minimum tie-break, chunked.
        """
        order = self.schema.enumeration_indices
        counts = [len(self._opt_values[d]) for d in order]
        # Row-major over `order`: the last position cycles fastest.
        strides = [0] * len(order)
        acc = 1
        for i in range(len(order) - 1, -1, -1):
            strides[i] = acc
            acc *= counts[i]
        total = min(cap, acc)
        if total <= 0:
            raise RuntimeError("empty enumeration")

        best_vector: Optional[Tuple[object, ...]] = None
        best_rank: Optional[Tuple[int, float]] = None
        best_breakdown: Optional[CostBreakdown] = None
        num_decisions = len(self.schema.decisions)
        for lo in range(0, total, chunk):
            t = np.arange(lo, min(lo + chunk, total), dtype=np.intp)
            cols: List[object] = [None] * num_decisions
            for i, d in enumerate(order):
                if strides[i] >= total:
                    # This digit never rolls within the cap (also dodges
                    # int64 overflow on astronomically large products).
                    cols[d] = np.zeros(len(t), dtype=np.intp)
                else:
                    cols[d] = (t // strides[i]) % counts[i]
            self._load_codes(cols, len(t))
            bb = self.breakdowns()
            j = bb.best_index()
            rank = bb.rank(j)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_vector = self.column(j)
                best_breakdown = bb.breakdown(j)
        assert best_vector is not None and best_breakdown is not None
        return best_vector, best_breakdown
