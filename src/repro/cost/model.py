"""The interface cost function ``C(W, Q) = Σ U(qi, qi+1, W) + Σ M(w)``.

``M(w)`` measures whether each selected widget suits the domain it must
express (appropriateness, borrowed from Zhang, Sellam & Wu 2017; layout
boxes contribute a small layout-complexity constant after Comber & Maltby).

``U(qi, qi+1, W)`` measures how hard it is to *use* the interface to step
through the input query sequence: the minimum set of widgets whose values
must change to turn ``qi`` into ``qi+1``, charged as (a) the size of the
minimum spanning (Steiner) subtree of the widget tree connecting those
widgets — how far the user's attention/mouse must travel across the layout
hierarchy — plus (b) each touched widget's interaction effort.

A widget tree that does not fit the screen is invalid: infinite cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..difftree import Assignment, DTNode, Path, assignment_for, changed_choices
from ..layout import Screen, fits, measure
from ..sqlast import nodes as N
from ..widgets.tree import WidgetNode


@dataclass(frozen=True)
class CostWeights:
    """Linear weights of the cost terms.

    Attributes:
        m: weight of the appropriateness sum Σ M(w).
        u: weight of the sequence-usability sum Σ U.  The default keeps
            one widget interaction roughly comparable to a fraction of an
            appropriateness point, so a fine-grained interface that takes
            a few more clicks per log step still beats one giant
            whole-query chooser (the paper's preferred trade-off, cf.
            Figure 6(a) versus Figure 2(a)-style interfaces).
        steiner: weight (inside U) of the connecting-subtree size.
        effort: weight (inside U) of per-widget interaction effort.
    """

    m: float = 1.0
    u: float = 0.3
    steiner: float = 0.25
    effort: float = 1.0


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized cost of one widget tree for one query sequence."""

    m_cost: float
    u_cost: float
    feasible: bool
    width: float
    height: float
    steiner_nodes: int = 0
    effort: float = 0.0
    pair_costs: Tuple[float, ...] = ()
    overflow_w: float = 0.0
    overflow_h: float = 0.0

    @property
    def total(self) -> float:
        if not self.feasible:
            return math.inf
        return self.m_cost + self.u_cost

    @property
    def rank(self) -> Tuple[int, float]:
        """Total order usable even among invalid interfaces.

        Feasible interfaces compare by cost; infeasible ones compare by
        how far they overflow the screen (then by finite cost), so
        optimizers have a gradient toward feasibility instead of a flat
        infinite plateau.
        """
        if self.feasible:
            return (0, self.m_cost + self.u_cost)
        return (1, self.overflow_w + self.overflow_h + self.m_cost + self.u_cost)


class CostModel:
    """Evaluates widget trees against a query sequence and a screen."""

    def __init__(
        self,
        queries: Sequence[N.Node],
        screen: Screen,
        weights: CostWeights = CostWeights(),
    ) -> None:
        if not queries:
            raise ValueError("cost model needs at least one query")
        self.queries = list(queries)
        self.screen = screen
        self.weights = weights
        #: difftree canonical key -> per-query assignments (cache).
        self._assignment_cache: Dict[str, Optional[List[Assignment]]] = {}

    # -- M term -------------------------------------------------------------

    def appropriateness(self, root: WidgetNode) -> float:
        """Σ M(w) over every widget in the tree."""
        total = 0.0
        for node in root.walk():
            total += node.wtype.appropriateness(node.domain)
        return total

    # -- U term -------------------------------------------------------------

    def assignments(self, tree: DTNode) -> Optional[List[Assignment]]:
        """Choice assignments of every input query under ``tree``.

        Returns ``None`` when some query is not expressible (an invalid
        state; rules never produce one, but callers stay defensive).
        """
        key = tree.canonical_key
        if key not in self._assignment_cache:
            assignments: Optional[List[Assignment]] = []
            for query in self.queries:
                assignment = assignment_for(tree, query)
                if assignment is None:
                    assignments = None
                    break
                assignments.append(assignment)
            if len(self._assignment_cache) > 4096:
                self._assignment_cache.clear()
            self._assignment_cache[key] = assignments
        return self._assignment_cache[key]

    def sequence_cost(
        self, tree: DTNode, root: WidgetNode
    ) -> Tuple[float, int, float, List[float]]:
        """Σ U over consecutive query pairs.

        Returns ``(u_total, steiner_nodes_total, effort_total, per_pair)``.
        """
        assignments = self.assignments(tree)
        if assignments is None:
            return (math.inf, 0, 0.0, [])
        by_path: Dict[Path, WidgetNode] = {
            node.choice_path: node
            for node in root.walk()
            if node.choice_path is not None
        }
        parents, depths = _tree_indexes(root)
        u_total = 0.0
        steiner_total = 0
        effort_total = 0.0
        per_pair: List[float] = []
        for a, b in zip(assignments, assignments[1:]):
            changed = changed_choices(a, b)
            touched = [by_path[p] for p in changed if p in by_path]
            steiner = _steiner_size(touched, parents, depths)
            effort = sum(n.wtype.effort(n.domain, n.size_class) for n in touched)
            pair = self.weights.steiner * steiner + self.weights.effort * effort
            per_pair.append(pair)
            u_total += pair
            steiner_total += steiner
            effort_total += effort
        return (u_total, steiner_total, effort_total, per_pair)

    # -- total -------------------------------------------------------------

    def evaluate(self, tree: DTNode, root: WidgetNode) -> CostBreakdown:
        """Full cost of one (difftree, widget tree) pair."""
        box = measure(root)
        feasible = box.width <= self.screen.width and box.height <= self.screen.height
        m_cost = self.weights.m * self.appropriateness(root)
        u_cost, steiner_nodes, effort, per_pair = self.sequence_cost(tree, root)
        if math.isinf(u_cost):
            feasible = False
            u_cost = 0.0
        return CostBreakdown(
            m_cost=m_cost,
            u_cost=self.weights.u * u_cost,
            feasible=feasible,
            width=box.width,
            height=box.height,
            steiner_nodes=steiner_nodes,
            effort=effort,
            pair_costs=tuple(per_pair),
            overflow_w=max(0.0, box.width - self.screen.width),
            overflow_h=max(0.0, box.height - self.screen.height),
        )


# -- Steiner subtree on the widget tree -----------------------------------------


def _tree_indexes(
    root: WidgetNode,
) -> Tuple[Dict[int, Optional[WidgetNode]], Dict[int, int]]:
    parents: Dict[int, Optional[WidgetNode]] = {id(root): None}
    depths: Dict[int, int] = {id(root): 0}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children:
            parents[id(child)] = node
            depths[id(child)] = depths[id(node)] + 1
            stack.append(child)
    return parents, depths


def _steiner_size(
    targets: List[WidgetNode],
    parents: Dict[int, Optional[WidgetNode]],
    depths: Dict[int, int],
) -> int:
    """Node count of the minimal subtree connecting ``targets``.

    In a tree, the minimal connected subgraph containing a node set equals
    the union of each target's path to the set's lowest common ancestor —
    computed exactly here (no approximation).
    """
    if not targets:
        return 0
    if len(targets) == 1:
        return 1
    lca = targets[0]
    for node in targets[1:]:
        lca = _lca(lca, node, parents, depths)
    nodes = set()
    for node in targets:
        cursor: Optional[WidgetNode] = node
        while cursor is not None and id(cursor) != id(lca):
            nodes.add(id(cursor))
            cursor = parents[id(cursor)]
    nodes.add(id(lca))
    return len(nodes)


def _lca(
    a: WidgetNode,
    b: WidgetNode,
    parents: Dict[int, Optional[WidgetNode]],
    depths: Dict[int, int],
) -> WidgetNode:
    while depths[id(a)] > depths[id(b)]:
        a = parents[id(a)]
    while depths[id(b)] > depths[id(a)]:
        b = parents[id(b)]
    while id(a) != id(b):
        a = parents[id(a)]
        b = parents[id(b)]
    return a
