"""The interface cost function ``C(W, Q) = Σ U(qi, qi+1, W) + Σ M(w)``.

``M(w)`` measures whether each selected widget suits the domain it must
express (appropriateness, borrowed from Zhang, Sellam & Wu 2017; layout
boxes contribute a small layout-complexity constant after Comber & Maltby).

``U(qi, qi+1, W)`` measures how hard it is to *use* the interface to step
through the input query sequence: the minimum set of widgets whose values
must change to turn ``qi`` into ``qi+1``, charged as (a) the size of the
minimum spanning (Steiner) subtree of the widget tree connecting those
widgets — how far the user's attention/mouse must travel across the layout
hierarchy — plus (b) each touched widget's interaction effort.

A widget tree that does not fit the screen is invalid: infinite cost.

Evaluation is delegated to the compiled kernel (:mod:`repro.cost.kernel`):
per difftree, the query sequence is diffed once into interned
changed-choice sets and the widget topology flattened into arrays, so
scoring a candidate is table lookups instead of tree walks.  The original
walk-everything implementation survives as :meth:`CostModel.evaluate_reference`
— both the fallback for widget trees the kernel cannot adopt and the
ground truth the differential parity tests compare the kernel against.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import memo as _memo
from ..difftree import Assignment, DTNode, Path, assignment_for, changed_choices
from ..layout import Screen, measure
from ..sqlast import nodes as N
from ..widgets.tree import WidgetNode
from ..obs import trace as _trace
from .batch import BatchCompileError, BatchCostKernel
from .batch import available as _batch_available
from .kernel import (
    BoundedLRU,
    CompiledSequence,
    CostBreakdown,
    CostKernel,
    CostWeights,
    KernelStats,
)

__all__ = ["CostModel", "CostWeights", "CostBreakdown"]

#: Cache-miss sentinel (``None`` is a legitimate cached value).
_MISSING = object()


class CostModel:
    """Evaluates widget trees against a query sequence and a screen.

    Args:
        queries: the input query log, in session order.
        screen: the output screen constraint.
        weights: linear weights of the cost terms.
        kernel_cache_size: how many per-difftree compiled kernels to keep
            (bounded LRU — long sessions evict cold kernels one at a
            time, never wholesale).
        assignment_cache_size: bound of the per-difftree assignment cache.
    """

    def __init__(
        self,
        queries: Sequence[N.Node],
        screen: Screen,
        weights: CostWeights = CostWeights(),
        kernel_cache_size: int = 512,
        assignment_cache_size: int = 4096,
    ) -> None:
        if not queries:
            raise ValueError("cost model needs at least one query")
        self.queries = list(queries)
        self.screen = screen
        self.weights = weights
        #: difftree canonical key -> per-query assignments (bounded LRU).
        self._assignment_cache = BoundedLRU(
            assignment_cache_size, name="cost.assignments"
        )
        #: difftree canonical key -> compiled kernel (bounded LRU).
        self._kernels = BoundedLRU(kernel_cache_size, name="cost.kernels")
        #: difftree canonical key -> batched kernel (or None when the
        #: tree defeated batch compilation) — bounded LRU, same size.
        self._batch_kernels = BoundedLRU(kernel_cache_size, name="cost.batch_kernels")
        #: difftree canonical key -> prior-run CompiledSequence to extend
        #: (seeded by repro.serve across grafted generations).
        self._carried_sequences: Dict[str, CompiledSequence] = {}
        self.kernel_stats = KernelStats()

    # -- compiled kernel ------------------------------------------------------

    def kernel_for(self, tree: DTNode) -> CostKernel:
        """The compiled evaluation kernel of ``tree`` (cached)."""
        key = tree.canonical_key
        kernel = self._kernels.get(key)
        if kernel is None:
            with _trace("cost.kernel.compile"):
                kernel = CostKernel(
                    tree,
                    self._sequence_for(tree),
                    self.screen,
                    self.weights,
                    stats=self.kernel_stats,
                )
            self._kernels[key] = kernel
            self.kernel_stats.kernels_compiled += 1
        return kernel

    def batch_kernel_for(self, tree: DTNode) -> Optional[BatchCostKernel]:
        """The batched population evaluator of ``tree``, when usable.

        Returns ``None`` when the batch gate is off (``repro.memo``),
        numpy is unavailable, or the tree's widget-tree shape defeats
        batch compilation — callers fall back to the scalar per-candidate
        path, which stays the bit-parity oracle.  Compiled instances (and
        negative compile outcomes) are cached per difftree alongside the
        scalar kernels.
        """
        if not _memo.batch_enabled() or not _batch_available():
            return None
        key = tree.canonical_key
        cached = self._batch_kernels.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        kernel = self.kernel_for(tree)
        try:
            with _trace("cost.kernel.batch_compile"):
                batch: Optional[BatchCostKernel] = BatchCostKernel(kernel)
        except BatchCompileError:
            batch = None
        self._batch_kernels[key] = batch
        return batch

    def _sequence_for(self, tree: DTNode) -> CompiledSequence:
        """Compile (or extend) the query sequence for ``tree``.

        When :mod:`repro.serve` carried a prior run's sequence for the
        same difftree and our query log extends its log, only the
        appended queries are matched and only the new pairs diffed.
        """
        key = tree.canonical_key
        carried = self._carried_sequences.get(key)
        if carried is not None:
            prefix = len(carried.queries)
            if prefix <= len(self.queries) and list(carried.queries) == self.queries[:prefix]:
                sequence = carried.extend(tree, self.queries[prefix:])
                if prefix < len(self.queries):
                    self.kernel_stats.sequences_extended += 1
                self._assignment_cache[key] = sequence.assignments
                return sequence
        with _trace("cost.sequence.compile"):
            sequence = CompiledSequence.compile(
                tree, self.queries, assignments=self.assignments(tree)
            )
        self.kernel_stats.sequences_compiled += 1
        return sequence

    def compiled_sequence(self, tree: DTNode) -> CompiledSequence:
        """The compiled sequence of ``tree`` (for serve-layer carry-over)."""
        return self.kernel_for(tree).sequence

    def sequence_universe(self, tree: DTNode):
        """``tree``'s exercised choice-path set, if already compiled.

        A pure *peek* into the bounded kernel cache — never compiles.
        The search-tree carry (:mod:`repro.search.carry`) harvests these
        as each carried node's invalidation scope; ``None`` (state never
        evaluated, or its kernel already evicted) makes the carry treat
        the node's scope as unknown and invalidate it on any append.
        """
        kernel = self._kernels.get(tree.canonical_key)
        if (
            kernel is not None
            and kernel.sequence.ok
            and kernel.sequence.changes is not None
        ):
            return kernel.sequence.changes.path_set
        return None

    def adopt_sequences(self, carried: Mapping[str, CompiledSequence]) -> None:
        """Seed prior-run compiled sequences, keyed by difftree canonical key.

        Used by :class:`repro.serve.IncrementalGenerator`: when a warm
        session extends a previous log, the prior best difftree's
        sequence lets this model diff only the newly appended query
        pairs instead of recompiling the whole log.
        """
        self._carried_sequences.update(carried)

    # -- M term -------------------------------------------------------------

    def appropriateness(self, root: WidgetNode) -> float:
        """Σ M(w) over every widget in the tree."""
        total = 0.0
        for node in root.walk():
            total += node.wtype.appropriateness(node.domain)
        return total

    # -- U term -------------------------------------------------------------

    def assignments(self, tree: DTNode) -> Optional[List[Assignment]]:
        """Choice assignments of every input query under ``tree``.

        Returns ``None`` when some query is not expressible (an invalid
        state; rules never produce one, but callers stay defensive).
        """
        key = tree.canonical_key
        cached = self._assignment_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        assignments: Optional[List[Assignment]] = []
        for query in self.queries:
            assignment = assignment_for(tree, query)
            if assignment is None:
                assignments = None
                break
            assignments.append(assignment)
        self._assignment_cache[key] = assignments
        return assignments

    def sequence_cost(
        self, tree: DTNode, root: WidgetNode
    ) -> Tuple[float, int, float, List[float]]:
        """Σ U over consecutive query pairs (reference implementation).

        Returns ``(u_total, steiner_nodes_total, effort_total, per_pair)``.
        """
        assignments = self.assignments(tree)
        if assignments is None:
            return (math.inf, 0, 0.0, [])
        by_path: Dict[Path, WidgetNode] = {
            node.choice_path: node
            for node in root.walk()
            if node.choice_path is not None
        }
        parents, depths = _tree_indexes(root)
        u_total = 0.0
        steiner_total = 0
        effort_total = 0.0
        per_pair: List[float] = []
        for a, b in zip(assignments, assignments[1:]):
            changed = changed_choices(a, b)
            touched = [by_path[p] for p in changed if p in by_path]
            steiner = _steiner_size(touched, parents, depths)
            effort = sum(n.wtype.effort(n.domain, n.size_class) for n in touched)
            pair = self.weights.steiner * steiner + self.weights.effort * effort
            per_pair.append(pair)
            u_total += pair
            steiner_total += steiner
            effort_total += effort
        return (u_total, steiner_total, effort_total, per_pair)

    # -- total -------------------------------------------------------------

    def evaluate(self, tree: DTNode, root: WidgetNode) -> CostBreakdown:
        """Full cost of one (difftree, widget tree) pair.

        Delegates to the compiled kernel when ``root`` shares the
        difftree's derivation topology (every tree produced by the
        choosers does); hand-built or foreign trees fall back to
        :meth:`evaluate_reference`.  Both paths return identical
        breakdowns — the kernel's parity invariant.
        """
        kernel = self.kernel_for(tree)
        vector = kernel.adopt(root)
        if vector is None:
            self.kernel_stats.fallback_evals += 1
            return self.evaluate_reference(tree, root)
        self.kernel_stats.adopted_evals += 1
        return kernel.evaluate(vector)

    def evaluate_reference(self, tree: DTNode, root: WidgetNode) -> CostBreakdown:
        """Walk-everything evaluation (pre-kernel reference semantics).

        Kept as the kernel's ground truth: ``evaluate`` must equal this
        on every breakdown field for any tree the kernel adopts.
        """
        box = measure(root)
        feasible = box.width <= self.screen.width and box.height <= self.screen.height
        m_cost = self.weights.m * self.appropriateness(root)
        u_cost, steiner_nodes, effort, per_pair = self.sequence_cost(tree, root)
        if math.isinf(u_cost):
            feasible = False
            u_cost = 0.0
        return CostBreakdown(
            m_cost=m_cost,
            u_cost=self.weights.u * u_cost,
            feasible=feasible,
            width=box.width,
            height=box.height,
            steiner_nodes=steiner_nodes,
            effort=effort,
            pair_costs=tuple(per_pair),
            overflow_w=max(0.0, box.width - self.screen.width),
            overflow_h=max(0.0, box.height - self.screen.height),
        )


# -- Steiner subtree on the widget tree (reference implementation) ---------------


def _tree_indexes(
    root: WidgetNode,
) -> Tuple[Dict[int, Optional[WidgetNode]], Dict[int, int]]:
    parents: Dict[int, Optional[WidgetNode]] = {id(root): None}
    depths: Dict[int, int] = {id(root): 0}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children:
            parents[id(child)] = node
            depths[id(child)] = depths[id(node)] + 1
            stack.append(child)
    return parents, depths


def _steiner_size(
    targets: List[WidgetNode],
    parents: Dict[int, Optional[WidgetNode]],
    depths: Dict[int, int],
) -> int:
    """Node count of the minimal subtree connecting ``targets``.

    In a tree, the minimal connected subgraph containing a node set equals
    the union of each target's path to the set's lowest common ancestor —
    computed exactly here (no approximation).
    """
    if not targets:
        return 0
    if len(targets) == 1:
        return 1
    lca = targets[0]
    for node in targets[1:]:
        lca = _lca(lca, node, parents, depths)
    nodes = set()
    for node in targets:
        cursor: Optional[WidgetNode] = node
        while cursor is not None and id(cursor) != id(lca):
            nodes.add(id(cursor))
            cursor = parents[id(cursor)]
    nodes.add(id(lca))
    return len(nodes)


def _lca(
    a: WidgetNode,
    b: WidgetNode,
    parents: Dict[int, Optional[WidgetNode]],
    depths: Dict[int, int],
) -> WidgetNode:
    while depths[id(a)] > depths[id(b)]:
        a = parents[id(a)]
    while depths[id(b)] > depths[id(a)]:
        b = parents[id(b)]
    while id(a) != id(b):
        a = parents[id(a)]
        b = parents[id(b)]
    return a
