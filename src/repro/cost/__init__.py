"""Cost model C(W,Q) and difftree-state evaluation."""

from .evaluate import (
    EvaluatedInterface,
    coordinate_descent,
    exhaustive_evaluation,
    sampled_evaluation,
    worst_sampled_evaluation,
)
from .model import CostBreakdown, CostModel, CostWeights

__all__ = [
    "CostModel",
    "CostWeights",
    "CostBreakdown",
    "EvaluatedInterface",
    "sampled_evaluation",
    "exhaustive_evaluation",
    "coordinate_descent",
    "worst_sampled_evaluation",
]
