"""Cost model C(W,Q), compiled evaluation kernel, and state evaluation."""

from .batch import BatchBreakdowns, BatchCostKernel
from .evaluate import (
    EvaluatedInterface,
    coordinate_descent,
    exhaustive_evaluation,
    sampled_evaluation,
    worst_sampled_evaluation,
)
from .kernel import (
    BoundedLRU,
    CompiledSequence,
    CostKernel,
    KernelStats,
)
from .model import CostBreakdown, CostModel, CostWeights

__all__ = [
    "CostModel",
    "CostWeights",
    "CostBreakdown",
    "CostKernel",
    "BatchCostKernel",
    "BatchBreakdowns",
    "CompiledSequence",
    "KernelStats",
    "BoundedLRU",
    "EvaluatedInterface",
    "sampled_evaluation",
    "exhaustive_evaluation",
    "coordinate_descent",
    "worst_sampled_evaluation",
]
