"""Append-only query-log ingestion: :class:`LogStream` and :class:`SessionRouter`.

Real analysis logs arrive as per-session append-only streams of SQL
text, with heavy repetition (analysts re-run near-identical queries).
:class:`LogStream` ingests such a stream while parsing each distinct SQL
string exactly once, and precomputes the per-query canonical keys the
prefix-matching :class:`~repro.serve.cache.InterfaceCache` needs.
:class:`SessionRouter` shards many concurrent sessions over independent
lock-protected stream groups, so ingestion scales with the shard count
instead of serializing on one global lock.
"""

from __future__ import annotations

import threading
import time
import zlib
from bisect import bisect_left, bisect_right, insort
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .. import memo as _memo
from ..difftree import wrap_ast
from ..memo import INGEST
from ..sqlast import Node, parse
from .cache import log_key_fast, log_key_reference

QueryLike = Union[str, Node]


def _normalized_text(sql: str) -> Optional[str]:
    """Whitespace-collapsed form of ``sql``, or None when unsafe/identical.

    The normalized-duplicate dedup tier keys the parse cache under this
    form too, so a re-run that differs only in spacing/line breaks skips
    the parser.  Quoted strings and comments make whitespace significant,
    so any query containing them opts out (exact-text tier still applies).
    """
    if "'" in sql or '"' in sql or "--" in sql:
        return None
    collapsed = " ".join(sql.split())
    return collapsed if collapsed != sql else None


class LogStream:
    """One session's append-only SQL log with parse-once AST caching.

    Args:
        parse_cache: optional shared ``sql text -> AST`` cache.  Sessions
            routed to the same shard share one, so a query text seen in
            any of them is never parsed twice.
    """

    def __init__(self, parse_cache: Optional[Dict[str, Node]] = None) -> None:
        self._sql: List[str] = []
        self._asts: List[Node] = []
        self._query_keys: List[str] = []
        #: Per-entry ingest timestamps (``time.monotonic()``), the
        #: material of age-based :meth:`retain` windows.  Nondecreasing
        #: by construction, so an age cutoff is one bisect.
        self._times: List[float] = []
        #: Sorted distinct per-query keys, maintained per append — the
        #: material of :meth:`log_key`.  The digest is cached and only
        #: invalidated when the distinct *set* changes (duplicate appends
        #: and duplicate removals leave it valid), so keying a session is
        #: O(1) amortized instead of re-keying the whole log per probe.
        self._distinct_keys: List[str] = []
        #: Multiplicity per distinct key — lets :meth:`remove` retire a
        #: key from the sorted set exactly when its last occurrence goes,
        #: without rescanning the log.
        self._key_counts: Dict[str, int] = {}
        self._log_key: Optional[str] = None
        self._parse_cache: Dict[str, Node] = (
            parse_cache if parse_cache is not None else {}
        )
        #: Ingestion counters: total appends vs. appends that skipped the
        #: parser because the text was already in the cache.
        self.parses = 0
        self.parse_hits = 0
        #: Appends served by the normalized-duplicate tier (same query
        #: modulo whitespace — a re-parse skipped without an exact match).
        self.dedup_hits = 0

    def __len__(self) -> int:
        return len(self._asts)

    @property
    def version(self) -> int:
        """Monotone stream version — the number of queries ingested."""
        return len(self._asts)

    def append(self, *queries: QueryLike) -> int:
        """Ingest queries (SQL text or pre-parsed ASTs); returns the new length.

        Atomic: every query is parsed and keyed before any is committed,
        so a parse error mid-batch leaves the log unchanged instead of
        permanently ingesting the batch's leading queries.
        """
        staged = []
        for query in queries:
            if isinstance(query, Node):
                ast = query
                parsed_fresh = False
                normalized_hit = False
            elif isinstance(query, str):
                # Fingerprint-first dedup: exact text, then the
                # whitespace-normalized form, then (and only then) parse.
                normalized_hit = False
                ast = self._parse_cache.get(query)
                norm = None
                if ast is None:
                    norm = _normalized_text(query)
                    if norm is not None:
                        ast = self._parse_cache.get(norm)
                        normalized_hit = ast is not None
                parsed_fresh = ast is None
                if parsed_fresh:
                    ast = parse(query)
                if parsed_fresh or normalized_hit:
                    self._parse_cache[query] = ast
                if norm is not None and norm not in self._parse_cache:
                    self._parse_cache[norm] = ast
            else:
                raise TypeError(f"query must be SQL text or AST, got {type(query)}")
            staged.append(
                (query, ast, parsed_fresh, normalized_hit, wrap_ast(ast).canonical_key)
            )
        for query, ast, parsed_fresh, normalized_hit, key in staged:
            if isinstance(query, str):
                if parsed_fresh:
                    self.parses += 1
                else:
                    self.parse_hits += 1
                    if normalized_hit:
                        self.dedup_hits += 1
                        INGEST.text_dedup_hits += 1
            self._sql.append(query if isinstance(query, str) else "")
            self._asts.append(ast)
            self._query_keys.append(key)
            self._times.append(time.monotonic())
            count = self._key_counts.get(key, 0)
            self._key_counts[key] = count + 1
            if count == 0:
                insort(self._distinct_keys, key)
                self._log_key = None
        return len(self._asts)

    def log_key(self) -> str:
        """The session's current log fingerprint (incrementally maintained).

        Same digest as ``cache.log_key(self.asts())`` in either gate
        mode, but O(1) on the fast path when the distinct-key set hasn't
        grown since the last probe — the per-append re-keying of the
        whole log used to dominate ingest time.
        """
        if not self._asts:
            raise ValueError("need at least one input query")
        if not _memo.fast_paths_enabled():
            return log_key_reference(self._asts)
        key = self._log_key
        if key is None:
            key = self._log_key = log_key_fast(self._distinct_keys)
        return key

    def asts(self, end: Optional[int] = None) -> Tuple[Node, ...]:
        """The ingested ASTs (optionally only the first ``end``)."""
        return tuple(self._asts[: len(self._asts) if end is None else end])

    def ast(self, index: int) -> Node:
        """The AST at ``index`` (negative indexes allowed), without copying."""
        return self._asts[index]

    def sql(self) -> Tuple[str, ...]:
        """The raw SQL strings (empty string for AST-only appends)."""
        return tuple(self._sql)

    def query_keys(self, end: Optional[int] = None) -> Tuple[str, ...]:
        """Per-query canonical keys, in log order (prefix-cache material)."""
        return tuple(
            self._query_keys[: len(self._query_keys) if end is None else end]
        )

    def truncate(self, length: int) -> int:
        """Roll the log back to its first ``length`` queries.

        The scheduler's undo for a chunk whose interface was never
        delivered (cancelled or failed script): appended-but-unserved
        queries must not pollute the session's log.  Returns the new
        length; a ``length`` at or beyond the current end is a no-op.
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if length < len(self._asts):
            del self._sql[length:]
            del self._asts[length:]
            del self._query_keys[length:]
            del self._times[length:]
            self._key_counts = {}
            for key in self._query_keys:
                self._key_counts[key] = self._key_counts.get(key, 0) + 1
            self._distinct_keys = sorted(self._key_counts)
            self._log_key = None
        return len(self._asts)

    def remove(self, indices: Iterable[int]) -> Tuple[int, ...]:
        """Delete the queries at ``indices``; returns them sorted ascending.

        Survivors keep their relative order.  Bounded recompute: each
        removal retires its key from the sorted distinct set only when
        its *last* occurrence goes (multiplicity-counted), and the log
        fingerprint digest is invalidated only when the distinct set
        actually shrank — removing one copy of a repeated query leaves
        :meth:`log_key` cached.
        """
        length = len(self._asts)
        normalized = sorted({i if i >= 0 else i + length for i in indices})
        if not normalized:
            return ()
        if normalized[0] < 0 or normalized[-1] >= length:
            raise IndexError(
                f"remove indices {normalized} outside the {length}-query log"
            )
        for i in reversed(normalized):
            key = self._query_keys[i]
            del self._sql[i]
            del self._asts[i]
            del self._query_keys[i]
            del self._times[i]
            count = self._key_counts[key] - 1
            if count:
                self._key_counts[key] = count
            else:
                del self._key_counts[key]
                del self._distinct_keys[bisect_left(self._distinct_keys, key)]
                self._log_key = None
        return tuple(normalized)

    def retain(
        self,
        last_n: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, ...]:
        """Keep only a retention window of the log; returns the dropped indices.

        Args:
            last_n: keep at most the ``last_n`` most recent queries.
            max_age_s: drop queries ingested more than this many seconds
                ago (by the stream's monotonic clock).
            now: clock override for tests (default ``time.monotonic()``).

        Both bounds may be combined (the stricter wins).  Retention only
        ever retires a *prefix* — appends are time-ordered — so the
        recompute downstream carriers pay is bounded by one rejoined
        boundary pair (see ``CompiledSequence.without``).
        """
        if last_n is None and max_age_s is None:
            raise ValueError("retain() needs last_n and/or max_age_s")
        drop_before = 0
        if last_n is not None:
            if last_n < 0:
                raise ValueError(f"last_n must be >= 0, got {last_n}")
            drop_before = max(drop_before, len(self._asts) - last_n)
        if max_age_s is not None:
            if max_age_s < 0:
                raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
            cutoff = (time.monotonic() if now is None else now) - max_age_s
            drop_before = max(drop_before, bisect_right(self._times, cutoff))
        if drop_before <= 0:
            return ()
        return self.remove(range(drop_before))


class _Shard:
    """One router shard: a lock, a shared parse cache, and its streams."""

    __slots__ = ("lock", "parse_cache", "streams")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.parse_cache: Dict[str, Node] = {}
        self.streams: Dict[str, LogStream] = {}


class SessionRouter:
    """Shards per-session :class:`LogStream` instances by session id.

    Sharding uses ``crc32`` of the session id (Python's builtin ``hash``
    is salted per process, which would re-shuffle sessions across
    restarts).  Each shard holds its own lock and parse cache, so
    concurrent appends from sessions on different shards never contend.
    """

    def __init__(
        self,
        num_shards: int = 8,
        stream_factory: Callable[..., LogStream] = LogStream,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self._shards = [_Shard() for _ in range(num_shards)]
        self._stream_factory = stream_factory
        from ..obs import REGISTRY

        REGISTRY.register_source("serve.router", self.ingest_totals, weak=True)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, session_id: str) -> int:
        """Stable shard index of a session (same across processes/runs)."""
        return zlib.crc32(session_id.encode("utf-8")) % len(self._shards)

    def stream(self, session_id: str) -> LogStream:
        """The session's stream, created on first use."""
        shard = self._shards[self.shard_of(session_id)]
        with shard.lock:
            stream = shard.streams.get(session_id)
            if stream is None:
                stream = self._stream_factory(parse_cache=shard.parse_cache)
                shard.streams[session_id] = stream
            return stream

    def append(self, session_id: str, *queries: QueryLike) -> int:
        """Append to a session's log; returns the stream's new length."""
        shard = self._shards[self.shard_of(session_id)]
        with shard.lock:
            stream = shard.streams.get(session_id)
            if stream is None:
                stream = self._stream_factory(parse_cache=shard.parse_cache)
                shard.streams[session_id] = stream
            return stream.append(*queries)

    def sessions(self) -> List[str]:
        """All live session ids (across shards)."""
        out: List[str] = []
        for shard in self._shards:
            with shard.lock:
                out.extend(shard.streams)
        return out

    def ingest_totals(self) -> Dict[str, int]:
        """Summed per-stream ingest counters across every live session."""
        totals = {"stream_parses": 0, "stream_parse_hits": 0, "stream_dedup_hits": 0}
        for shard in self._shards:
            with shard.lock:
                for stream in shard.streams.values():
                    totals["stream_parses"] += stream.parses
                    totals["stream_parse_hits"] += stream.parse_hits
                    totals["stream_dedup_hits"] += stream.dedup_hits
        return totals

    def truncate(self, session_id: str, length: int) -> int:
        """Roll a session's log back to ``length`` queries (0 if absent)."""
        shard = self._shards[self.shard_of(session_id)]
        with shard.lock:
            stream = shard.streams.get(session_id)
            if stream is None:
                return 0
            return stream.truncate(length)

    def remove(self, session_id: str, indices: Iterable[int]) -> Tuple[int, ...]:
        """Delete queries from a session's log (empty tuple if absent)."""
        shard = self._shards[self.shard_of(session_id)]
        with shard.lock:
            stream = shard.streams.get(session_id)
            if stream is None:
                return ()
            return stream.remove(indices)

    def retain(
        self,
        session_id: str,
        last_n: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> Tuple[int, ...]:
        """Apply a retention window to a session's log (see
        :meth:`LogStream.retain`); returns the dropped indices."""
        shard = self._shards[self.shard_of(session_id)]
        with shard.lock:
            stream = shard.streams.get(session_id)
            if stream is None:
                return ()
            return stream.retain(last_n=last_n, max_age_s=max_age_s)

    def drop(self, session_id: str) -> bool:
        """Forget a session's stream; returns whether it existed."""
        shard = self._shards[self.shard_of(session_id)]
        with shard.lock:
            return shard.streams.pop(session_id, None) is not None
