"""LRU interface cache keyed by a fingerprint of the normalized log.

The cache key is built from the cached per-query fingerprints
(:func:`query_key` — the wrapped AST's canonical key, memoized on the
interned AST): the sorted distinct fingerprints identify the query *set*
deterministically, so a repeated log, or one that merely re-orders or
repeats queries, hits the same entry — at the cost of a few dict lookups
per probe instead of rebuilding and normalizing an initial difftree over
the full log.  (The cached widget tree expresses every query regardless
of order; only the sequential-usability cost term is order-sensitive, so
an order-permuted hit returns a valid interface whose reported cost was
measured under the cached order.)

Screen geometry and generation settings are folded into the key too —
the same log on a phone screen is a different interface.

Entries also carry the per-query canonical keys in log order, enabling
*longest-prefix* lookup: a session that grew by a few queries can warm-
start from the cached interface of its longest cached prefix instead of
searching from scratch (see :class:`~repro.serve.incremental.IncrementalGenerator`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .. import memo as _memo
from ..core import GeneratedInterface, GenerationConfig
from ..difftree import initial_difftree, wrap_ast
from ..layout import Screen
from ..sqlast import Node


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (``prefix_hits`` counts warm-start reuse)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefix_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class _Entry:
    context_key: str
    query_keys: Tuple[str, ...]
    result: GeneratedInterface


@dataclass(frozen=True)
class PrefixMatch:
    """A cached interface covering a proper prefix of the requested log."""

    result: GeneratedInterface
    matched: int  #: how many leading queries of the request are covered


def query_key(ast: Node) -> str:
    """Stable per-query fingerprint (the wrapped AST's canonical key).

    ``wrap_ast`` is memoized on the interned AST, so repeated keying of
    the same query — every cache probe of a growing session re-keys its
    whole log — costs one dict lookup after first sight.
    """
    return wrap_ast(ast).canonical_key


def log_key_fast(query_keys: Sequence[str]) -> str:
    """Set-fingerprint key derivation over per-query canonical keys.

    Order- and duplication-insensitive (the distinct keys are sorted),
    which is the same granularity as the reference derivation below —
    but the two *texts* hash different material, so the derivations
    yield different digests for the same log by construction.  Both are
    deterministic; each mode's keys are stable across runs and
    processes.  ``bench_ingest.py`` asserts exactly this relationship
    (cross-mode divergence, within-mode agreement).
    """
    if not query_keys:
        raise ValueError("need at least one input query")
    distinct = sorted(set(query_keys))
    return hashlib.md5("|".join(distinct).encode("utf-8")).hexdigest()


def log_key_reference(queries: Sequence[Node]) -> str:
    """Historical key derivation: the initial difftree's canonical key.

    Rebuilds and normalizes a difftree over the full log per probe —
    the pre-PR-5 behavior, kept as the reference-mode derivation and as
    the oracle the fast derivation's *granularity* is checked against
    (both deduplicate and ignore order).
    """
    if not queries:
        raise ValueError("need at least one input query")
    return initial_difftree(queries).canonical_key


def log_key(queries: Sequence[Node]) -> str:
    """Deterministic fingerprint of the query *set*.

    Dispatches on the fast-path gate: :func:`log_key_fast` over the
    memoized per-query fingerprints normally, :func:`log_key_reference`
    when fast paths are disabled (the benchmark's reference mode).
    """
    if not _memo.fast_paths_enabled():
        return log_key_reference(queries)
    if not queries:
        raise ValueError("need at least one input query")
    return log_key_fast([query_key(ast) for ast in queries])


def context_key(screen: Screen, config: GenerationConfig) -> str:
    """Fingerprint of everything besides the log that shapes the output."""
    text = repr((screen, config))
    return hashlib.md5(text.encode("utf-8")).hexdigest()


class InterfaceCache:
    """Thread-safe LRU of generated interfaces.

    Args:
        capacity: maximum entries; the least recently *used* entry is
            evicted first (lookups refresh recency).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        from ..obs import REGISTRY

        REGISTRY.register_source("serve.cache", self.snapshot, weak=True)

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict:
        """Uniform counter snapshot (same shape as ``BoundedLRU.stats``)."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "prefix_hits": self.stats.prefix_hits,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }

    @staticmethod
    def key_for(
        queries: Sequence[Node], screen: Screen, config: GenerationConfig
    ) -> str:
        return f"{log_key(queries)}:{context_key(screen, config)}"

    def get(self, key: str) -> Optional[GeneratedInterface]:
        """Exact lookup; refreshes recency and counts hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.result

    def peek(self, key: str) -> Optional[GeneratedInterface]:
        """Exact lookup that touches neither recency nor hit/miss stats.

        The snapshot capture path: reading a session's current entry to
        serialize it must not perturb the LRU order or the counters the
        serving metrics report.
        """
        with self._lock:
            entry = self._entries.get(key)
            return entry.result if entry is not None else None

    def put(
        self,
        key: str,
        result: GeneratedInterface,
        query_keys: Sequence[str] = (),
        ctx: str = "",
    ) -> None:
        """Insert (or refresh) an entry, evicting LRU entries beyond capacity."""
        with self._lock:
            self._entries[key] = _Entry(
                context_key=ctx, query_keys=tuple(query_keys), result=result
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def longest_prefix(
        self, query_keys: Sequence[str], ctx: str
    ) -> Optional[PrefixMatch]:
        """Best cached entry whose log is a proper prefix of ``query_keys``.

        Linear scan over entries (capacity is small by design); ties on
        match length break toward the most recently used entry.  Does not
        refresh recency — a prefix match feeds a warm start, and the new
        log's own entry will be inserted right after.
        """
        request = tuple(query_keys)
        best: Optional[PrefixMatch] = None
        with self._lock:
            for entry in reversed(self._entries.values()):
                if entry.context_key != ctx or not entry.query_keys:
                    continue
                n = len(entry.query_keys)
                if n >= len(request):
                    continue
                if entry.query_keys == request[:n]:
                    if best is None or n > best.matched:
                        best = PrefixMatch(result=entry.result, matched=n)
        if best is not None:
            self.stats.prefix_hits += 1
        return best

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
