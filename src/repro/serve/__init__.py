"""repro.serve — incremental, cached, multi-process interface generation.

The serving layer over the one-shot :func:`repro.generate_interface`
pipeline:

* :class:`LogStream` / :class:`SessionRouter` — sharded append-only
  ingestion with parse-once AST caching.
* :class:`InterfaceCache` — LRU keyed by the canonical key of the
  normalized log; exact hits skip search entirely, prefix hits feed
  warm starts.
* :class:`IncrementalGenerator` — extends the previous difftree to
  appended queries by anti-unification and warm-starts MCTS from the
  prior run's transposition table and incumbent.
* :func:`generate_interfaces_batch` — fans independent logs across a
  process pool with a shared config.
"""

from .batch import EXECUTORS, generate_interfaces_batch
from .cache import (
    CacheStats,
    InterfaceCache,
    PrefixMatch,
    context_key,
    log_key,
    query_key,
)
from .incremental import DEFAULT_SESSION, IncrementalGenerator, PendingSearch
from .stream import LogStream, SessionRouter

__all__ = [
    "LogStream",
    "SessionRouter",
    "InterfaceCache",
    "CacheStats",
    "PrefixMatch",
    "log_key",
    "query_key",
    "context_key",
    "IncrementalGenerator",
    "PendingSearch",
    "DEFAULT_SESSION",
    "generate_interfaces_batch",
    "EXECUTORS",
]
