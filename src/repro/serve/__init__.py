"""repro.serve — incremental, cached, multi-process interface generation.

The serving layer over the one-shot :func:`repro.generate_interface`
pipeline:

* :class:`LogStream` / :class:`SessionRouter` — sharded append-only
  ingestion with parse-once AST caching.
* :class:`InterfaceCache` — LRU keyed by the canonical key of the
  normalized log; exact hits skip search entirely, prefix hits feed
  warm starts.
* :class:`IncrementalGenerator` — extends the previous difftree to
  appended queries by anti-unification and warm-starts MCTS from the
  prior run's transposition table and incumbent.
* :func:`generate_interfaces_batch` — fans independent logs across a
  process pool with a shared config.
* :class:`SessionSnapshot` / :class:`SnapshotStore` /
  :class:`SnapshotWriter` — durable capture + restore of a session's
  full warm state (write-behind, generation-guarded).
* :class:`ClusterFront` — sharded multi-process serving with
  consistent-hash routing and snapshot-backed crash recovery.
"""

from .batch import EXECUTORS, generate_interfaces_batch
from .cache import (
    CacheStats,
    InterfaceCache,
    PrefixMatch,
    context_key,
    log_key,
    query_key,
)
from .cluster import ClusterError, ClusterFront, ClusterTicket, HashRing
from .incremental import DEFAULT_SESSION, IncrementalGenerator, PendingSearch
from .snapshot import SNAPSHOT_SCHEMA_VERSION, SessionSnapshot, SnapshotError
from .store import (
    MemorySnapshotStore,
    SnapshotStore,
    SnapshotStoreError,
    SnapshotWriter,
    SQLiteSnapshotStore,
    StaleSnapshotError,
    open_store,
)
from .stream import LogStream, SessionRouter

__all__ = [
    "LogStream",
    "SessionRouter",
    "InterfaceCache",
    "CacheStats",
    "PrefixMatch",
    "log_key",
    "query_key",
    "context_key",
    "IncrementalGenerator",
    "PendingSearch",
    "DEFAULT_SESSION",
    "generate_interfaces_batch",
    "EXECUTORS",
    "SessionSnapshot",
    "SnapshotError",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotStore",
    "MemorySnapshotStore",
    "SQLiteSnapshotStore",
    "SnapshotWriter",
    "SnapshotStoreError",
    "StaleSnapshotError",
    "open_store",
    "ClusterFront",
    "ClusterTicket",
    "ClusterError",
    "HashRing",
]
