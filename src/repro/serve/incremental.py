"""Incremental, warm-started interface generation over growing logs.

Cold generation re-parses the log, rebuilds the initial state, and
searches from scratch on every call.  For an append-only session stream
that is wasted work: the optimized difftree for the first ``n`` queries
is one anti-unification away from a valid — and usually near-optimal —
state for the first ``n + m``.  :class:`IncrementalGenerator` exploits
that in three layers:

1. **Exact cache** — an unchanged (or permuted/duplicated) log is served
   straight from :class:`~repro.serve.cache.InterfaceCache` with *zero*
   search iterations.
2. **Session warm start** — on appends, the previous run's best difftree
   (and its elite transposition-table states) are extended to the new
   queries via :func:`~repro.difftree.extend_difftree` and injected into
   the next MCTS run, seeding both the incumbent and the UCT statistics.
3. **Prefix warm start** — a session with no prior run of its own can
   still warm-start from the cached interface of its longest cached log
   prefix (e.g. a restarted session replaying its history).

On top of the state warm start, each session carries the *compiled
query sequences* (:class:`repro.cost.CompiledSequence`) of its previous
winner and elite states.  When the next run's extended state is the
same difftree (grafting is a no-op whenever the tree already expresses
the appended queries — the common case for sessions revisiting familiar
query shapes), the new cost model reuses the prior per-query
assignments and changed-choice sets wholesale and only diffs the newly
appended pairs.  A grafted (structurally changed) tree shifts its
choice paths, so its carry entry simply misses and the sequence is
recompiled — correctness never depends on the carry.

Warm seeding spends the same per-evaluation budget as search, so warm
and cold runs at equal ``time_budget_s`` are directly comparable — the
contract the incremental benchmark checks.

Every evaluation a serving run performs — warm-seed scoring, the MCTS
expansion cohorts, and the final exhaustive widget pass — flows through
the vectorized batch cost kernel (:mod:`repro.cost.batch`) when the
``memo.batch`` gate is on: a state's candidate assignments are scored
as one nodes × candidates numpy population instead of per-candidate
scalar deltas, with bit-identical breakdowns either way.  Serving
sessions benefit the most because their states are the largest (many
appended queries ⇒ wide decision schemas), which is exactly where the
population pass amortizes best.

Generation is *resumable*: :meth:`IncrementalGenerator.open_search`
builds the full warm-started machinery (cache probe, extended warm
states, adopted compiled sequences, opened MCTS task) without running
the search, returning a :class:`PendingSearch` whose ``task`` the
multi-session scheduler steps in slices and whose ``finish()`` performs
the same elite/sequence harvest and cache insertion as a monolithic
:meth:`IncrementalGenerator.generate` call — which is itself implemented
as open → run → finish.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import memo as _memo
from ..obs import collecting as _collecting, trace as _trace
from ..core import (
    GeneratedInterface,
    GenerationConfig,
    as_mcts_config,
    prepare_search,
)
from ..cost import CompiledSequence
from ..difftree import DTNode, extend_difftree
from ..layout import Screen
from ..registry import strategy_spec
from ..rules import RuleEngine
from ..search.carry import STATS as CARRY_STATS, CarriedTree
from ..search.mcts import MCTS, MCTSTask
from .cache import InterfaceCache, context_key
from .stream import QueryLike, SessionRouter

#: Session id used by the single-session convenience paths.
DEFAULT_SESSION = "default"


@dataclass
class _SessionState:
    """What one session carries from run to run."""

    log_len: int = 0
    best: Optional[DTNode] = None
    elite: Tuple[DTNode, ...] = ()
    #: difftree canonical key -> compiled query sequence of the previous
    #: run's winner/elites; the next run's cost model extends these so
    #: appended queries only diff the new pairs.
    sequences: Dict[str, CompiledSequence] = field(default_factory=dict)
    #: The previous run's harvested search tree (UCT statistics +
    #: per-state choice-path universes); the next run rebases it with
    #: delta-scoped invalidation instead of re-exploring from scratch.
    #: ``None`` until a search finishes (or when the carry gate is off).
    tree: Optional[CarriedTree] = None


class PendingSearch:
    """One opened (but not yet finished) search for a session's log.

    Produced by :meth:`IncrementalGenerator.open_search`.  Either the
    cache already had the answer (``cached`` is set, ``task`` is None)
    or ``task`` is an opened, warm-started
    :class:`~repro.search.mcts.MCTSTask` the caller steps — in slices
    (the scheduler) or to completion (``task.step()``) — before calling
    :meth:`finish` exactly once to harvest elites/compiled sequences,
    insert the cache entry, and update the session's warm-start carry.
    """

    def __init__(
        self,
        service: "IncrementalGenerator",
        session_id: str,
        cached: Optional[GeneratedInterface] = None,
        task: Optional[MCTSTask] = None,
        mcts: Optional[MCTS] = None,
        key: str = "",
        query_keys: Tuple[str, ...] = (),
        asts: Tuple = (),
        screen: Optional[Screen] = None,
        initial: Optional[DTNode] = None,
        state: Optional[_SessionState] = None,
    ) -> None:
        self._service = service
        self.session_id = session_id
        self.cached = cached
        self.task = task
        self._mcts = mcts
        self._key = key
        self._query_keys = query_keys
        self._asts = asts
        self._screen = screen
        self._initial = initial
        self._state = state
        self._finished = False
        #: Spans collected for this pending search (open + steps + finish).
        #: The scheduler's lease keeps per-session work single-threaded, so
        #: plain-list appends are race-free.
        self.spans: List[dict] = []
        #: Per-phase wall-clock seconds (``parse_s``/``difftree_s``/...),
        #: filled by :meth:`IncrementalGenerator.open_search` and
        #: :meth:`finish`; consumed by report builders.
        self.timings: Dict[str, float] = {}
        #: Search-tree carry provenance of this run (``None`` when no
        #: carried tree was rebased — cold runs, cache hits, gate off):
        #: nodes carried / invalidated / re-keyed / reopened.  Surfaced
        #: through :class:`~repro.engine.report.GenerationReport`.
        self.carry: Optional[Dict[str, int]] = None

    @property
    def log_size(self) -> int:
        """How many queries the pending interface will express."""
        if self.cached is not None:
            return len(self.cached.queries)
        return len(self._asts)

    def finish(self) -> GeneratedInterface:
        """Package the search outcome and commit the session carry.

        Idempotent-guarded: a pending search is finished once.  Callable
        before the task is ``done`` too — cancellation still commits the
        best interface found so far.
        """
        if self.cached is not None:
            return self.cached
        if self._finished:
            raise RuntimeError("PendingSearch.finish() called twice")
        self._finished = True
        service = self._service
        with _collecting(self.spans), _trace("serve.finish", session=self.session_id):
            search_result = self.task.result()
            render_started = time.perf_counter()
            elite = service._elite_states(
                self._mcts, self._initial, search_result.best_state
            )
            result = GeneratedInterface(
                queries=list(self._asts),
                screen=self._screen,
                search=search_result,
                best=search_result.best,
            )
            model = self._mcts.model
            state = self._state
            with service._lock:
                state.sequences = service._harvest_sequences(
                    model, (search_result.best_state,) + elite
                )
                service.searches_run += 1
                state.log_len = len(self._asts)
                state.best = result.difftree
                state.elite = elite
                # Carry the search tree itself: transposition table,
                # UCT statistics, and per-state choice-path universes
                # (peeked from the kernel cache the sequences above just
                # refreshed).  The next open_search rebases it.
                if _memo.carry_enabled():
                    state.tree = CarriedTree.harvest(
                        self._mcts,
                        model,
                        log_len=len(self._asts),
                        max_nodes=service.carry_max_nodes,
                    )
                else:
                    state.tree = None
            # Bound the cache tags to the snapshot taken at open time: a
            # concurrent append during the search must not tag this entry
            # with queries the generated interface never saw.
            service.cache.put(
                self._key, result, query_keys=self._query_keys, ctx=service._ctx
            )
            self.timings["search_s"] = self.task.elapsed
            self.timings["render_s"] = time.perf_counter() - render_started
        return result


class IncrementalGenerator:
    """A long-lived generation service over per-session query streams.

    Args:
        screen: target screen (default wide).
        config: generation settings; the strategy must be ``"mcts"`` —
            warm-starting seeds its transposition table.
        engine: custom rule engine (default: full paper rule set).
        cache: interface cache to consult/populate (default: fresh LRU).
        router: session router to ingest through (default: 8 shards).
        warm_top_k: how many elite transposition-table states (beyond
            the best) to extend and re-seed on the next run.
        carry_max_nodes: harvest cap of the carried search tree — at
            most this many transposition-table nodes (most-visited
            first, parent-closed) survive between a session's runs.
    """

    def __init__(
        self,
        screen: Optional[Screen] = None,
        config: Optional[GenerationConfig] = None,
        engine: Optional[RuleEngine] = None,
        cache: Optional[InterfaceCache] = None,
        router: Optional[SessionRouter] = None,
        warm_top_k: int = 4,
        carry_max_nodes: int = 256,
    ) -> None:
        config = config or GenerationConfig()
        if not strategy_spec(config.strategy).supports_warm_start:
            raise ValueError(
                f"IncrementalGenerator needs a warm-start-capable strategy; "
                f"{config.strategy!r} does not declare supports_warm_start"
            )
        if config.strategy != "mcts":
            # The warm path below drives the MCTS class directly (node
            # table + incumbent seeding); a custom warm-capable strategy
            # would be silently ignored, so refuse it honestly.
            raise ValueError(
                f"IncrementalGenerator currently drives MCTS directly; "
                f"strategy {config.strategy!r} is not supported here"
            )
        self.screen = screen or Screen.wide()
        self.config = config
        self.engine = engine
        self.cache = cache if cache is not None else InterfaceCache()
        self.router = router if router is not None else SessionRouter()
        self.warm_top_k = warm_top_k
        self.carry_max_nodes = carry_max_nodes
        self._sessions: Dict[str, _SessionState] = {}
        self._ctx = context_key(self.screen, self.config)
        #: Guards the per-session carry table and counters — scheduler
        #: workers open/finish searches for different sessions
        #: concurrently.  Searches themselves run outside the lock.
        self._lock = threading.Lock()
        #: How many actual searches this generator has run (cache hits
        #: don't count — the zero-new-iterations contract).
        self.searches_run = 0

    # -- ingestion ----------------------------------------------------------

    def append(self, *queries: QueryLike, session_id: str = DEFAULT_SESSION) -> int:
        """Append queries to a session's log; returns its new length."""
        return self.router.append(session_id, *queries)

    def log_length(self, session_id: str = DEFAULT_SESSION) -> int:
        return len(self.router.stream(session_id))

    def ingest_stats(self) -> Dict[str, int]:
        """Per-stream ingest totals across this generator's sessions."""
        return self.router.ingest_totals()

    def drop_session(self, session_id: str = DEFAULT_SESSION) -> bool:
        """Forget a session's stream and warm-start carry; True if it existed.

        Releases the whole carry — warm states, compiled sequences, and
        the carried search tree with its node graph — so a bounded
        engine's eviction cannot leak ``_TreeNode`` graphs.
        """
        existed = self.router.drop(session_id)
        with self._lock:
            carried = self._sessions.pop(session_id, None) is not None
        return carried or existed

    def remove(
        self, indices, session_id: str = DEFAULT_SESSION
    ) -> int:
        """Delete queries from a session's log; returns the new length.

        Bounded recompute, not a cold restart: the session's carried
        compiled sequences are retracted in place (only rejoined
        boundary pairs re-diffed), the carried search tree's coverage
        and universes shrink accordingly, and the warm-start offset is
        shifted — the prior best/elite states still express every
        surviving query (removal only shrinks the log they covered), so
        the next search stays warm.
        """
        removed = self.router.remove(session_id, indices)
        self._retract(session_id, removed)
        return len(self.router.stream(session_id))

    def retain(
        self,
        last_n: Optional[int] = None,
        max_age_s: Optional[float] = None,
        session_id: str = DEFAULT_SESSION,
    ) -> int:
        """Apply a retention window (count and/or age); returns the new length.

        See :meth:`~repro.serve.stream.LogStream.retain` for the window
        semantics and :meth:`remove` for the bounded-recompute carry
        maintenance.
        """
        removed = self.router.retain(
            session_id, last_n=last_n, max_age_s=max_age_s
        )
        self._retract(session_id, removed)
        return len(self.router.stream(session_id))

    def _retract(self, session_id: str, removed: Tuple[int, ...]) -> None:
        """Shrink a session's carry after ``removed`` log indices went away."""
        if not removed:
            return
        CARRY_STATS.retention_removals += len(removed)
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                return
            state.log_len -= sum(1 for i in removed if i < state.log_len)
            # Retract the carried compiled sequences in place: each one
            # covers a prefix of the pre-removal log, so indices below
            # its coverage map one-to-one and the retraction re-diffs
            # only the rejoined boundary pairs.
            retracted: Dict[str, CompiledSequence] = {}
            for key, sequence in state.sequences.items():
                in_range = [i for i in removed if i < len(sequence.queries)]
                if in_range:
                    sequence, rediffed = sequence.without(in_range)
                    CARRY_STATS.retention_retracts += 1
                    CARRY_STATS.retention_pairs_rediffed += rediffed
                retracted[key] = sequence
            state.sequences = retracted
            tree = state.tree
            if tree is not None:
                tree.log_len -= sum(1 for i in removed if i < tree.log_len)
                # Carried states expressed the whole pre-removal log, so
                # they still express the surviving subset; only their
                # invalidation scopes shrink, tracked where the freshly
                # retracted sequences cover them.
                for key, sequence in retracted.items():
                    if key in tree.universes and sequence.ok:
                        tree.universes[key] = sequence.changes.path_set

    # -- snapshot interop ----------------------------------------------------

    def export_session(
        self, session_id: str = DEFAULT_SESSION
    ) -> Optional[Tuple[int, Optional[DTNode], Tuple[DTNode, ...],
                        Dict[str, CompiledSequence], Optional[CarriedTree]]]:
        """The session's carry, read atomically (None when it has none).

        The :mod:`repro.serve.snapshot` capture path: returns
        ``(log_len, best, elite, sequences, tree)`` — everything the
        next :meth:`open_search` would consume beyond the log itself.
        """
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                return None
            return (
                state.log_len,
                state.best,
                state.elite,
                dict(state.sequences),
                state.tree,
            )

    def import_session(
        self,
        session_id: str,
        log_len: int,
        best: Optional[DTNode],
        elite: Tuple[DTNode, ...] = (),
        sequences: Optional[Dict[str, CompiledSequence]] = None,
        tree: Optional[CarriedTree] = None,
    ) -> None:
        """Install a session carry wholesale (the snapshot restore path).

        Overwrites any existing carry for the id — restore is a full
        replacement; callers drop stale state first.
        """
        with self._lock:
            state = self._sessions.setdefault(session_id, _SessionState())
            state.log_len = log_len
            state.best = best
            state.elite = tuple(elite)
            state.sequences = dict(sequences or {})
            state.tree = tree

    # -- generation ---------------------------------------------------------

    def open_search(self, session_id: str = DEFAULT_SESSION) -> PendingSearch:
        """Open a resumable, warm-started search for the session's log.

        Probes the exact cache first (a hit returns a completed
        :class:`PendingSearch` with ``cached`` set and no task); on a
        miss, extends the session's prior best/elite states to the grown
        log, adopts its carried compiled sequences into a fresh cost
        model, and opens the MCTS task — warm seeding included — without
        running a single search iteration.  The caller steps
        ``pending.task`` and then calls ``pending.finish()``.
        """
        spans: List[dict] = []
        timings: Dict[str, float] = {}
        with _collecting(spans), _trace("serve.open_search", session=session_id):
            parse_started = time.perf_counter()
            stream = self.router.stream(session_id)
            asts = stream.asts()
            if not asts:
                raise ValueError(f"session {session_id!r} has an empty log")

            # The stream maintains its log fingerprint incrementally
            # (O(1) when the distinct-query set hasn't grown), replacing
            # the per-probe whole-log re-key that dominated ingest time.
            key = f"{stream.log_key()}:{self._ctx}"
            timings["parse_s"] = time.perf_counter() - parse_started
            with self._lock:
                state = self._sessions.setdefault(session_id, _SessionState())
            cached = self.cache.get(key)
            if cached is not None:
                with self._lock:
                    state.log_len = len(asts)
                    state.best = cached.difftree
                    # Elite states describe an older log and would be extended
                    # from the wrong offset on the next append — drop them.
                    state.elite = ()
                pending = PendingSearch(self, session_id, cached=cached)
            else:
                difftree_started = time.perf_counter()
                warm = self._warm_states(state, stream, asts)
                query_keys = stream.query_keys(end=len(asts))
                asts, screen, model, initial, engine = prepare_search(
                    asts, screen=self.screen, config=self.config, engine=self.engine
                )
                # Prior-run compiled sequences: warm states that graft into
                # the same difftree reuse their assignments and changed-choice
                # sets, paying matcher/diff cost only for the appended pairs.
                if state.sequences:
                    model.adopt_sequences(state.sequences)
                # Rebase the carried search tree onto the grown difftree:
                # survivors keep their UCT statistics, subtrees whose
                # decisions touch the append's changed choice-paths are
                # invalidated, and the rebased table seeds the MCTS
                # transposition table below.
                node_table = None
                carry_prov = None
                if state.tree is not None and _memo.carry_enabled():
                    carried = state.tree
                    boundary = (
                        asts[carried.log_len - 1] if carried.log_len else None
                    )
                    node_table, carry_prov = carried.rebase(
                        initial, boundary, asts[carried.log_len :]
                    )
                timings["difftree_s"] = time.perf_counter() - difftree_started
                mcts = MCTS(
                    model,
                    engine=engine,
                    config=as_mcts_config(self.config),
                    node_table=node_table,
                )
                # Warm seeding inside open() spends search budget, so the
                # task's active clock (-> ``search_s``) accounts for it.
                task = mcts.open(initial, warm_states=warm)
                pending = PendingSearch(
                    self,
                    session_id,
                    task=task,
                    mcts=mcts,
                    key=key,
                    query_keys=query_keys,
                    asts=tuple(asts),
                    screen=screen,
                    initial=initial,
                    state=state,
                )
                pending.carry = carry_prov
        pending.spans.extend(spans)
        pending.timings.update(timings)
        return pending

    def generate(self, session_id: str = DEFAULT_SESSION) -> GeneratedInterface:
        """Interface for the session's current log (cached/warm-started).

        The monolithic convenience over :meth:`open_search`: run the
        opened task to completion in one slice and finish.
        """
        pending = self.open_search(session_id)
        if pending.cached is not None:
            return pending.cached
        pending.task.step()
        return pending.finish()

    # -- internals -----------------------------------------------------------

    def _warm_states(self, state, stream, asts) -> List[DTNode]:
        """Extend prior states to the grown log (dedup by canonical key)."""
        warm: List[DTNode] = []
        seen = set()

        def add(tree: DTNode) -> None:
            if tree.canonical_key not in seen:
                seen.add(tree.canonical_key)
                warm.append(tree)

        if state.best is not None:
            appended = asts[state.log_len :]
            add(extend_difftree(state.best, appended))
            for tree in state.elite[: self.warm_top_k]:
                add(extend_difftree(tree, appended))
        else:
            match = self.cache.longest_prefix(
                stream.query_keys(end=len(asts)), self._ctx
            )
            if match is not None:
                add(extend_difftree(match.result.difftree, asts[match.matched :]))
        return warm

    def _harvest_sequences(
        self, model, trees: Tuple[DTNode, ...]
    ) -> Dict[str, CompiledSequence]:
        """Compiled sequences of the states carried into the next run."""
        return {
            tree.canonical_key: model.compiled_sequence(tree) for tree in trees
        }

    def _elite_states(
        self, mcts: MCTS, initial: DTNode, best_state: DTNode
    ) -> Tuple[DTNode, ...]:
        """Top transposition-table states by mean reward (next warm seeds)."""
        exclude = {initial.canonical_key, best_state.canonical_key}
        ranked = sorted(
            (
                node
                for key, node in mcts.nodes.items()
                if key not in exclude and node.visits > 0
            ),
            key=lambda node: node.mean_reward(),
            reverse=True,
        )
        return tuple(node.state for node in ranked[: self.warm_top_k])
