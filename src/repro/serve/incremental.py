"""Incremental, warm-started interface generation over growing logs.

Cold generation re-parses the log, rebuilds the initial state, and
searches from scratch on every call.  For an append-only session stream
that is wasted work: the optimized difftree for the first ``n`` queries
is one anti-unification away from a valid — and usually near-optimal —
state for the first ``n + m``.  :class:`IncrementalGenerator` exploits
that in three layers:

1. **Exact cache** — an unchanged (or permuted/duplicated) log is served
   straight from :class:`~repro.serve.cache.InterfaceCache` with *zero*
   search iterations.
2. **Session warm start** — on appends, the previous run's best difftree
   (and its elite transposition-table states) are extended to the new
   queries via :func:`~repro.difftree.extend_difftree` and injected into
   the next MCTS run, seeding both the incumbent and the UCT statistics.
3. **Prefix warm start** — a session with no prior run of its own can
   still warm-start from the cached interface of its longest cached log
   prefix (e.g. a restarted session replaying its history).

On top of the state warm start, each session carries the *compiled
query sequences* (:class:`repro.cost.CompiledSequence`) of its previous
winner and elite states.  When the next run's extended state is the
same difftree (grafting is a no-op whenever the tree already expresses
the appended queries — the common case for sessions revisiting familiar
query shapes), the new cost model reuses the prior per-query
assignments and changed-choice sets wholesale and only diffs the newly
appended pairs.  A grafted (structurally changed) tree shifts its
choice paths, so its carry entry simply misses and the sequence is
recompiled — correctness never depends on the carry.

Warm seeding spends the same per-evaluation budget as search, so warm
and cold runs at equal ``time_budget_s`` are directly comparable — the
contract the incremental benchmark checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import (
    GeneratedInterface,
    GenerationConfig,
    as_mcts_config,
    prepare_search,
)
from ..cost import CompiledSequence
from ..difftree import DTNode, extend_difftree
from ..layout import Screen
from ..registry import strategy_spec
from ..rules import RuleEngine
from ..search.mcts import MCTS
from .cache import InterfaceCache, context_key
from .stream import QueryLike, SessionRouter

#: Session id used by the single-session convenience paths.
DEFAULT_SESSION = "default"


@dataclass
class _SessionState:
    """What one session carries from run to run."""

    log_len: int = 0
    best: Optional[DTNode] = None
    elite: Tuple[DTNode, ...] = ()
    #: difftree canonical key -> compiled query sequence of the previous
    #: run's winner/elites; the next run's cost model extends these so
    #: appended queries only diff the new pairs.
    sequences: Dict[str, CompiledSequence] = field(default_factory=dict)


class IncrementalGenerator:
    """A long-lived generation service over per-session query streams.

    Args:
        screen: target screen (default wide).
        config: generation settings; the strategy must be ``"mcts"`` —
            warm-starting seeds its transposition table.
        engine: custom rule engine (default: full paper rule set).
        cache: interface cache to consult/populate (default: fresh LRU).
        router: session router to ingest through (default: 8 shards).
        warm_top_k: how many elite transposition-table states (beyond
            the best) to extend and re-seed on the next run.
    """

    def __init__(
        self,
        screen: Optional[Screen] = None,
        config: Optional[GenerationConfig] = None,
        engine: Optional[RuleEngine] = None,
        cache: Optional[InterfaceCache] = None,
        router: Optional[SessionRouter] = None,
        warm_top_k: int = 4,
    ) -> None:
        config = config or GenerationConfig()
        if not strategy_spec(config.strategy).supports_warm_start:
            raise ValueError(
                f"IncrementalGenerator needs a warm-start-capable strategy; "
                f"{config.strategy!r} does not declare supports_warm_start"
            )
        if config.strategy != "mcts":
            # The warm path below drives the MCTS class directly (node
            # table + incumbent seeding); a custom warm-capable strategy
            # would be silently ignored, so refuse it honestly.
            raise ValueError(
                f"IncrementalGenerator currently drives MCTS directly; "
                f"strategy {config.strategy!r} is not supported here"
            )
        self.screen = screen or Screen.wide()
        self.config = config
        self.engine = engine
        self.cache = cache if cache is not None else InterfaceCache()
        self.router = router if router is not None else SessionRouter()
        self.warm_top_k = warm_top_k
        self._sessions: Dict[str, _SessionState] = {}
        self._ctx = context_key(self.screen, self.config)
        #: How many actual searches this generator has run (cache hits
        #: don't count — the zero-new-iterations contract).
        self.searches_run = 0

    # -- ingestion ----------------------------------------------------------

    def append(self, *queries: QueryLike, session_id: str = DEFAULT_SESSION) -> int:
        """Append queries to a session's log; returns its new length."""
        return self.router.append(session_id, *queries)

    def log_length(self, session_id: str = DEFAULT_SESSION) -> int:
        return len(self.router.stream(session_id))

    def drop_session(self, session_id: str = DEFAULT_SESSION) -> bool:
        """Forget a session's stream and warm-start carry; True if it existed."""
        existed = self.router.drop(session_id)
        return (self._sessions.pop(session_id, None) is not None) or existed

    # -- generation ---------------------------------------------------------

    def generate(self, session_id: str = DEFAULT_SESSION) -> GeneratedInterface:
        """Interface for the session's current log (cached/warm-started)."""
        stream = self.router.stream(session_id)
        asts = stream.asts()
        if not asts:
            raise ValueError(f"session {session_id!r} has an empty log")

        key = InterfaceCache.key_for(asts, self.screen, self.config)
        state = self._sessions.setdefault(session_id, _SessionState())
        cached = self.cache.get(key)
        if cached is not None:
            state.log_len = len(asts)
            state.best = cached.difftree
            # Elite states describe an older log and would be extended
            # from the wrong offset on the next append — drop them.
            state.elite = ()
            return cached

        warm = self._warm_states(state, stream, asts)
        result, elite = self._search(asts, warm, state)
        self.searches_run += 1
        # Bound the key reads to the snapshot taken above: a concurrent
        # append during the search must not tag this entry with queries
        # the generated interface never saw.
        self.cache.put(
            key, result, query_keys=stream.query_keys(end=len(asts)), ctx=self._ctx
        )
        state.log_len = len(asts)
        state.best = result.difftree
        state.elite = elite
        return result

    # -- internals -----------------------------------------------------------

    def _warm_states(self, state, stream, asts) -> List[DTNode]:
        """Extend prior states to the grown log (dedup by canonical key)."""
        warm: List[DTNode] = []
        seen = set()

        def add(tree: DTNode) -> None:
            if tree.canonical_key not in seen:
                seen.add(tree.canonical_key)
                warm.append(tree)

        if state.best is not None:
            appended = asts[state.log_len :]
            add(extend_difftree(state.best, appended))
            for tree in state.elite[: self.warm_top_k]:
                add(extend_difftree(tree, appended))
        else:
            match = self.cache.longest_prefix(
                stream.query_keys(end=len(asts)), self._ctx
            )
            if match is not None:
                add(extend_difftree(match.result.difftree, asts[match.matched :]))
        return warm

    def _search(
        self, asts, warm: List[DTNode], state: _SessionState
    ) -> Tuple[GeneratedInterface, Tuple[DTNode, ...]]:
        asts, screen, model, initial, engine = prepare_search(
            asts, screen=self.screen, config=self.config, engine=self.engine
        )
        # Prior-run compiled sequences: warm states that graft into the
        # same difftree reuse their assignments and changed-choice sets,
        # paying matcher/diff cost only for the appended query pairs.
        if state.sequences:
            model.adopt_sequences(state.sequences)
        mcts = MCTS(model, engine=engine, config=as_mcts_config(self.config))
        search_result = mcts.search(initial, warm_states=warm)
        elite = self._elite_states(mcts, initial, search_result.best_state)
        state.sequences = self._harvest_sequences(
            model, (search_result.best_state,) + elite
        )
        result = GeneratedInterface(
            queries=list(asts),
            screen=screen,
            search=search_result,
            best=search_result.best,
        )
        return result, elite

    def _harvest_sequences(
        self, model, trees: Tuple[DTNode, ...]
    ) -> Dict[str, CompiledSequence]:
        """Compiled sequences of the states carried into the next run."""
        return {
            tree.canonical_key: model.compiled_sequence(tree) for tree in trees
        }

    def _elite_states(
        self, mcts: MCTS, initial: DTNode, best_state: DTNode
    ) -> Tuple[DTNode, ...]:
        """Top transposition-table states by mean reward (next warm seeds)."""
        exclude = {initial.canonical_key, best_state.canonical_key}
        ranked = sorted(
            (
                node
                for key, node in mcts.nodes.items()
                if key not in exclude and node.visits > 0
            ),
            key=lambda node: node.mean_reward(),
            reverse=True,
        )
        return tuple(node.state for node in ranked[: self.warm_top_k])
