"""Sharded multi-process serving with snapshot-backed crash recovery.

:class:`ClusterFront` spawns ``N`` worker processes, each running a
:class:`~repro.engine.scheduler.SessionScheduler` over its own
:class:`~repro.engine.Engine`, and routes sessions to workers by
consistent hashing over the session id (:class:`HashRing`).  RPC is
plain pickled dicts over :func:`multiprocessing.Pipe` — one duplex
connection per worker.

Durability comes from the snapshot layer: each worker persists every
session's warm state into a shared :class:`~repro.serve.store`
(one WAL-mode SQLite file) at delivered-interface boundaries, *before*
acknowledging the delivery to the front.  When the front detects a dead
worker (process exit or broken pipe), it drains the pipe's buffered
messages, removes the worker from the hash ring, and re-dispatches the
dead worker's unfinished sessions to survivors with ``restore=True`` —
the survivor rehydrates the session from its snapshot
mid-conversation and continues the script.

**Replay dedup.**  A worker may die between writing a snapshot and
sending the corresponding ``served`` message, so a restored snapshot can
cover chunks the front never saw acknowledged — or, conversely, the
front may have acknowledgements the (older) snapshot predates.  Both
races resolve the same way: re-dispatch always carries the session's
*full* chunk script; the restoring worker replays the chunks its
snapshot accounting already covers (emitting their recorded results
without touching the log) and re-serves the rest; the front deduplicates
deliveries by absolute chunk index.  Iteration-capped seed-fixed
searches make the re-served results bit-identical to what the dead
worker would have produced, because both derive deterministically from
the same snapshotted warm state.

Metrics: the front counts routed/migrated/recovered sessions and tracks
per-worker queue-depth gauges in its own :data:`repro.obs.REGISTRY`;
each worker ships its full registry snapshot back in its ``drained``
reply, and the front merges them (numeric sum) under the
``serve.cluster.workers.*`` source.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import REGISTRY as _REGISTRY
from .stream import QueryLike

#: RPC operations the front sends to workers.
FRONT_OPS = ("serve", "drain", "stop")
#: RPC operations workers send to the front.
WORKER_OPS = ("ready", "served", "session_failed", "drained", "worker_error")


class ClusterError(RuntimeError):
    """The cluster cannot make progress (e.g. every worker died)."""


class ClusterTimeout(ClusterError):
    """``run(timeout_s=...)`` expired before every session finished."""


@dataclass
class ClusterStats:
    """Hot-path cluster counters (front and worker sides share the class;
    each process mutates its own instance).  Registered as the
    ``serve.cluster`` metric source."""

    dispatches: int = 0  #: serve messages sent (front).
    deliveries: int = 0  #: interfaces served fresh (worker).
    replays: int = 0  #: deliveries replayed from snapshot accounting (worker).
    restores: int = 0  #: sessions rehydrated from the store (worker).
    deaths: int = 0  #: dead workers detected (front).

    def snapshot(self) -> Dict[str, int]:
        return {
            "dispatches": self.dispatches,
            "deliveries": self.deliveries,
            "replays": self.replays,
            "restores": self.restores,
            "deaths": self.deaths,
        }


STATS = ClusterStats()
_REGISTRY.register_source("serve.cluster", STATS.snapshot, weak=True)


class HashRing:
    """Consistent hashing of session ids onto worker ids.

    Each worker owns ``replicas`` virtual points on a 32-bit ring
    (blake2b of ``"worker:{id}#{replica}"``); a session maps to the first
    point clockwise of its own hash.  Removing a dead worker moves only
    its slice — surviving sessions keep their placement, which is what
    makes mid-run remapping cheap.
    """

    def __init__(self, nodes: Sequence[int], replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: List[int] = []
        self._points: List[Tuple[int, int]] = []  # (hash, node), sorted
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(text: str) -> int:
        # crc32 clusters badly on the near-identical ids real sessions
        # use ("s01", "s02", ...); a cryptographic digest spreads them.
        digest = hashlib.blake2b(text.encode("utf-8"), digest_size=4).digest()
        return int.from_bytes(digest, "big")

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    def add(self, node: int) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = (self._hash(f"worker:{node}#{replica}"), node)
            bisect.insort(self._points, point)

    def remove(self, node: int) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node} not on the ring")
        self._nodes.remove(node)
        self._points = [p for p in self._points if p[1] != node]

    def node_for(self, session_id: str) -> int:
        """The worker owning ``session_id`` (raises when the ring is empty)."""
        if not self._points:
            raise ClusterError("hash ring is empty: no live workers")
        key = self._hash(session_id)
        index = bisect.bisect_left(self._points, (key, -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _queue_depth(scheduler) -> int:
    return sum(1 for t in scheduler.tickets() if not t.finished)


def _worker_main(
    worker_id: int,
    conn,
    store_path: str,
    screen,
    config,
    options: Dict[str, Any],
) -> None:
    """One worker process: a scheduler-driven engine behind a pipe.

    Module-level (spawn-safe).  Protocol: see the module docstring;
    snapshots are written *before* each ``served`` message so every
    acknowledged delivery is recoverable.
    """
    # Deferred imports: the parent may use the spawn start method, where
    # this function is unpickled in a fresh interpreter.
    from ..engine.core import Engine
    from .store import SnapshotWriter, open_store

    try:
        engine = Engine(screen=screen, config=config)
        scheduler = engine.scheduler(
            slice_iterations=options.get("slice_iterations", 16),
            policy=options.get("policy", "round_robin"),
        )
        store = open_store(store_path)
        writer = SnapshotWriter(
            store, engine, every_appends=options.get("snapshot_every", 1)
        )
        writer.attach_eviction_hook()
        #: session id -> {"delivered": chunks durable, "reports": [records]}
        accounting: Dict[str, Dict[str, Any]] = {}
        #: session id -> absolute index of its first locally-scheduled chunk.
        base: Dict[str, int] = {}
        #: session id -> locally delivered report count already emitted.
        emitted: Dict[str, int] = {}
        failed: set = set()
        conn.send({"op": "ready", "worker": worker_id})

        def emit_new_reports() -> None:
            for ticket in scheduler.tickets():
                sid = ticket.session_id
                known = emitted.get(sid, 0)
                while known < len(ticket.reports):
                    report = ticket.reports[known]
                    absolute = base[sid] + known
                    record = {
                        "chunk": absolute,
                        "cost": report.cost,
                        "fingerprint": report.difftree.canonical_key,
                        "source": report.source,
                        "log_size": report.log_size,
                    }
                    acc = accounting[sid]
                    acc["reports"].append(record)
                    acc["delivered"] = absolute + 1
                    known += 1
                    emitted[sid] = known
                    # Durability before acknowledgement: once the front
                    # sees this message, a crash must be recoverable.
                    writer.on_delivered(sid, accounting=acc)
                    STATS.deliveries += 1
                    conn.send(
                        {
                            "op": "served",
                            "worker": worker_id,
                            "session": sid,
                            "replayed": False,
                            "queue_depth": _queue_depth(scheduler),
                            **record,
                        }
                    )
                if (
                    ticket.finished
                    and ticket.state == "failed"
                    and sid not in failed
                ):
                    failed.add(sid)
                    conn.send(
                        {
                            "op": "session_failed",
                            "worker": worker_id,
                            "session": sid,
                            "error": ticket.error,
                        }
                    )

        def handle_serve(msg: Dict[str, Any]) -> None:
            sid = msg["session"]
            chunks = [tuple(chunk) for chunk in msg["chunks"]]
            acc: Dict[str, Any] = {"delivered": 0, "reports": []}
            offset = 0
            if msg.get("restore"):
                snapshot = store.load_snapshot(sid)
                if snapshot is not None:
                    try:
                        snapshot.restore(engine)
                    except Exception:
                        # A snapshot that will not restore is abandoned:
                        # serving the full script from scratch is always
                        # correct (and, seeds being fixed, identical).
                        engine.drop_session(sid)
                    else:
                        STATS.restores += 1
                        writer.note_restored(sid, snapshot.generation)
                        acc["reports"] = [
                            dict(r)
                            for r in snapshot.accounting.get("reports", [])
                        ]
                        acc["delivered"] = int(
                            snapshot.accounting.get(
                                "delivered", len(acc["reports"])
                            )
                        )
                        offset = acc["delivered"]
                        covered = sum(len(c) for c in chunks[:offset])
                        if covered != snapshot.generation:
                            # Snapshot off a chunk boundary (foreign
                            # accounting): restart cold, same results.
                            engine.drop_session(sid)
                            acc = {"delivered": 0, "reports": []}
                            offset = 0
            accounting[sid] = acc
            base[sid] = offset
            emitted[sid] = 0
            for record in acc["reports"]:
                if record["chunk"] < offset:
                    STATS.replays += 1
                    conn.send(
                        {
                            "op": "served",
                            "worker": worker_id,
                            "session": sid,
                            "replayed": True,
                            "queue_depth": _queue_depth(scheduler),
                            **record,
                        }
                    )
            remaining = chunks[offset:]
            if remaining:
                scheduler.submit(sid, remaining)

        draining = False
        while True:
            busy = not scheduler.idle
            if conn.poll(0.0 if busy else 0.05):
                try:
                    msg = conn.recv()
                except EOFError:
                    return  # front is gone; nothing to report to
                op = msg.get("op")
                if op == "serve":
                    handle_serve(msg)
                elif op == "drain":
                    draining = True
                elif op == "stop":
                    return
                continue
            if busy:
                scheduler.step()
                emit_new_reports()
            elif draining:
                written = writer.drain(
                    accounting_for=lambda sid: accounting.get(sid)
                )
                conn.send(
                    {
                        "op": "drained",
                        "worker": worker_id,
                        "snapshots": written,
                        "metrics": _REGISTRY.snapshot(),
                    }
                )
                draining = False  # drained; wait for "stop"
    except (BrokenPipeError, OSError):
        return  # front closed the pipe under us
    except Exception as exc:  # noqa: BLE001 - shipped to the front
        try:
            conn.send(
                {"op": "worker_error", "worker": worker_id, "error": repr(exc)}
            )
        except (BrokenPipeError, OSError):
            pass
        raise


# ---------------------------------------------------------------------------
# Front side
# ---------------------------------------------------------------------------


@dataclass
class ClusterTicket:
    """One submitted session script and its cluster-side account.

    Attributes:
        session_id: the serving session the script belongs to.
        chunks: the query batches, in order (the full script is re-sent
            on recovery; workers dedup via snapshot accounting).
        state: ``queued`` → ``active`` → ``done`` / ``failed``.
        worker: the worker currently (or last) serving the session.
        worker_history: every worker the session was dispatched to.
        reports: delivered-chunk records keyed by absolute chunk index:
            ``{"chunk", "cost", "fingerprint", "source", "log_size",
            "replayed", "worker"}``.  Duplicates (re-served chunks after
            a recovery) keep the first-received record.
        first_interface_s: dispatch-to-first-delivery latency — the
            cluster benchmark's headline metric.
        recovered: the session was remapped off a dead worker.
        error: worker-reported failure when ``state == "failed"``.
    """

    session_id: str
    chunks: List[Tuple[QueryLike, ...]]
    state: str = "queued"
    worker: Optional[int] = None
    worker_history: List[int] = field(default_factory=list)
    reports: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    dispatched_at: Optional[float] = None
    first_interface_s: Optional[float] = None
    recovered: bool = False
    error: Optional[str] = None
    seq: int = 0

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    @property
    def costs(self) -> List[float]:
        """Delivered costs in chunk order."""
        return [self.reports[i]["cost"] for i in sorted(self.reports)]

    @property
    def fingerprints(self) -> List[str]:
        """Delivered difftree canonical keys in chunk order."""
        return [self.reports[i]["fingerprint"] for i in sorted(self.reports)]


class _WorkerHandle:
    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.alive = True
        self.recovered = False  # sessions already remapped off it
        self.drained = False
        self.error: Optional[str] = None


class ClusterFront:
    """Routes session scripts across worker processes; survives crashes.

    Obtained from :meth:`Engine.cluster`.  Typical use::

        front = engine.cluster(workers=4, store="snapshots.sqlite")
        for sid, chunks in scripts.items():
            front.submit(sid, chunks)
        tickets = front.run()
        for ticket in tickets:
            print(ticket.session_id, ticket.first_interface_s, ticket.costs)

    Args:
        screen / config: the serving context every worker rebuilds.
        workers: worker process count.
        store: SQLite snapshot-store path shared by the workers
            (``None`` = a temporary file the front creates and removes).
        snapshot_every: write-behind threshold — snapshot a session once
            this many appends accumulated since its last snapshot.
        slice_iterations / policy: per-worker scheduler settings.
        replicas: virtual points per worker on the hash ring.
        start_method: multiprocessing start method (default: ``fork``
            when available, else the platform default).
    """

    def __init__(
        self,
        screen=None,
        config=None,
        workers: int = 4,
        store: Optional[str] = None,
        snapshot_every: int = 1,
        slice_iterations: Optional[int] = 16,
        policy: str = "round_robin",
        replicas: int = 64,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        from ..core import GenerationConfig
        from ..layout import Screen

        self.screen = screen or Screen.wide()
        self.config = config or GenerationConfig()
        self.workers = workers
        self._owns_store = store is None
        if store is None:
            fd, path = tempfile.mkstemp(prefix="repro-cluster-", suffix=".sqlite")
            os.close(fd)
            self.store_path = path
        else:
            self.store_path = os.fspath(store)
        self.snapshot_every = snapshot_every
        self.slice_iterations = slice_iterations
        self.policy = policy
        self._replicas = replicas
        self._start_method = start_method
        self._ring = HashRing(range(workers), replicas=replicas)
        self._handles: Dict[int, _WorkerHandle] = {}
        self._tickets: Dict[str, ClusterTicket] = {}
        self._worker_metrics: Dict[int, Dict[str, Any]] = {}
        self._seq = 0
        self._started = False
        self._unique_deliveries = 0
        _REGISTRY.register_source(
            "serve.cluster.workers", self.merged_worker_metrics, weak=True
        )

    # -- submission ----------------------------------------------------------

    def submit(
        self, session_id: str, chunks: Sequence[Sequence[QueryLike]]
    ) -> ClusterTicket:
        """Queue a session script (dispatched when :meth:`run` starts)."""
        cleaned = [tuple(chunk) for chunk in chunks if len(tuple(chunk))]
        if not cleaned:
            raise ValueError("a session script needs at least one non-empty chunk")
        existing = self._tickets.get(session_id)
        if existing is not None and not existing.finished:
            raise ValueError(
                f"session {session_id!r} already has an unfinished ticket"
            )
        self._seq += 1
        ticket = ClusterTicket(
            session_id=session_id, chunks=cleaned, seq=self._seq
        )
        self._tickets[session_id] = ticket
        return ticket

    def tickets(self) -> List[ClusterTicket]:
        """All tickets, in submission order."""
        return sorted(self._tickets.values(), key=lambda t: t.seq)

    # -- lifecycle -----------------------------------------------------------

    def _mp_context(self):
        import multiprocessing

        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )

    def _start_workers(self) -> None:
        ctx = self._mp_context()
        options = {
            "slice_iterations": self.slice_iterations,
            "policy": self.policy,
            "snapshot_every": self.snapshot_every,
        }
        for worker_id in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    child_conn,
                    self.store_path,
                    self.screen,
                    self.config,
                    options,
                ),
                name=f"repro-cluster-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._handles[worker_id] = _WorkerHandle(
                worker_id, process, parent_conn
            )
        self._started = True

    def kill_worker(self, worker_id: int) -> bool:
        """SIGKILL a worker (the benchmark's crash-injection hook)."""
        handle = self._handles.get(worker_id)
        if handle is None or not handle.process.is_alive():
            return False
        os.kill(handle.process.pid, signal.SIGKILL)
        handle.process.join(timeout=5)
        return True

    def run(
        self,
        timeout_s: Optional[float] = None,
        kill_worker: Optional[int] = None,
        kill_after: int = 1,
    ) -> List[ClusterTicket]:
        """Serve every submitted script to completion; returns the tickets.

        Args:
            timeout_s: overall wall-clock bound (:class:`ClusterTimeout`
                on expiry; workers are torn down).
            kill_worker: crash injection — SIGKILL this worker id once
                ``kill_after`` unique chunk deliveries have been
                observed, then let recovery finish the run.
        """
        pending = [t for t in self.tickets() if not t.finished]
        if not pending:
            return self.tickets()
        if not self._started:
            self._start_workers()
        for ticket in pending:
            self._dispatch(ticket, self._ring.node_for(ticket.session_id))
            _REGISTRY.counter("serve.cluster.sessions_routed").inc()
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        killed = kill_worker is None
        try:
            while any(not t.finished for t in self._tickets.values()):
                progressed = self._pump()
                self._reap_dead()
                if not killed and self._unique_deliveries >= kill_after:
                    self.kill_worker(kill_worker)
                    killed = True
                if deadline is not None and time.monotonic() > deadline:
                    raise ClusterTimeout(
                        f"cluster run exceeded {timeout_s}s with "
                        f"{sum(1 for t in self._tickets.values() if not t.finished)}"
                        " session(s) unfinished"
                    )
                if not progressed:
                    time.sleep(0.002)
            self._drain_workers()
        finally:
            self._shutdown()
        return self.tickets()

    # -- message plumbing ----------------------------------------------------

    def _dispatch(self, ticket: ClusterTicket, worker_id: int) -> None:
        handle = self._handles[worker_id]
        restore = ticket.worker is not None
        ticket.worker = worker_id
        ticket.worker_history.append(worker_id)
        ticket.state = "active"
        if ticket.dispatched_at is None:
            ticket.dispatched_at = time.perf_counter()
        STATS.dispatches += 1
        try:
            handle.conn.send(
                {
                    "op": "serve",
                    "session": ticket.session_id,
                    "chunks": [list(chunk) for chunk in ticket.chunks],
                    "restore": restore,
                }
            )
        except (BrokenPipeError, OSError):
            handle.alive = False  # _reap_dead re-dispatches the orphans

    def _pump(self) -> bool:
        """Drain every live pipe; returns whether any message arrived."""
        progressed = False
        for handle in self._handles.values():
            if not handle.alive:
                continue
            progressed |= self._pump_handle(handle)
        return progressed

    def _pump_handle(self, handle: _WorkerHandle) -> bool:
        progressed = False
        while True:
            try:
                if not handle.conn.poll(0):
                    break
                message = handle.conn.recv()
            except (EOFError, OSError):
                handle.alive = False
                break
            progressed = True
            self._handle_message(handle, message)
        return progressed

    def _handle_message(self, handle: _WorkerHandle, message: Dict) -> None:
        op = message.get("op")
        if op == "served":
            self._on_served(handle, message)
        elif op == "session_failed":
            ticket = self._tickets.get(message.get("session"))
            if ticket is not None and not ticket.finished:
                ticket.state = "failed"
                ticket.error = message.get("error")
        elif op == "drained":
            handle.drained = True
            self._worker_metrics[handle.worker_id] = dict(
                message.get("metrics") or {}
            )
        elif op == "worker_error":
            handle.error = message.get("error")
        # "ready" needs no action: dispatches already queue in the pipe.

    def _on_served(self, handle: _WorkerHandle, message: Dict) -> None:
        ticket = self._tickets.get(message.get("session"))
        if ticket is None:
            return
        _REGISTRY.gauge(
            f"serve.cluster.worker.{handle.worker_id}.queue_depth"
        ).set(float(message.get("queue_depth", 0)))
        chunk = message["chunk"]
        if chunk in ticket.reports:
            return  # recovery re-serve; first delivery wins
        ticket.reports[chunk] = {
            "chunk": chunk,
            "cost": message["cost"],
            "fingerprint": message["fingerprint"],
            "source": message["source"],
            "log_size": message.get("log_size", 0),
            "replayed": bool(message.get("replayed")),
            "worker": handle.worker_id,
        }
        self._unique_deliveries += 1
        if ticket.first_interface_s is None:
            ticket.first_interface_s = (
                time.perf_counter() - ticket.dispatched_at
            )
        if len(ticket.reports) >= len(ticket.chunks) and not ticket.finished:
            ticket.state = "done"

    # -- crash recovery ------------------------------------------------------

    def _reap_dead(self) -> None:
        for handle in list(self._handles.values()):
            if handle.alive and not handle.process.is_alive():
                # The pipe may still hold messages the worker sent
                # before dying — account for them before remapping.
                self._pump_handle(handle)
                handle.alive = False
            if not handle.alive and not handle.recovered:
                self._recover_worker(handle)

    def _recover_worker(self, handle: _WorkerHandle) -> None:
        handle.recovered = True
        STATS.deaths += 1
        self._ring.remove(handle.worker_id)
        orphans = [
            t
            for t in self.tickets()
            if t.worker == handle.worker_id and not t.finished
        ]
        if not orphans:
            return
        if not any(h.alive for h in self._handles.values()):
            raise ClusterError(
                "every worker died; "
                f"{len(orphans)} session(s) cannot be recovered"
            )
        for ticket in orphans:
            ticket.recovered = True
            _REGISTRY.counter("serve.cluster.sessions_migrated").inc()
            _REGISTRY.counter("serve.cluster.sessions_recovered").inc()
            self._dispatch(ticket, self._ring.node_for(ticket.session_id))

    # -- shutdown ------------------------------------------------------------

    def _drain_workers(self, timeout_s: float = 30.0) -> None:
        """Graceful drain: final snapshots + metrics from live workers."""
        live = [h for h in self._handles.values() if h.alive]
        for handle in live:
            try:
                handle.conn.send({"op": "drain"})
            except (BrokenPipeError, OSError):
                handle.alive = False
        deadline = time.monotonic() + timeout_s
        while (
            any(h.alive and not h.drained for h in live)
            and time.monotonic() < deadline
        ):
            progressed = False
            for handle in live:
                if handle.alive and not handle.drained:
                    progressed |= self._pump_handle(handle)
                    if handle.alive and not handle.process.is_alive():
                        self._pump_handle(handle)
                        handle.alive = False
            if not progressed:
                time.sleep(0.002)

    def _shutdown(self) -> None:
        for handle in self._handles.values():
            if handle.alive:
                try:
                    handle.conn.send({"op": "stop"})
                except (BrokenPipeError, OSError):
                    pass
        for handle in self._handles.values():
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._started = False

    def close(self) -> None:
        """Tear down workers and remove an owned temporary store file."""
        if self._started:
            self._shutdown()
        if self._owns_store:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(self.store_path + suffix)
                except OSError:
                    pass

    def __enter__(self) -> "ClusterFront":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- metrics -------------------------------------------------------------

    def worker_metrics(self) -> Dict[int, Dict[str, Any]]:
        """Per-worker registry snapshots collected at drain."""
        return {wid: dict(m) for wid, m in self._worker_metrics.items()}

    def merged_worker_metrics(self) -> Dict[str, float]:
        """Numeric sum of every drained worker's registry snapshot."""
        merged: Dict[str, float] = {}
        for metrics in self._worker_metrics.values():
            for key, value in metrics.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                merged[key] = merged.get(key, 0) + value
        return merged
