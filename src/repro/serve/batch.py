"""Fan many independent query logs across a worker pool.

Interface generation is CPU-bound (widget enumeration + cost scoring),
so throughput over many logs wants *processes*, not threads.
:func:`generate_interfaces_batch` maps logs over a
:class:`concurrent.futures` pool with one shared config, preserving
input order.

Results cross process boundaries on the **columnar wire path**: workers
return plain-data dicts — the winning difftree as a
:meth:`~repro.difftree.columnar.ColumnarTree.to_payload` column set and
the widget tree as its decision vector — and the parent replays the
vector through its own compiled cost kernel (one ``evaluate`` + one
``materialize``, cross-checked against the shipped cost).  That skips
pickling per-node ``__reduce__`` object graphs, and the re-interning
inside :meth:`~repro.difftree.columnar.ColumnarTree.from_payload` lands
the received trees in the parent's hash-cons tables directly.  The
legacy pickle path is kept as the parity oracle behind
``memo.fast_paths(False)``.

Sandboxed or single-core environments where process pools cannot start
fall back to threads (same results, reduced parallelism) rather than
failing the batch.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Union

from .. import memo as _memo
from ..core import GeneratedInterface, GenerationConfig, generate_interface, prepare_search
from ..difftree import as_asts
from ..difftree.columnar import ColumnarTree
from ..layout import Screen
from ..search.common import SearchResult, SearchStats
from .snapshot import _decode_vector, _encode_vector
from .stream import QueryLike

#: Executor choices for :func:`generate_interfaces_batch`.
EXECUTORS = ("process", "thread", "serial")


def _generate_one(job) -> GeneratedInterface:
    """Module-level worker (must be picklable by qualified name)."""
    queries, screen, config = job
    return generate_interface(queries, screen=screen, config=config)


def _generate_one_wire(job) -> Union[Dict[str, Any], GeneratedInterface]:
    """Worker for the columnar wire path: plain data out, no node graphs.

    Falls back to returning the full object (pickle path) when the
    winner's widget tree cannot be expressed as a kernel decision
    vector — correctness over wire discipline.
    """
    import dataclasses

    queries, screen, config = job
    generated = generate_interface(queries, screen=screen, config=config)
    search = generated.search
    _, _, model, _initial, _rules = prepare_search(
        generated.queries, screen=screen, config=config
    )
    kernel = model.kernel_for(search.best.tree)
    vector = kernel.adopt(search.best.widget_tree)
    if vector is None:  # pragma: no cover - defensive
        return generated
    return {
        "difftree": ColumnarTree.from_node(search.best.tree).to_payload(),
        "vector": _encode_vector(vector),
        "cost": search.best.breakdown.total,
        "history": [list(point) for point in search.history],
        "stats": dataclasses.asdict(search.stats),
        "elapsed": search.elapsed,
        "strategy": search.strategy,
    }


def _decode_wire(
    result: Union[Dict[str, Any], GeneratedInterface],
    log: Sequence[QueryLike],
    screen: Screen,
    config: GenerationConfig,
) -> GeneratedInterface:
    """Replay a worker's wire dict through the parent's own kernel."""
    if isinstance(result, GeneratedInterface):
        return result  # worker fell back to the pickle path
    from ..cost import EvaluatedInterface

    asts, screen, model, _initial, _rules = prepare_search(
        as_asts(log), screen=screen, config=config
    )
    tree = ColumnarTree.from_payload(result["difftree"]).to_node()
    kernel = model.kernel_for(tree)
    vector = _decode_vector(result["vector"])
    breakdown = kernel.evaluate(vector)
    widget_tree = kernel.materialize(vector)
    if breakdown.total != result["cost"]:
        raise RuntimeError(
            f"wire-transferred interface replays to cost {breakdown.total!r} "
            f"but the worker scored {result['cost']!r}; refusing to return "
            "drifted state"
        )
    best = EvaluatedInterface(
        tree=tree, widget_tree=widget_tree, breakdown=breakdown
    )
    search = SearchResult(
        best=best,
        best_state=tree,
        history=[tuple(point) for point in result["history"]],
        stats=SearchStats(**result["stats"]),
        elapsed=result["elapsed"],
        strategy=result["strategy"],
    )
    return GeneratedInterface(
        queries=list(asts), screen=screen, search=search, best=best
    )


def generate_interfaces_batch(
    logs: Sequence[Sequence[QueryLike]],
    screen: Optional[Screen] = None,
    config: Optional[GenerationConfig] = None,
    max_workers: Optional[int] = None,
    executor: str = "process",
) -> List[GeneratedInterface]:
    """Generate one interface per log, in parallel, with a shared config.

    Args:
        logs: the query logs; each is a sequence of SQL strings or ASTs.
        screen: shared screen constraint (default wide).
        config: shared generation settings.
        max_workers: pool size (default: the executor's own default,
            typically the CPU count for processes).
        executor: ``"process"`` (default), ``"thread"``, or ``"serial"``.

    Returns:
        Generated interfaces in the same order as ``logs``.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    config = config or GenerationConfig()
    screen = screen or Screen.wide()
    jobs = [(list(log), screen, config) for log in logs]

    if executor == "serial" or len(jobs) <= 1:
        return [_generate_one(job) for job in jobs]

    # The columnar wire path only pays off (and only matters) across a
    # process boundary; threads share the parent's heap, and the gated
    # reference mode keeps the pickle path as the parity oracle.
    wire = executor == "process" and _memo.fast_paths_enabled()
    worker = _generate_one_wire if wire else _generate_one

    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    try:
        with pool_cls(max_workers=max_workers) as pool:
            results = list(pool.map(worker, jobs))
    except (OSError, PermissionError, BrokenProcessPool):
        if executor != "process":
            raise
        # Process pools need working semaphores/fork, and their workers
        # can be killed under us (sandbox limits, OOM): both surface
        # here.  Generation itself is deterministic pure computation, so
        # a thread-pool re-run is a safe (if slower) recovery and honors
        # the no-fail contract of this fallback.
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(worker, jobs))
    if not wire:
        return results
    return [
        _decode_wire(result, log, screen, config)
        for result, log in zip(results, logs)
    ]
