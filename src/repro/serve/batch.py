"""Fan many independent query logs across a worker pool.

Interface generation is CPU-bound (widget enumeration + cost scoring),
so throughput over many logs wants *processes*, not threads.
:func:`generate_interfaces_batch` maps logs over a
:class:`concurrent.futures` pool with one shared config, preserving
input order.  Results and inputs cross process boundaries via pickle —
the AST/difftree node classes define ``__reduce__`` for exactly this.

Sandboxed or single-core environments where process pools cannot start
fall back to threads (same results, reduced parallelism) rather than
failing the batch.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from ..core import GeneratedInterface, GenerationConfig, generate_interface
from ..layout import Screen
from .stream import QueryLike

#: Executor choices for :func:`generate_interfaces_batch`.
EXECUTORS = ("process", "thread", "serial")


def _generate_one(job) -> GeneratedInterface:
    """Module-level worker (must be picklable by qualified name)."""
    queries, screen, config = job
    return generate_interface(queries, screen=screen, config=config)


def generate_interfaces_batch(
    logs: Sequence[Sequence[QueryLike]],
    screen: Optional[Screen] = None,
    config: Optional[GenerationConfig] = None,
    max_workers: Optional[int] = None,
    executor: str = "process",
) -> List[GeneratedInterface]:
    """Generate one interface per log, in parallel, with a shared config.

    Args:
        logs: the query logs; each is a sequence of SQL strings or ASTs.
        screen: shared screen constraint (default wide).
        config: shared generation settings.
        max_workers: pool size (default: the executor's own default,
            typically the CPU count for processes).
        executor: ``"process"`` (default), ``"thread"``, or ``"serial"``.

    Returns:
        Generated interfaces in the same order as ``logs``.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    config = config or GenerationConfig()
    screen = screen or Screen.wide()
    jobs = [(list(log), screen, config) for log in logs]

    if executor == "serial" or len(jobs) <= 1:
        return [_generate_one(job) for job in jobs]

    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    try:
        with pool_cls(max_workers=max_workers) as pool:
            return list(pool.map(_generate_one, jobs))
    except (OSError, PermissionError, BrokenProcessPool):
        if executor != "process":
            raise
        # Process pools need working semaphores/fork, and their workers
        # can be killed under us (sandbox limits, OOM): both surface
        # here.  Generation itself is deterministic pure computation, so
        # a thread-pool re-run is a safe (if slower) recovery and honors
        # the no-fail contract of this fallback.
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_generate_one, jobs))
