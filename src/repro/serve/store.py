"""Durable snapshot stores + the write-behind snapshotting policy.

:class:`SnapshotStore` is the persistence seam of the serving cluster:
workers save :class:`~repro.serve.snapshot.SessionSnapshot` payloads at
delivered-interface boundaries, and survivors rehydrate a dead worker's
sessions from it mid-conversation.  Two backends:

* :class:`MemorySnapshotStore` — dict-backed, for tests and
  single-process write-behind snapshotting.
* :class:`SQLiteSnapshotStore` — one WAL-mode SQLite file shared by
  every worker process.  Upsert-by-session with a **generation
  counter**: a save whose generation is below the stored one is
  rejected (:class:`StaleSnapshotError`), so a slow or zombie writer
  can never roll a session's durable state backwards.

:class:`SnapshotWriter` implements the write-behind policy on top of a
store: snapshot after every ``K`` appended queries (counted at
delivered-interface boundaries — the only consistent capture points),
on session eviction, and on drain.

Metrics (``serve.store.*`` via :data:`repro.obs.REGISTRY`): payload
bytes written, stale-write rejections, and save/load latency
histograms (``serve.cluster.snapshot_write_s`` / ``_load_s``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..obs import REGISTRY as _REGISTRY
from .snapshot import SessionSnapshot, SnapshotError


class SnapshotStoreError(RuntimeError):
    """A snapshot store operation failed."""


class StaleSnapshotError(SnapshotStoreError):
    """A save was rejected because a newer generation is already stored."""


@dataclass(frozen=True)
class SnapshotRecord:
    """One stored snapshot: the payload plus its generation."""

    session_id: str
    generation: int
    payload: Dict[str, Any]


class SnapshotStore:
    """Abstract session-id -> versioned snapshot payload store."""

    def save(self, session_id: str, payload: Dict[str, Any], generation: int) -> None:
        """Upsert a session's snapshot.

        Raises :class:`StaleSnapshotError` when ``generation`` is below
        the stored one (equal generations re-save idempotently).
        """
        raise NotImplementedError

    def load(self, session_id: str) -> Optional[SnapshotRecord]:
        """The stored record, or None when the session has none."""
        raise NotImplementedError

    def delete(self, session_id: str) -> bool:
        """Drop a session's snapshot; returns whether one existed."""
        raise NotImplementedError

    def sessions(self) -> List[str]:
        """Ids with a stored snapshot (sorted)."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backend resources (idempotent)."""

    # -- convenience ---------------------------------------------------------

    def save_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Save a :class:`SessionSnapshot` under its own generation."""
        started = time.perf_counter()
        self.save(snapshot.session_id, snapshot.to_payload(), snapshot.generation)
        _REGISTRY.histogram("serve.cluster.snapshot_write_s").observe(
            time.perf_counter() - started
        )

    def load_snapshot(self, session_id: str) -> Optional[SessionSnapshot]:
        """Load + validate a session's snapshot (None when absent)."""
        started = time.perf_counter()
        record = self.load(session_id)
        if record is None:
            return None
        snapshot = SessionSnapshot.from_payload(record.payload)
        _REGISTRY.histogram("serve.cluster.snapshot_load_s").observe(
            time.perf_counter() - started
        )
        return snapshot


class MemorySnapshotStore(SnapshotStore):
    """In-process store: a lock-protected dict (tests, single-process)."""

    def __init__(self) -> None:
        self._records: Dict[str, SnapshotRecord] = {}
        self._lock = threading.Lock()

    def save(self, session_id: str, payload: Dict[str, Any], generation: int) -> None:
        encoded = json.dumps(payload)  # enforce the JSON-native contract
        with self._lock:
            existing = self._records.get(session_id)
            if existing is not None and generation < existing.generation:
                _REGISTRY.counter("serve.store.stale_rejections").inc()
                raise StaleSnapshotError(
                    f"stale save for {session_id!r}: generation {generation} "
                    f"< stored {existing.generation}"
                )
            self._records[session_id] = SnapshotRecord(
                session_id=session_id,
                generation=generation,
                payload=json.loads(encoded),
            )
        _REGISTRY.counter("serve.store.bytes_written").inc(len(encoded))

    def load(self, session_id: str) -> Optional[SnapshotRecord]:
        with self._lock:
            return self._records.get(session_id)

    def delete(self, session_id: str) -> bool:
        with self._lock:
            return self._records.pop(session_id, None) is not None

    def sessions(self) -> List[str]:
        with self._lock:
            return sorted(self._records)


class SQLiteSnapshotStore(SnapshotStore):
    """WAL-mode SQLite store shared across worker processes.

    One row per session (``session_id`` primary key).  The upsert's
    generation guard runs inside the backend — concurrent writers from
    different processes race through SQLite's own locking, and the
    loser of a stale race gets :class:`StaleSnapshotError`, not silent
    state regression.
    """

    def __init__(self, path: Union[str, os.PathLike], timeout_s: float = 30.0) -> None:
        self.path = os.fspath(path)
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self._ensure_schema()

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(
                self.path,
                timeout=self._timeout_s,
                check_same_thread=False,
                isolation_level=None,  # autocommit; explicit transactions below
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=%d" % int(self._timeout_s * 1000))
            self._conn = conn
        return self._conn

    def _ensure_schema(self) -> None:
        with self._lock:
            self._connection().execute(
                "CREATE TABLE IF NOT EXISTS snapshots ("
                " session_id TEXT PRIMARY KEY,"
                " generation INTEGER NOT NULL,"
                " updated_at REAL NOT NULL,"
                " payload TEXT NOT NULL)"
            )

    def save(self, session_id: str, payload: Dict[str, Any], generation: int) -> None:
        encoded = json.dumps(payload)
        with self._lock:
            conn = self._connection()
            try:
                conn.execute("BEGIN IMMEDIATE")
                row = conn.execute(
                    "SELECT generation FROM snapshots WHERE session_id = ?",
                    (session_id,),
                ).fetchone()
                if row is not None and generation < row[0]:
                    conn.execute("ROLLBACK")
                    _REGISTRY.counter("serve.store.stale_rejections").inc()
                    raise StaleSnapshotError(
                        f"stale save for {session_id!r}: generation "
                        f"{generation} < stored {row[0]}"
                    )
                conn.execute(
                    "INSERT INTO snapshots(session_id, generation, updated_at,"
                    " payload) VALUES (?, ?, ?, ?)"
                    " ON CONFLICT(session_id) DO UPDATE SET"
                    " generation=excluded.generation,"
                    " updated_at=excluded.updated_at,"
                    " payload=excluded.payload",
                    (session_id, generation, time.time(), encoded),
                )
                conn.execute("COMMIT")
            except sqlite3.Error as exc:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise SnapshotStoreError(f"sqlite save failed: {exc}") from exc
        _REGISTRY.counter("serve.store.bytes_written").inc(len(encoded))

    def load(self, session_id: str) -> Optional[SnapshotRecord]:
        with self._lock:
            try:
                row = self._connection().execute(
                    "SELECT generation, payload FROM snapshots"
                    " WHERE session_id = ?",
                    (session_id,),
                ).fetchone()
            except sqlite3.Error as exc:
                raise SnapshotStoreError(f"sqlite load failed: {exc}") from exc
        if row is None:
            return None
        generation, encoded = row
        try:
            payload = json.loads(encoded)
        except ValueError as exc:
            raise SnapshotError(
                f"stored payload for {session_id!r} is not valid JSON"
            ) from exc
        return SnapshotRecord(
            session_id=session_id, generation=generation, payload=payload
        )

    def delete(self, session_id: str) -> bool:
        with self._lock:
            cursor = self._connection().execute(
                "DELETE FROM snapshots WHERE session_id = ?", (session_id,)
            )
            return cursor.rowcount > 0

    def sessions(self) -> List[str]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT session_id FROM snapshots ORDER BY session_id"
            ).fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None


def open_store(
    spec: Union[None, str, os.PathLike, SnapshotStore]
) -> SnapshotStore:
    """Resolve a store spec: None -> memory, path -> SQLite, store -> itself."""
    if spec is None:
        return MemorySnapshotStore()
    if isinstance(spec, SnapshotStore):
        return spec
    return SQLiteSnapshotStore(spec)


class SnapshotWriter:
    """Write-behind snapshotting policy over a store.

    Captures a session when enough appends have accumulated since its
    last snapshot (``every_appends``, counted at delivered-interface
    boundaries), when the engine evicts it (install via
    :meth:`attach_eviction_hook`), and unconditionally on
    :meth:`drain`.

    Stale-write rejections are swallowed (a newer snapshot is already
    durable — mission accomplished); other store errors propagate.
    """

    def __init__(self, store: SnapshotStore, engine, every_appends: int = 1) -> None:
        if every_appends < 1:
            raise ValueError(f"every_appends must be >= 1, got {every_appends}")
        self.store = store
        self.engine = engine
        self.every_appends = every_appends
        #: session id -> log length at its last snapshot.
        self._snapshotted_at: Dict[str, int] = {}
        self.snapshots_written = 0

    def attach_eviction_hook(self) -> None:
        """Snapshot sessions as the engine's LRU bound evicts them."""
        self.engine.session_evicted_hook = self.on_evicted

    def _capture(self, session_id: str, accounting: Optional[dict]) -> bool:
        snapshot = SessionSnapshot.capture(
            self.engine, session_id, accounting=accounting
        )
        try:
            self.store.save_snapshot(snapshot)
        except StaleSnapshotError:
            return False
        self._snapshotted_at[session_id] = snapshot.generation
        self.snapshots_written += 1
        return True

    def on_delivered(
        self, session_id: str, accounting: Optional[dict] = None
    ) -> bool:
        """Maybe snapshot after a delivered interface; True if written."""
        log_len = len(self.engine.router.stream(session_id))
        since = log_len - self._snapshotted_at.get(session_id, 0)
        if since < self.every_appends:
            return False
        return self._capture(session_id, accounting)

    def note_restored(self, session_id: str, generation: int) -> None:
        """Record that a freshly restored session is durable at ``generation``
        (so the next delivery doesn't immediately re-snapshot it)."""
        self._snapshotted_at[session_id] = generation

    def on_evicted(self, session_id: str) -> None:
        """Engine eviction hook: persist the state being dropped."""
        self._capture(session_id, None)

    def drain(self, accounting_for=None) -> int:
        """Snapshot every live session (graceful-shutdown path).

        Args:
            accounting_for: optional ``session_id -> accounting dict``
                callable recorded into each snapshot.
        """
        written = 0
        for session_id in self.engine.router.sessions():
            accounting = accounting_for(session_id) if accounting_for else None
            if self._capture(session_id, accounting):
                written += 1
        return written
