"""Durable session snapshots: capture + restore a session's warm state.

A serving session's value lives in state that dies with its process:
the append-only log, the previous run's best difftree and elite
transposition-table states (the warm start), the compiled query
sequences carried between runs, and the session's current
:class:`~repro.serve.cache.InterfaceCache` entry.
:class:`SessionSnapshot` captures all of it as one JSON-native payload
(columnar difftree wire format for every tree — see
:meth:`repro.difftree.columnar.ColumnarTree.to_payload`) and restores
it into any engine sharing the capture-time screen/config context.

The restore contract follows the snapshot-isolation checking
discipline: restored state must be **observationally indistinguishable**
from never-crashed state.  Concretely, after ``restore()``:

* an ``interface()`` call on the unchanged log is a cache hit returning
  the *same* cost, breakdown, widget tree, and search diagnostics the
  original session would have returned (the cached winner is shipped as
  its decision vector and replayed through the compiled cost kernel —
  one ``evaluate`` + one ``materialize``, bit-identical by construction,
  cross-checked against the stored cost at restore time);
* an append + search continues from the same warm state (extended best
  + elites, recompiled sequences) and — searches being seed-fixed and
  iteration-capped deterministic — produces the same results the
  uninterrupted session would have.

Snapshots are versioned (:data:`SNAPSHOT_SCHEMA_VERSION`); unknown
versions, wrong-context payloads, and corrupt entries are rejected with
:class:`SnapshotError` instead of silently restoring drifted state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import GeneratedInterface, prepare_search
from ..cost import CompiledSequence
from ..difftree import DTNode
from ..difftree.columnar import ColumnarTree
from ..obs import trace as _trace
from ..search.common import SearchResult, SearchStats
from .cache import context_key

#: Bump when the snapshot payload shape changes.  Restore refuses other
#: versions outright — a serving fleet must never guess at state.
SNAPSHOT_SCHEMA_VERSION = 1

_STATS_FIELDS = {f.name for f in dataclasses.fields(SearchStats)}


class SnapshotError(ValueError):
    """A snapshot payload is corrupt, stale, or context-incompatible."""


def _encode_vector(vector) -> List[Any]:
    """JSON-encode a decision vector (tuples -> lists)."""
    return [list(v) if isinstance(v, tuple) else v for v in vector]


def _decode_vector(raw) -> List[Any]:
    """Inverse of :func:`_encode_vector` (lists -> tuples)."""
    return [tuple(v) if isinstance(v, list) else v for v in raw]


@dataclass
class SessionSnapshot:
    """One session's full warm state, as JSON-native data.

    Attributes:
        session_id: the session the state belongs to.
        generation: the log length at capture time.  Monotone per
            session — the store's stale-write guard compares these.
        ctx: the capture-time context fingerprint
            (:func:`~repro.serve.cache.context_key` of screen+config).
            Restore refuses a mismatched engine: the same state under a
            different screen or config is a *different* interface.
        queries: the replayable log — one entry per ingested query,
            ``{"sql": text}`` for text appends or ``{"ast": payload}``
            (columnar wire format) for AST-only appends.
        log_len: how many leading queries the carried warm state covers
            (the ``_SessionState.log_len`` of the incremental service).
        best: columnar payload of the previous run's winning difftree
            (absent-state marker when the session never searched).
        elite: columnar payloads of the carried elite states.
        cached: the session's current cache entry, replayable without a
            search: the winner's difftree payload + decision vector +
            search diagnostics (strategy/elapsed/history/stats) + the
            expected cost (restore-time integrity check).  ``None`` when
            the entry was evicted or never produced.
        carry: the session's carried search tree
            (:meth:`repro.search.carry.CarriedTree.to_payload`):
            transposition-table nodes with UCT statistics and choice-path
            universes, in insertion order so a restored session's next
            search rebases — and tie-breaks — exactly like the
            uninterrupted one.  ``None`` when the session never searched
            or the carry gate was off.  Additive to schema version 1;
            payloads without the field restore with no carried tree.
        accounting: free-form scheduler/cluster bookkeeping carried
            through the store (e.g. how many chunks were delivered —
            the cluster's replay-dedup cursor).
    """

    session_id: str
    generation: int
    ctx: str
    queries: List[Dict[str, Any]] = field(default_factory=list)
    log_len: int = 0
    best: Optional[Dict[str, Any]] = None
    elite: List[Dict[str, Any]] = field(default_factory=list)
    cached: Optional[Dict[str, Any]] = None
    carry: Optional[Dict[str, Any]] = None
    accounting: Dict[str, Any] = field(default_factory=dict)

    # -- capture -------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        engine,
        session_id: str,
        accounting: Optional[Dict[str, Any]] = None,
    ) -> "SessionSnapshot":
        """Snapshot one session of an :class:`~repro.engine.Engine`.

        Safe at any *delivered-interface boundary* (no search mid-
        flight for the session): everything the next run consumes is
        read under the incremental service's carry lock.
        """
        with _trace("serve.snapshot.capture", session=session_id):
            service = engine._incremental_service()
            stream = engine.router.stream(session_id)
            sql = stream.sql()
            asts = stream.asts()
            queries: List[Dict[str, Any]] = [
                {"sql": text} if text else
                {"ast": ColumnarTree.from_node(ast).to_payload()}
                for text, ast in zip(sql, asts)
            ]
            exported = service.export_session(session_id)
            log_len = 0
            best: Optional[DTNode] = None
            elite: Tuple[DTNode, ...] = ()
            carried = None
            if exported is not None:
                log_len, best, elite, _sequences, carried = exported
            snapshot = cls(
                session_id=session_id,
                generation=len(asts),
                ctx=context_key(engine.screen, engine.config),
                queries=queries,
                log_len=log_len,
                best=ColumnarTree.payload_of(best),
                elite=[ColumnarTree.payload_of(tree) for tree in elite],
                carry=carried.to_payload() if carried is not None else None,
                accounting=dict(accounting or {}),
            )
            if asts:
                key = f"{stream.log_key()}:{snapshot.ctx}"
                generated = engine.cache.peek(key)
                if generated is not None:
                    snapshot.cached = cls._encode_cached(engine, asts, generated)
            return snapshot

    @staticmethod
    def _encode_cached(engine, asts, generated: GeneratedInterface) -> Dict[str, Any]:
        """The cache entry as replayable data (winner vector, not trees)."""
        _, _, model, _, _ = prepare_search(
            asts, screen=engine.screen, config=engine.config, engine=engine.rules
        )
        search = generated.search
        kernel = model.kernel_for(search.best.tree)
        vector = kernel.adopt(search.best.widget_tree)
        if vector is None:
            raise SnapshotError(
                "cached winner's widget tree does not match its kernel "
                "schema; cannot encode a replayable snapshot"
            )
        return {
            "difftree": ColumnarTree.from_node(search.best.tree).to_payload(),
            "vector": _encode_vector(vector),
            "cost": search.best.breakdown.total,
            "strategy": search.strategy,
            "elapsed": search.elapsed,
            "history": [list(point) for point in search.history],
            "stats": dataclasses.asdict(search.stats),
        }

    # -- wire format ---------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The versioned JSON-native envelope (the store's value type)."""
        return {
            "version": SNAPSHOT_SCHEMA_VERSION,
            "session_id": self.session_id,
            "generation": self.generation,
            "ctx": self.ctx,
            "queries": self.queries,
            "log_len": self.log_len,
            "best": self.best,
            "elite": self.elite,
            "cached": self.cached,
            "carry": self.carry,
            "accounting": self.accounting,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "SessionSnapshot":
        """Validate and decode a :meth:`to_payload` envelope."""
        if not isinstance(payload, dict):
            raise SnapshotError(f"snapshot payload must be a dict, got {type(payload)}")
        version = payload.get("version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {version!r} "
                f"(this process reads version {SNAPSHOT_SCHEMA_VERSION})"
            )
        missing = [
            k for k in ("session_id", "generation", "ctx", "queries", "log_len")
            if k not in payload
        ]
        if missing:
            raise SnapshotError(f"snapshot payload missing keys {missing}")
        queries = payload["queries"]
        if not isinstance(queries, list) or not all(
            isinstance(q, dict) and ("sql" in q or "ast" in q) for q in queries
        ):
            raise SnapshotError("snapshot queries must be sql/ast entries")
        generation = payload["generation"]
        if generation != len(queries):
            raise SnapshotError(
                f"snapshot generation {generation} disagrees with its "
                f"{len(queries)}-query log"
            )
        log_len = payload["log_len"]
        if not 0 <= log_len <= generation:
            raise SnapshotError(f"carried log_len {log_len} outside [0, {generation}]")
        cached = payload.get("cached")
        if cached is not None:
            required = ("difftree", "vector", "cost", "strategy", "elapsed",
                        "history", "stats")
            absent = [k for k in required if k not in cached]
            if absent:
                raise SnapshotError(f"cached entry missing keys {absent}")
            unknown = set(cached["stats"]) - _STATS_FIELDS
            if unknown:
                raise SnapshotError(f"cached entry has unknown stats {sorted(unknown)}")
        carry = payload.get("carry")
        if carry is not None and (
            not isinstance(carry, dict) or "nodes" not in carry
        ):
            raise SnapshotError("carry payload must be a dict with nodes")
        return cls(
            session_id=payload["session_id"],
            generation=generation,
            ctx=payload["ctx"],
            queries=queries,
            log_len=log_len,
            best=payload.get("best"),
            elite=list(payload.get("elite") or ()),
            cached=cached,
            carry=carry,
            accounting=dict(payload.get("accounting") or {}),
        )

    # -- restore -------------------------------------------------------------

    def restore(self, engine) -> str:
        """Rebuild the session inside ``engine``; returns the session id.

        Any existing state under the same id is dropped first — a
        restore is a full replacement, not a merge.  Raises
        :class:`SnapshotError` on context mismatch or when the replayed
        cache entry's cost disagrees with the stored one (corrupt or
        cross-version state must not be served).
        """
        with _trace("serve.snapshot.restore", session=self.session_id):
            expected_ctx = context_key(engine.screen, engine.config)
            if self.ctx != expected_ctx:
                raise SnapshotError(
                    "snapshot context does not match the restoring engine "
                    "(different screen/config); refusing to restore"
                )
            try:
                replayed = [
                    q["sql"] if q.get("sql")
                    else ColumnarTree.from_payload(q["ast"]).to_node()
                    for q in self.queries
                ]
                best = ColumnarTree.node_of(self.best)
                elite = tuple(
                    tree for tree in
                    (ColumnarTree.node_of(p) for p in self.elite)
                    if tree is not None
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise SnapshotError(f"corrupt snapshot tree payload: {exc}") from exc

            service = engine._incremental_service()
            engine.drop_session(self.session_id)
            if replayed:
                engine.router.append(self.session_id, *replayed)
            stream = engine.router.stream(self.session_id)

            sequences: Dict[str, CompiledSequence] = {}
            if best is not None and self.log_len:
                prior = stream.asts(end=self.log_len)
                for tree in (best,) + elite:
                    key = tree.canonical_key
                    if key not in sequences:
                        sequences[key] = CompiledSequence.compile(tree, prior)
            carried = None
            if self.carry is not None:
                from ..search.carry import CarriedTree

                try:
                    carried = CarriedTree.from_payload(self.carry)
                except (KeyError, ValueError, TypeError) as exc:
                    raise SnapshotError(
                        f"corrupt carried-tree payload: {exc}"
                    ) from exc
            service.import_session(
                self.session_id,
                log_len=self.log_len,
                best=best,
                elite=elite,
                sequences=sequences,
                tree=carried,
            )
            if self.cached is not None:
                self._restore_cached(engine, stream)
            note = getattr(engine, "_note_restored", None)
            if note is not None:
                note(
                    self.session_id,
                    {
                        "restored": True,
                        "generation": self.generation,
                        "snapshot_version": SNAPSHOT_SCHEMA_VERSION,
                    },
                )
            return self.session_id

    def _restore_cached(self, engine, stream) -> None:
        """Replay the cached winner through the kernel and re-insert it."""
        asts = stream.asts()
        if not asts:
            raise SnapshotError("cached entry on an empty log")
        asts, screen, model, _initial, _rules = prepare_search(
            asts, screen=engine.screen, config=engine.config, engine=engine.rules
        )
        entry = self.cached
        try:
            tree = ColumnarTree.from_payload(entry["difftree"]).to_node()
        except (KeyError, ValueError, TypeError) as exc:
            raise SnapshotError(f"corrupt cached difftree payload: {exc}") from exc
        kernel = model.kernel_for(tree)
        vector = _decode_vector(entry["vector"])
        try:
            breakdown = kernel.evaluate(vector)
            widget_tree = kernel.materialize(vector)
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"cached decision vector does not replay: {exc}") from exc
        if breakdown.total != entry["cost"]:
            raise SnapshotError(
                f"replayed cache entry cost {breakdown.total!r} disagrees with "
                f"the snapshotted cost {entry['cost']!r}; refusing to serve "
                "drifted state"
            )
        from ..cost import EvaluatedInterface

        best = EvaluatedInterface(tree=tree, widget_tree=widget_tree,
                                  breakdown=breakdown)
        search = SearchResult(
            best=best,
            best_state=tree,
            history=[tuple(point) for point in entry["history"]],
            stats=SearchStats(**entry["stats"]),
            elapsed=entry["elapsed"],
            strategy=entry["strategy"],
        )
        generated = GeneratedInterface(
            queries=list(asts), screen=screen, search=search, best=best
        )
        key = f"{stream.log_key()}:{self.ctx}"
        engine.cache.put(
            key, generated,
            query_keys=stream.query_keys(end=len(asts)),
            ctx=self.ctx,
        )
