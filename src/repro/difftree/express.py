"""Expressibility: which queries can a difftree express, and how?

A difftree expresses a query when there is a way to resolve every choice
node (pick an ``ANY`` alternative, include/exclude each ``OPT``, choose a
repetition count and per-repetition content for each ``MULTI``) such that
the resolved tree equals the query's AST.  The set of choices made is the
*choice assignment* — it is exactly the widget state that shows the query
in the generated interface, and it is what the sequence-usability cost
``U(qi, qi+1, W)`` compares between consecutive queries.

Matching is sequence-based: the children of an ``ALL`` node form a list of
*slots*, and each slot can consume zero (``EMPTY``, absent ``OPT``,
``MULTI`` with count 0), one (``ALL``), or many (``MULTI``) of the AST
node's children, like a small regular expression over child lists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .. import memo as _memo
from ..memo import INGEST
from ..sqlast import nodes as N
from .dtnodes import ALL, ANY, EMPTY, MULTI, OPT, DTNode, Path

#: A choice assignment: choice-node path -> chosen value.
#:  * ANY   -> int index of the chosen alternative
#:  * OPT   -> bool (present?)
#:  * MULTI -> tuple of per-repetition frozen sub-assignments
Assignment = Dict[Path, Any]

#: Frozen form of a nested (per-repetition) assignment.
FrozenAssignment = FrozenSet[Tuple[Path, Any]]


class Matcher:
    """Single-use matcher binding one difftree to one query AST."""

    def __init__(self, root: DTNode, ast: N.Node) -> None:
        self.root = root
        self.ast = ast
        self._fail: set = set()

    def first_assignment(self) -> Optional[Assignment]:
        """Return the first (canonical) choice assignment, or None."""
        for end, choices in self._assign_one(self.root, (self.ast,), 0, ()):
            if end == 1:
                return dict(choices)
        return None

    def matches(self) -> bool:
        return self.first_assignment() is not None

    # -- internals -----------------------------------------------------------

    def _assign_one(
        self,
        slot: DTNode,
        nodes: Tuple[N.Node, ...],
        j: int,
        path: Path,
    ) -> Iterator[Tuple[int, Tuple[Tuple[Path, Any], ...]]]:
        """Yield ``(next_j, choices)`` for each way ``slot`` can consume
        children of ``nodes`` starting at position ``j``."""
        kind = slot.kind
        if kind == EMPTY:
            yield j, ()
            return
        if kind == ALL:
            if j >= len(nodes):
                return
            node = nodes[j]
            if node.label != slot.label or node.value != slot.value:
                return
            for choices in self._assign_seq(slot.children, node.children, 0, 0, path):
                yield j + 1, choices
            return
        if kind == ANY:
            for index, alt in enumerate(slot.children):
                for end, choices in self._assign_one(alt, nodes, j, path + (index,)):
                    yield end, choices + ((path, index),)
            return
        if kind == OPT:
            yield j, ((path, False),)
            for end, choices in self._assign_one(
                slot.children[0], nodes, j, path + (0,)
            ):
                yield end, choices + ((path, True),)
            return
        if kind == MULTI:
            template = slot.children[0]
            yield j, ((path, ()),)
            # Breadth-first over repetition counts; each repetition records
            # its own sub-assignment with paths relative to the template.
            frontier: List[Tuple[int, Tuple[FrozenAssignment, ...]]] = [(j, ())]
            seen = {j}
            while frontier:
                position, reps = frontier.pop(0)
                for end, choices in self._assign_one(
                    template, nodes, position, path + (0,)
                ):
                    if end == position:
                        continue  # zero-width repetition would loop forever
                    relative = frozenset(
                        (sub_path[len(path) + 1 :], value)
                        for sub_path, value in choices
                    )
                    new_reps = reps + (relative,)
                    yield end, ((path, new_reps),)
                    if end not in seen:
                        seen.add(end)
                        frontier.append((end, new_reps))
            return
        raise AssertionError(f"unreachable kind {kind!r}")

    def _assign_seq(
        self,
        slots: Tuple[DTNode, ...],
        nodes: Tuple[N.Node, ...],
        i: int,
        j: int,
        parent_path: Path,
    ) -> Iterator[Tuple[Tuple[Path, Any], ...]]:
        """Yield choice tuples for matching ``slots[i:]`` against
        ``nodes[j:]`` exactly (all nodes consumed)."""
        key = (id(slots), id(nodes), i, j)
        if key in self._fail:
            return
        if i == len(slots):
            if j == len(nodes):
                yield ()
            else:
                self._fail.add(key)
            return
        produced = False
        slot = slots[i]
        for end, choices in self._assign_one(slot, nodes, j, parent_path + (i,)):
            for rest in self._assign_seq(slots, nodes, i + 1, end, parent_path):
                produced = True
                yield choices + rest
        if not produced:
            self._fail.add(key)


#: ``(difftree, ast) -> frozen assignment items`` (or None when the tree
#: cannot express the query).  Interned nodes make the key a fingerprint
#: pair; the bounded table holds strong refs, so capacity bounds memory.
_ASSIGN_MEMO = _memo.memo_table(16384, name="difftree.assign")
_ASSIGN_MISS = object()


def expresses(tree: DTNode, ast: N.Node) -> bool:
    """True if the difftree can express the query AST (memoized)."""
    return assignment_for(tree, ast) is not None


def expresses_all(tree: DTNode, asts: Sequence[N.Node]) -> bool:
    """True if the difftree expresses every query in ``asts``."""
    return all(expresses(tree, ast) for ast in asts)


def assignment_for(tree: DTNode, ast: N.Node) -> Optional[Assignment]:
    """The canonical widget-state assignment expressing ``ast``, or None.

    Memoized on the interned ``(tree, ast)`` pair: re-serving a repeated
    query against the same difftree skips the matcher entirely.  Each
    hit returns a *fresh* dict (assignments are mutable), rebuilt from
    the frozen cached items in their canonical order.
    """
    if _memo.fast_paths_enabled():
        cached = _ASSIGN_MEMO.get((tree, ast), _ASSIGN_MISS)
        if cached is not _ASSIGN_MISS:
            INGEST.express_memo_hits += 1
            return None if cached is None else dict(cached)
        result = Matcher(tree, ast).first_assignment()
        _ASSIGN_MEMO[(tree, ast)] = (
            None if result is None else tuple(result.items())
        )
        return result
    return Matcher(tree, ast).first_assignment()


def changed_choices(a: Assignment, b: Assignment) -> List[Path]:
    """Choice paths whose values differ between two assignments.

    This is the set of widgets the user must touch to move from the query
    behind ``a`` to the query behind ``b`` — the inner quantity of the
    paper's ``U`` cost.
    """
    paths = set(a) | set(b)
    return sorted(p for p in paths if a.get(p) != b.get(p))


def changed_choice_sets(assignments: Sequence[Assignment]) -> List[Tuple[Path, ...]]:
    """Per-consecutive-pair changed choice paths, each sorted.

    ``changed_choice_sets(a)[i] == tuple(changed_choices(a[i], a[i+1]))``;
    computing them in one pass lets the cost kernel diff a query sequence
    exactly once per difftree instead of once per candidate widget tree.
    """
    return [
        tuple(changed_choices(a, b)) for a, b in zip(assignments, assignments[1:])
    ]


@dataclass(frozen=True)
class CompiledChanges:
    """Interned changed-choice sets of one per-query assignment sequence.

    Choice paths are interned to dense int ids assigned in lexicographic
    path order, so iterating a pair's ids ascending visits its paths in
    the exact order :func:`changed_choices` reports them — downstream
    float accumulations (widget-effort sums) stay bitwise identical to
    the path-at-a-time reference implementation.

    Attributes:
        paths: id -> path (lexicographically sorted, so ids are ordered).
        ids: path -> id.
        pair_paths: per consecutive query pair, the sorted changed paths.
        pair_ids: the same pairs as sorted int-id tuples.
    """

    paths: Tuple[Path, ...]
    ids: Dict[Path, int]
    pair_paths: Tuple[Tuple[Path, ...], ...]
    pair_ids: Tuple[Tuple[int, ...], ...]

    @classmethod
    def from_pair_paths(
        cls, pair_paths: Sequence[Tuple[Path, ...]]
    ) -> "CompiledChanges":
        """Intern an explicit list of per-pair changed-path sets."""
        universe = sorted({p for pair in pair_paths for p in pair})
        ids = {path: i for i, path in enumerate(universe)}
        return cls(
            paths=tuple(universe),
            ids=ids,
            pair_paths=tuple(tuple(pair) for pair in pair_paths),
            pair_ids=tuple(
                tuple(ids[p] for p in pair) for pair in pair_paths
            ),
        )

    @classmethod
    def compile(cls, assignments: Sequence[Assignment]) -> "CompiledChanges":
        """Diff a whole assignment sequence once and intern the result."""
        return cls.from_pair_paths(changed_choice_sets(assignments))

    def extended(
        self, tail_pair_paths: Sequence[Tuple[Path, ...]]
    ) -> "CompiledChanges":
        """New compilation with extra trailing pairs (appended queries).

        Only the appended pairs are diffed by the caller; the existing
        pair sets are reused verbatim and merely re-interned (id
        assignment must stay lexicographic over the grown path universe).
        """
        return CompiledChanges.from_pair_paths(
            self.pair_paths + tuple(tuple(pair) for pair in tail_pair_paths)
        )

    @property
    def path_set(self) -> FrozenSet[Path]:
        """Every choice path any pair of this sequence touches.

        The *compiled choice-set* of the (difftree, query log) pair: the
        decision territory the log has actually exercised.  The carried
        search tree (:mod:`repro.search.carry`) compares an append's
        changed paths against this set to decide whether a carried
        node's statistics are still trustworthy.
        """
        return frozenset(self.paths)

    def paths_of_pairs(self, start: int) -> FrozenSet[Path]:
        """Union of changed paths over ``pair_paths[start:]``.

        The *delta* of an append: with ``start`` at the old pair count,
        this is exactly the set of choice paths the appended queries
        touch — the invalidation scope of the FO+MOD-style maintainable
        search state.
        """
        return frozenset(p for pair in self.pair_paths[start:] for p in pair)

# -- enumeration / counting ----------------------------------------------------


def count_queries(tree: DTNode, multi_cap: int = 3) -> int:
    """Upper bound on the number of distinct queries the tree expresses.

    ``MULTI`` nodes are capped at ``multi_cap`` repetitions.  Overlapping
    ``ANY`` alternatives may be double-counted, so this is an upper bound
    (exact for trees produced from disjoint query sets).
    """

    def count(node: DTNode) -> int:
        if node.kind == EMPTY:
            return 1
        if node.kind == ALL:
            product = 1
            for child in node.children:
                product *= count(child)
            return product
        if node.kind == ANY:
            return sum(count(c) for c in node.children)
        if node.kind == OPT:
            return 1 + count(node.children[0])
        if node.kind == MULTI:
            per = count(node.children[0])
            return sum(per**k for k in range(multi_cap + 1))
        raise AssertionError(node.kind)

    return count(tree)


def enumerate_queries(
    tree: DTNode, limit: int = 1000, multi_cap: int = 2
) -> List[N.Node]:
    """Materialize up to ``limit`` distinct query ASTs the tree expresses.

    ``MULTI`` nodes are expanded up to ``multi_cap`` repetitions.
    """

    def gen(node: DTNode) -> Iterator[Tuple[N.Node, ...]]:
        if node.kind == EMPTY:
            yield ()
            return
        if node.kind == ALL:
            child_options = [list(gen(c)) for c in node.children]
            for combo in itertools.product(*child_options):
                flat: Tuple[N.Node, ...] = tuple(itertools.chain.from_iterable(combo))
                yield (N.Node(node.label, node.value, flat),)
            return
        if node.kind == ANY:
            for alt in node.children:
                yield from gen(alt)
            return
        if node.kind == OPT:
            yield ()
            yield from gen(node.children[0])
            return
        if node.kind == MULTI:
            repetitions = list(gen(node.children[0]))
            for k in range(multi_cap + 1):
                for combo in itertools.product(repetitions, repeat=k):
                    yield tuple(itertools.chain.from_iterable(combo))
            return
        raise AssertionError(node.kind)

    results: List[N.Node] = []
    seen = set()
    for sequence in gen(tree):
        if len(sequence) != 1:
            continue
        ast = sequence[0]
        if ast not in seen:
            seen.add(ast)
            results.append(ast)
        if len(results) >= limit:
            break
    return results
