"""Building the initial difftree search state.

The paper's initial state is "the list of input queries connected with an
ANY node as the root" (Figure 1 with the top ANY): a trivially valid
interface where each query is one button.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..sqlast import nodes as N
from ..sqlast.parser import parse
from .dtnodes import DTNode, any_node, wrap_ast
from .normalize import normalize

QueryLike = Union[str, N.Node]


def as_asts(queries: Sequence[QueryLike]) -> List[N.Node]:
    """Coerce a mixed list of SQL strings / ASTs into ASTs."""
    asts: List[N.Node] = []
    for query in queries:
        if isinstance(query, N.Node):
            asts.append(query)
        elif isinstance(query, str):
            asts.append(parse(query))
        else:
            raise TypeError(f"query must be SQL text or AST, got {type(query)}")
    return asts


def initial_difftree(queries: Sequence[QueryLike]) -> DTNode:
    """The root search state: ``ANY`` over the (deduplicated) query ASTs.

    Raises:
        ValueError: if ``queries`` is empty.
    """
    asts = as_asts(queries)
    if not asts:
        raise ValueError("need at least one input query")
    seen = set()
    unique: List[N.Node] = []
    for ast in asts:
        if ast not in seen:
            seen.add(ast)
            unique.append(ast)
    if len(unique) == 1:
        return normalize(wrap_ast(unique[0]))
    return normalize(any_node([wrap_ast(ast) for ast in unique]))
