"""Building the initial difftree search state.

The paper's initial state is "the list of input queries connected with an
ANY node as the root" (Figure 1 with the top ANY): a trivially valid
interface where each query is one button.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..memo import INGEST
from ..sqlast import nodes as N
from ..sqlast.parser import parse
from .antiunify import anti_unify, graft
from .dtnodes import DTNode, any_node, wrap_ast
from .express import expresses
from .normalize import normalize

QueryLike = Union[str, N.Node]


def as_asts(queries: Sequence[QueryLike]) -> List[N.Node]:
    """Coerce a mixed list of SQL strings / ASTs into ASTs."""
    asts: List[N.Node] = []
    for query in queries:
        if isinstance(query, N.Node):
            asts.append(query)
        elif isinstance(query, str):
            asts.append(parse(query))
        else:
            raise TypeError(f"query must be SQL text or AST, got {type(query)}")
    return asts


def initial_difftree(queries: Sequence[QueryLike]) -> DTNode:
    """The root search state: ``ANY`` over the (deduplicated) query ASTs.

    Raises:
        ValueError: if ``queries`` is empty.
    """
    asts = as_asts(queries)
    if not asts:
        raise ValueError("need at least one input query")
    seen = set()
    unique: List[N.Node] = []
    for ast in asts:
        if ast not in seen:
            seen.add(ast)
            unique.append(ast)
    if len(unique) == 1:
        return normalize(wrap_ast(unique[0]))
    return normalize(any_node([wrap_ast(ast) for ast in unique]))


def extend_difftree(tree: DTNode, new_queries: Sequence[QueryLike]) -> DTNode:
    """Incrementally extend ``tree`` to also express appended queries.

    The incremental-serving primitive (:mod:`repro.serve`): instead of
    rebuilding the initial state from the full log and searching from
    scratch, merge only the *new* queries into an already-optimized
    difftree.  Queries the tree already expresses are skipped, so
    appending duplicates (the common case in real session logs) returns
    ``tree`` unchanged — same canonical key, zero structural churn.

    Each unexpressed query is :func:`~repro.difftree.antiunify.graft`-ed
    in (deep choice-domain extension, preserving the optimized layout);
    if the graft misses — repetition runs are approximate — the sound
    but coarser :func:`anti_unify` root merge is used instead.  Either
    way the result expresses everything ``tree`` expressed plus every
    new query, making it a valid warm-start state for the grown log.
    """
    current = tree
    for ast in as_asts(new_queries):
        if expresses(current, ast):
            INGEST.dedup_skipped_appends += 1
            continue
        wrapped = wrap_ast(ast)
        merged = graft(current, wrapped)
        if not expresses(merged, ast):
            merged = anti_unify(current, wrapped)
        current = merged
    return current
