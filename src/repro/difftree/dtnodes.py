"""The ``difftree`` data structure (paper, "The Interface Generation Problem").

A difftree jointly encodes the structural differences between the input
query ASTs *and* the hierarchical layout of the interface.  Node kinds:

* ``ALL``  — a concrete AST head; all child slots are present.  An AST is
  the special case of a difftree in which every node is ``ALL``.
* ``ANY``  — choose exactly one of the children.
* ``OPT``  — the single child is optional (present or absent).
* ``MULTI``— the single child may be instantiated zero or more times.
* ``EMPTY``— the absent subtree ∅ (used as an ``ANY`` alternative).

``ANY``, ``OPT`` and ``MULTI`` are the *choice nodes*; each maps to one or
more interaction widgets, while ``ALL`` nodes with choice descendants map
to layout widgets.

Difftree nodes are immutable; every rewrite produces a new tree.  Each node
caches a *canonical key* — a deterministic structural fingerprint used for
state deduplication in the search transposition table (Python's built-in
``hash`` is randomized per process, so it cannot identify states across
runs).

Like AST nodes, difftree nodes are **hash-consed**: constructing a node
whose ``(kind, label, value, children)`` matches a live instance returns
that instance, so structural equality is usually one identity check and
every pure function over trees (``normalize``, ``anti_unify``, ``graft``,
``expresses``) can memoize on node identity.  The md5 canonical key is
computed lazily on first use — interning shares it across every context
that reaches the same subtree.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary, WeakValueDictionary

from .. import memo as _memo
from ..memo import INGEST
from ..sqlast import nodes as N
from ..sqlast.align import STRUCTURAL_VALUE_LABELS

ALL = "ALL"
ANY = "ANY"
OPT = "OPT"
MULTI = "MULTI"
EMPTY = "EMPTY"

#: Batch canonical-key hook, installed by :mod:`repro.difftree.columnar`
#: at import (``fill_canonical_keys``).  Kept as a late-bound module
#: attribute because columnar imports this module.
_BATCH_KEYS: Optional[Callable[["DTNode"], str]] = None

#: Minimum subtree size before :attr:`DTNode.canonical_key` routes a cold
#: tree through the columnar batch fill — below this, the per-node
#: recursion wins (no encode cost).
_BATCH_KEY_MIN_SIZE = 256

CHOICE_KINDS = frozenset({ANY, OPT, MULTI})

#: A path into a difftree: tuple of child indices from the root.
Path = Tuple[int, ...]

#: The hash-consing table: ``(kind, label, value, children) -> live DTNode``.
_INTERN: "WeakValueDictionary[Tuple, DTNode]" = WeakValueDictionary()


def interned_dtnode_count() -> int:
    """How many distinct difftree subtrees are currently interned."""
    return len(_INTERN)


class DTNode:
    """One immutable difftree node.

    Args:
        kind: one of ``ALL``/``ANY``/``OPT``/``MULTI``/``EMPTY``.
        label: for ``ALL`` nodes, the AST grammar label; ``None`` otherwise.
        value: for ``ALL`` nodes, the AST node's scalar payload.
        children: child difftree nodes.  ``OPT`` and ``MULTI`` have exactly
            one child; ``EMPTY`` has none; ``ANY`` has one child per
            alternative.
    """

    __slots__ = (
        "kind",
        "label",
        "value",
        "children",
        "_key",
        "_hash",
        "_size",
        "_norm",
        "__weakref__",
    )

    def __new__(
        cls,
        kind: str,
        label: Optional[str] = None,
        value: Any = None,
        children: Sequence["DTNode"] = (),
    ) -> "DTNode":
        children = tuple(children)
        key = (kind, label, value, children)
        cached = _INTERN.get(key)
        if cached is not None:
            INGEST.dtnode_intern_hits += 1
            return cached
        if kind == ALL:
            if label is None:
                raise ValueError("ALL node requires a label")
        elif kind == EMPTY:
            if label is not None or value is not None or children:
                raise ValueError("EMPTY node must be bare")
        elif kind in (OPT, MULTI):
            if len(children) != 1:
                raise ValueError(f"{kind} node requires exactly one child")
            if label is not None or value is not None:
                raise ValueError(f"{kind} node carries no label/value")
        elif kind == ANY:
            if len(children) < 1:
                raise ValueError("ANY node requires at least one alternative")
            if label is not None or value is not None:
                raise ValueError("ANY node carries no label/value")
        else:
            raise ValueError(f"unknown difftree kind {kind!r}")
        self = object.__new__(cls)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "children", children)
        # Process-local structural fingerprint: child hashes are cached
        # ints, so hashing stays O(fanout) per node.  The deterministic
        # md5 canonical key (stable across processes) is computed lazily
        # on first use — see :attr:`canonical_key`.
        object.__setattr__(self, "_key", None)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_size", 1 + sum(c._size for c in children))
        # Memoized normalize() result (None = not yet normalized).
        object.__setattr__(self, "_norm", None)
        _INTERN[key] = self
        return self

    # -- immutability / identity ---------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("DTNode is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Slotted + immutable blocks pickle's default setattr-based path;
        # rebuilding through __init__ keeps process-pool transport
        # (repro.serve.batch) working and recomputes the cached key.
        return (DTNode, (self.kind, self.label, self.value, self.children))

    def __eq__(self, other: object) -> bool:
        # Interning makes the identity check decide almost every
        # comparison; the structural fallback only runs for the rare
        # un-interned twin (e.g. built concurrently on another thread).
        if self is other:
            return True
        if not isinstance(other, DTNode):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (
            self.kind == other.kind
            and self.label == other.label
            and self.value == other.value
            and self.children == other.children
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    @property
    def fingerprint(self) -> int:
        """Cached structural fingerprint (process-local; O(1) equality)."""
        return self._hash

    @property
    def canonical_key(self) -> str:
        """Deterministic structural fingerprint (stable across processes).

        Computed lazily on first access and cached on the interned node,
        so the md5 cost is paid once per *distinct* subtree per process.
        The digest text is identical to the historical eager computation,
        so keys (and everything keyed by them — the interface cache, the
        MCTS transposition table) are unchanged.
        """
        key = self._key
        if key is None:
            # Cold large subtree (no child keyed yet): one columnar
            # encode + bottom-up hashing sweep beats per-node recursion.
            # Warm trees — e.g. a search rewrite where only the spine is
            # new — keep the recursion, which touches only cold nodes.
            if (
                _BATCH_KEYS is not None
                and self._size >= _BATCH_KEY_MIN_SIZE
                and self.children
                and _memo.columnar_enabled()
                and all(c._key is None for c in self.children)
            ):
                return _BATCH_KEYS(self)
            text = "{}:{}:{!r}({})".format(
                self.kind,
                self.label or "",
                self.value,
                ",".join(c.canonical_key for c in self.children),
            )
            key = hashlib.md5(text.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_key", key)
        return key

    def __repr__(self) -> str:
        if self.kind == ALL:
            head = self.label if self.value is None else f"{self.label}={self.value!r}"
            if not self.children:
                return f"DT[{head}]"
            return f"DT[{head}]({', '.join(map(repr, self.children))})"
        if self.kind == EMPTY:
            return "DT[∅]"
        return f"DT[{self.kind}]({', '.join(map(repr, self.children))})"

    # -- structure -------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    @property
    def is_choice(self) -> bool:
        return self.kind in CHOICE_KINDS

    @property
    def head(self) -> Tuple[Optional[str], Any]:
        """The AST head ``(label, value)`` of an ``ALL`` node."""
        return (self.label, self.value)

    def align_key(self) -> Tuple[str, Any]:
        """Key on which two ALL nodes may be aligned (cf. sqlast.align)."""
        if self.kind != ALL:
            return (self.kind, None)
        if self.label in STRUCTURAL_VALUE_LABELS:
            return (self.label, self.value)
        return (self.label, None)

    def walk(self) -> Iterator["DTNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def walk_paths(self, prefix: Path = ()) -> Iterator[Tuple[Path, "DTNode"]]:
        yield prefix, self
        for i, child in enumerate(self.children):
            yield from child.walk_paths(prefix + (i,))

    def at(self, path: Sequence[int]) -> "DTNode":
        node = self
        for index in path:
            node = node.children[index]
        return node

    def replace_at(self, path: Sequence[int], new: "DTNode") -> "DTNode":
        """Return a copy with the node at ``path`` replaced by ``new``."""
        if not path:
            return new
        index = path[0]
        child = self.children[index].replace_at(path[1:], new)
        children = self.children[:index] + (child,) + self.children[index + 1 :]
        return DTNode(self.kind, self.label, self.value, children)

    def choice_nodes(self) -> List[Tuple[Path, "DTNode"]]:
        """All choice nodes with their paths, in pre-order."""
        return [(p, n) for p, n in self.walk_paths() if n.is_choice]

    def has_choice_descendant(self) -> bool:
        return any(n.is_choice for n in self.walk())

    def find_all(self, predicate: Callable[["DTNode"], bool]) -> Iterator["DTNode"]:
        return (n for n in self.walk() if predicate(n))


#: The singleton absent subtree.
EMPTY_NODE = DTNode(EMPTY)


def all_node(label: str, value: Any = None, children: Sequence[DTNode] = ()) -> DTNode:
    return DTNode(ALL, label, value, children)


def any_node(alternatives: Sequence[DTNode]) -> DTNode:
    return DTNode(ANY, None, None, alternatives)


def any_merge(members: Sequence[DTNode]) -> DTNode:
    """ANY over ``members``, flattening nested ANY alternatives eagerly.

    The final ``normalize`` would flatten too, but grafting compares
    subtree sizes mid-merge to pick the cheapest insertion point — an
    unflattened nested ANY would overstate the growth of exactly the
    merges that reuse an existing choice domain.  Shared by the
    object-walk merge kernels (:mod:`repro.difftree.antiunify`) and
    their columnar twins (:mod:`repro.difftree.columnar`), which must
    build bit-identical intermediate trees.
    """
    alternatives: List[DTNode] = []
    for member in members:
        if member.kind == ANY:
            alternatives.extend(member.children)
        else:
            alternatives.append(member)
    return any_node(alternatives)


def opt_node(child: DTNode) -> DTNode:
    return DTNode(OPT, None, None, (child,))


def multi_node(child: DTNode) -> DTNode:
    return DTNode(MULTI, None, None, (child,))


#: ``interned AST node -> its pure-ALL difftree`` (weak keys: dies with
#: the AST).  Interned ASTs make this a structural memo.
_WRAP_MEMO: "WeakKeyDictionary[N.Node, DTNode]" = WeakKeyDictionary()
_memo.register_cache(_WRAP_MEMO.clear)


def wrap_ast(ast: N.Node) -> DTNode:
    """Embed a concrete AST as a pure-``ALL`` difftree (memoized)."""
    fast = _memo.fast_paths_enabled()
    if fast:
        cached = _WRAP_MEMO.get(ast)
        if cached is not None:
            INGEST.wrap_memo_hits += 1
            return cached
    node = DTNode(ALL, ast.label, ast.value, tuple(wrap_ast(c) for c in ast.children))
    if fast:
        _WRAP_MEMO[ast] = node
    return node


def unwrap_ast(node: DTNode) -> N.Node:
    """Convert a choice-free difftree back to an AST.

    Raises:
        ValueError: if the subtree contains any choice or EMPTY node.
    """
    if node.kind != ALL:
        raise ValueError(f"cannot unwrap {node.kind} node to an AST")
    return N.Node(node.label, node.value, tuple(unwrap_ast(c) for c in node.children))


def pretty(node: DTNode, indent: int = 0) -> str:
    """Human-readable multi-line rendering (used in docs and debugging)."""
    pad = "  " * indent
    if node.kind == ALL:
        head = node.label if node.value is None else f"{node.label}={node.value!r}"
        line = f"{pad}{head}"
    elif node.kind == EMPTY:
        return f"{pad}∅"
    else:
        line = f"{pad}{node.kind}"
    if not node.children:
        return line
    body = "\n".join(pretty(c, indent + 1) for c in node.children)
    return f"{line}\n{body}"
