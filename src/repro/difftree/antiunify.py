"""Anti-unification of difftree subtrees.

``anti_unify(a, b)`` computes the least-general difftree expressing both
inputs: shared structure stays concrete, differing parts become ``ANY``
choices.  This is the merge primitive behind the ``Multi`` rule (merging
repeated predicate conjuncts into one ``MULTI`` template) and is also used
by the bottom-up mining baseline.
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

from .dtnodes import ALL, ANY, DTNode, any_node
from .normalize import normalize


def anti_unify(a: DTNode, b: DTNode) -> DTNode:
    """Least-general generalization of two difftree subtrees."""
    return normalize(_au(a, b))


def anti_unify_all(subtrees: Sequence[DTNode]) -> DTNode:
    """Fold :func:`anti_unify` over a non-empty sequence of subtrees."""
    if not subtrees:
        raise ValueError("anti_unify_all requires at least one subtree")
    return normalize(reduce(_au, subtrees))


def _au(a: DTNode, b: DTNode) -> DTNode:
    if a == b:
        return a
    if (
        a.kind == ALL
        and b.kind == ALL
        and a.head == b.head
        and len(a.children) == len(b.children)
    ):
        children = tuple(_au(x, y) for x, y in zip(a.children, b.children))
        return DTNode(ALL, a.label, a.value, children)
    # Heads differ (including same label, different leaf value) or arity
    # differs: fall back to an explicit choice between the two subtrees.
    alternatives = []
    for node in (a, b):
        if node.kind == ANY:
            alternatives.extend(node.children)
        else:
            alternatives.append(node)
    return any_node(alternatives)
