"""Anti-unification and incremental grafting of difftree subtrees.

``anti_unify(a, b)`` computes the least-general difftree expressing both
inputs: shared structure stays concrete, differing parts become ``ANY``
choices.  This is the merge primitive behind the ``Multi`` rule (merging
repeated predicate conjuncts into one ``MULTI`` template) and is also used
by the bottom-up mining baseline.

``graft(tree, query)`` is the *incremental* variant used by the serving
layer (:mod:`repro.serve`): it merges one concrete query into an
already-optimized difftree by extending existing choice domains in place
— a drifting literal lands as one new ``ANY`` alternative deep in the
tree, a newly appearing clause becomes an ``OPT`` column — rather than
anti-unification's root-level ``ANY`` fallback, which would demote the
whole optimized structure to one alternative among raw queries.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, List, Optional, Sequence, Tuple

from .. import memo as _memo
from ..memo import INGEST
from . import columnar as _columnar
from .dtnodes import (
    ALL,
    ANY,
    EMPTY,
    MULTI,
    OPT,
    DTNode,
    any_merge as _any_merge,
    any_node,
    multi_node,
    opt_node,
)
from .normalize import normalize

#: ``(a, b) -> _au(a, b)`` over interned subtree pairs.  Repeated template
#: collisions (the dominant pattern in real logs) become O(1) lookups.
_AU_MEMO = _memo.memo_table(8192, name="difftree.anti_unify")

#: ``(tree, query) -> graft(tree, query)`` for whole-merge reuse.
_GRAFT_MEMO = _memo.memo_table(8192, name="difftree.graft")


def anti_unify(a: DTNode, b: DTNode) -> DTNode:
    """Least-general generalization of two difftree subtrees (memoized)."""
    return normalize(_au(a, b))


def anti_unify_reference(a: DTNode, b: DTNode) -> DTNode:
    """Unmemoized :func:`anti_unify` (parity oracle for tests/benchmarks)."""
    return normalize(_au_reference(a, b))


def anti_unify_all(subtrees: Sequence[DTNode]) -> DTNode:
    """Fold :func:`anti_unify` over a non-empty sequence of subtrees."""
    if not subtrees:
        raise ValueError("anti_unify_all requires at least one subtree")
    return normalize(reduce(_au, subtrees))


def _au(a: DTNode, b: DTNode) -> DTNode:
    if a == b:
        return a
    if _memo.fast_paths_enabled():
        if _memo.columnar_enabled():
            # The columnar kernel consults/fills _AU_MEMO per subtree
            # pair itself (same memo discipline as the recursion below).
            return _columnar.au_nodes(a, b, memo=_AU_MEMO)
        cached = _AU_MEMO.get((a, b))
        if cached is not None:
            INGEST.au_memo_hits += 1
            return cached
        result = _au_impl(a, b, _au)
        _AU_MEMO[(a, b)] = result
        return result
    return _au_impl(a, b, _au)


def _au_reference(a: DTNode, b: DTNode) -> DTNode:
    if a == b:
        return a
    return _au_impl(a, b, _au_reference)


def _au_impl(
    a: DTNode, b: DTNode, au: Callable[[DTNode, DTNode], DTNode]
) -> DTNode:
    """One anti-unification step; recursion goes through ``au`` so the
    memoized entry point and the reference share one body."""
    if (
        a.kind == ALL
        and b.kind == ALL
        and a.head == b.head
        and len(a.children) == len(b.children)
    ):
        children = tuple(au(x, y) for x, y in zip(a.children, b.children))
        return DTNode(ALL, a.label, a.value, children)
    # Heads differ (including same label, different leaf value) or arity
    # differs: fall back to an explicit choice between the two subtrees.
    alternatives = []
    for node in (a, b):
        if node.kind == ANY:
            alternatives.extend(node.children)
        else:
            alternatives.append(node)
    return any_node(alternatives)


# -- incremental grafting ----------------------------------------------------


def graft(tree: DTNode, query: DTNode) -> DTNode:
    """Merge one concrete query (a pure-``ALL`` difftree) into ``tree``.

    The result expresses everything ``tree`` expresses plus the query,
    like ``anti_unify`` — but differences are absorbed at the *deepest*
    aligned position instead of the highest: existing ``ANY`` domains
    gain one alternative, missing clauses become ``OPT`` columns, and
    only unalignable structure falls back to a local ``ANY``.

    Callers that must guarantee expressibility (``extend_difftree``)
    verify the result and fall back to :func:`anti_unify`; grafting
    through ``MULTI`` repetition runs is intentionally approximate.

    Memoized on the interned ``(tree, query)`` pair — a session
    re-grafting a familiar query shape into the same optimized tree
    reuses the merge wholesale.
    """
    if _memo.fast_paths_enabled():
        cached = _GRAFT_MEMO.get((tree, query))
        if cached is not None:
            INGEST.graft_memo_hits += 1
            return cached
        if _memo.columnar_enabled():
            merged = _columnar.graft_nodes(tree, query)
        else:
            merged = _graft(tree, query)
        result = normalize(merged)
        _GRAFT_MEMO[(tree, query)] = result
        return result
    return normalize(_graft(tree, query))


def graft_reference(tree: DTNode, query: DTNode) -> DTNode:
    """Unmemoized object-walk :func:`graft` (parity oracle for tests/benches)."""
    return normalize(_graft(tree, query))


def _graft(t: DTNode, q: DTNode) -> DTNode:
    if t == q:
        return t
    if t.kind == EMPTY:
        return _any_merge([t, q])
    if t.kind == OPT:
        return opt_node(_graft(t.children[0], q))
    if t.kind == MULTI:
        # Treat the query subtree as one instance of the template; runs
        # of several instances are caught by the caller's fallback.
        template = t.children[0]
        key = _graft_key(template)
        if key is not None and key == _graft_key(q):
            return multi_node(_graft(template, q))
        return _any_merge([t, q])
    if t.kind == ANY:
        return _graft_into_any(t, q)
    # t is ALL.
    if q.kind != ALL or t.head != q.head:
        return _any_merge([t, q])
    columns = _align_graft_columns(t.children, q.children)
    if columns is not None:
        children: List[DTNode] = []
        for t_child, q_child in columns:
            if t_child is None:
                # Clause the query has but the tree lacks: optional column
                # — previously expressed queries take the absent branch.
                children.append(opt_node(q_child))
            elif q_child is None:
                # Clause the tree has but the query lacks: it must be able
                # to match zero AST children for the query's assignment.
                children.append(
                    t_child if _can_be_absent(t_child) else opt_node(t_child)
                )
            else:
                children.append(_graft(t_child, q_child))
        return DTNode(ALL, t.label, t.value, tuple(children))
    if len(t.children) == len(q.children):
        # No key-based alignment (e.g. repeated Between conjuncts), but
        # matching arity: positional pairing.
        return DTNode(
            ALL,
            t.label,
            t.value,
            tuple(_graft(tc, qc) for tc, qc in zip(t.children, q.children)),
        )
    return _any_merge([t, q])


def _graft_into_any(t: DTNode, q: DTNode) -> DTNode:
    """Extend the best-aligned alternative; append ``q`` if none aligns."""
    q_key = _graft_key(q)
    best: Optional[DTNode] = None
    best_index = -1
    best_growth = 0
    if q_key is not None:
        for index, alt in enumerate(t.children):
            key = _graft_key(alt)
            if key is None or key != q_key:
                continue
            candidate = _graft(alt, q)
            # Minimize *growth*, not candidate size: the alternative that
            # absorbs the query most cheaply (e.g. one new value in an
            # existing ANY domain) wins, even if it is the larger subtree.
            growth = candidate.size - alt.size
            if best is None or growth < best_growth:
                best = candidate
                best_index = index
                best_growth = growth
    if best is None:
        return _any_merge(t.children + (q,))
    children = t.children[:best_index] + (best,) + t.children[best_index + 1 :]
    return _any_merge(children)


def _graft_key(node: DTNode):
    """Alignment key of a difftree slot, or None when it has no stable one.

    An ``ANY`` slot is keyed when all its (non-``EMPTY``) alternatives
    agree on one key — an optimized tree's per-clause choice slots (an
    ``ANY`` of ``Top`` values, of ``Where`` variants, …) then align with
    the corresponding clause of a raw query.
    """
    if node.kind == ALL:
        return node.align_key()
    if node.kind in (OPT, MULTI):
        return _graft_key(node.children[0])
    if node.kind == ANY:
        keys = {
            _graft_key(alt) for alt in node.children if alt.kind != EMPTY
        }
        if len(keys) == 1:
            return next(iter(keys))
    return None


def _can_be_absent(node: DTNode) -> bool:
    """Can this slot consume zero AST children (cf. ``express.Matcher``)?"""
    if node.kind in (OPT, MULTI, EMPTY):
        return True
    if node.kind == ANY:
        return any(_can_be_absent(alt) for alt in node.children)
    return False


def _align_graft_columns(
    t_children: Sequence[DTNode], q_children: Sequence[DTNode]
) -> Optional[List[Tuple[Optional[DTNode], Optional[DTNode]]]]:
    """Order-preserving column alignment of two child rows by graft key.

    Mirrors :func:`repro.sqlast.align.align_children` but over difftree
    slots.  Returns ``None`` when any slot lacks a stable key, a key
    repeats within a row, or the rows order their shared keys
    differently — callers then fall back to a local ``ANY``.
    """
    t_keys = [_graft_key(child) for child in t_children]
    q_keys = [_graft_key(child) for child in q_children]
    if None in t_keys or None in q_keys:
        return None
    if len(set(t_keys)) != len(t_keys) or len(set(q_keys)) != len(q_keys):
        return None
    order: List = []
    for keys in (t_keys, q_keys):
        position = 0
        for key in keys:
            if key in order:
                existing = order.index(key)
                if existing < position:
                    return None
                position = existing + 1
            else:
                order.insert(position, key)
                position += 1
    t_by_key = dict(zip(t_keys, t_children))
    q_by_key = dict(zip(q_keys, q_children))
    return [(t_by_key.get(key), q_by_key.get(key)) for key in order]
