"""Difftree normalization (the paper's ``Noop`` rule family).

Normalization removes redundant structure that does not change the set of
expressible queries and would otherwise bloat the search space with
trivially-equivalent states:

* nested ``ANY`` alternatives are flattened,
* duplicate ``ANY`` alternatives are removed,
* a single-alternative ``ANY`` collapses to its alternative,
* an ``EMPTY`` alternative inside an ``OPT``'s child ``ANY`` is dropped
  (the ``OPT`` already expresses absence),
* ``OPT(OPT(x))`` → ``OPT(x)``, ``OPT(EMPTY)`` → ``EMPTY``,
* ``MULTI(MULTI(x))`` → ``MULTI(x)``, ``MULTI(EMPTY)`` → ``EMPTY``,
* ``ANY`` alternatives are put in canonical (deterministic) order.

Normalization is applied automatically after every transformation rule, so
two rewrite sequences that reach trivially-equivalent trees reach the
*same* state (and share statistics in the MCTS transposition table).
"""

from __future__ import annotations

from typing import List

from ..memo import fast_paths_enabled
from .dtnodes import ALL, ANY, EMPTY, EMPTY_NODE, MULTI, OPT, DTNode


def normalize(node: DTNode) -> DTNode:
    """Return the canonical form of ``node`` (bottom-up).

    Memoized on the interned node: each distinct subtree is normalized
    once per process, and already-normal trees (the common case when
    serving appends of already-expressed queries) return in O(1).  The
    result is marked as its own normal form, so ``normalize`` over a
    previously-normalized tree never recurses.
    """
    if fast_paths_enabled():
        cached = node._norm
        if cached is not None:
            return cached
        children = tuple(normalize(c) for c in node.children)
        result = normalize_shallow(node, children)
        # normalize_shallow over normalized children yields a fully
        # normalized tree, so the result is its own fixed point.
        object.__setattr__(result, "_norm", result)
        object.__setattr__(node, "_norm", result)
        return result
    children = tuple(normalize(c) for c in node.children)
    return normalize_shallow(node, children)


def normalize_shallow(node: DTNode, children=None) -> DTNode:
    """Normalize one level, assuming the children are already normalized.

    ``normalize(x) == normalize_shallow(x with normalized children)`` by
    construction; rule application uses this to renormalize only the
    spine from a rewrite site to the root instead of the whole tree.
    """
    if children is None:
        children = node.children

    if node.kind == ALL:
        if children == node.children:
            return node
        return DTNode(ALL, node.label, node.value, children)

    if node.kind == EMPTY:
        return EMPTY_NODE

    if node.kind == ANY:
        alternatives: List[DTNode] = []
        for child in children:
            if child.kind == ANY:
                alternatives.extend(child.children)  # flatten nested ANY
            else:
                alternatives.append(child)
        seen = set()
        unique: List[DTNode] = []
        for alt in alternatives:
            if alt.canonical_key not in seen:
                seen.add(alt.canonical_key)
                unique.append(alt)
        unique.sort(key=_alt_sort_key)
        if len(unique) == 1:
            return unique[0]
        return DTNode(ANY, None, None, unique)

    if node.kind == OPT:
        child = children[0]
        if child.kind == EMPTY:
            return EMPTY_NODE
        if child.kind == OPT:
            child = child.children[0]
        if child.kind == ANY:
            non_empty = [a for a in child.children if a.kind != EMPTY]
            if len(non_empty) != len(child.children):
                child = (
                    non_empty[0]
                    if len(non_empty) == 1
                    else DTNode(ANY, None, None, non_empty)
                )
        return DTNode(OPT, None, None, (child,))

    if node.kind == MULTI:
        child = children[0]
        if child.kind == EMPTY:
            return EMPTY_NODE
        if child.kind == MULTI:
            child = child.children[0]
        return DTNode(MULTI, None, None, (child,))

    raise AssertionError(f"unreachable kind {node.kind!r}")


def _alt_sort_key(alt: DTNode):
    """Deterministic, *semantic* ordering for ANY alternatives.

    EMPTY sorts first (so "no clause" appears as the first option); leaf
    alternatives sort by label then value (numbers numerically), so e.g.
    ``TOP 10 / 100 / 1000`` options appear in numeric order in widgets;
    everything else falls back to the canonical fingerprint.  This
    ordering is what makes ``ANY`` choice indices stable across runs.
    """
    if alt.kind == EMPTY:
        return (0, "", 0, 0.0, "", "")
    if alt.kind == ALL and not alt.children:
        value = alt.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return (1, alt.label or "", 2, 0.0, str(value), alt.canonical_key)
        return (1, alt.label or "", 1, float(value), "", alt.canonical_key)
    return (2, alt.label or "", 0, 0.0, "", alt.canonical_key)


def is_normalized(node: DTNode) -> bool:
    """True if ``normalize`` would return ``node`` unchanged."""
    return normalize(node) == node
