"""Columnar difftree store: interned trees as parallel integer arrays.

Hash-consing (PR 5) made structural *equality* O(1), but the hot
structural kernels — anti-unify, graft, canonical keys, the cost
kernel's Steiner precompute — still walk Python object graphs node by
node, paying an attribute lookup and a method dispatch per edge.  This
module encodes an interned :class:`~repro.difftree.dtnodes.DTNode` (or
:class:`~repro.sqlast.nodes.Node`) tree once as flat parallel arrays in
the style of the relational XPath accelerator:

======== ==================================================================
column   meaning (index = preorder/Euler first-visit rank)
======== ==================================================================
kind     small int kind id (``ALL``/``ANY``/``OPT``/``MULTI``/``EMPTY``)
head     head-symbol id: ``(kind, label, value)`` interned process-wide
         in :data:`repro.sqlast.symbols.SYMBOLS`
gkey     interned graft-alignment key (``-1`` = no stable key)
nkids    number of children
size     subtree size — the subtree of ``i`` is the range ``[i, i+size[i])``
parent   preorder index of the parent (``-1`` at the root)
level    depth from the root
absent   1 if the slot can consume zero AST children (``_can_be_absent``)
fp       process-local structural fingerprint (``node._hash``)
nodes    the interned node objects, for O(1) materialization
======== ==================================================================

The postorder rank needs no storage: along the Euler walk every node is
left *and* entered exactly once, giving the identity
``post[i] = pre[i] - level[i] + size[i] - 1``.

On top of the encoding, the hot kernels become array programs:

* subtree containment/equality are ``(pre, size)`` range checks and
  fingerprint-column comparisons (:meth:`ColumnarTree.contains`,
  :meth:`ColumnarTree.occurrences_of`);
* :func:`au_nodes` / :func:`graft_nodes` drive anti-unify and graft
  pair-matching off the ``head``/``gkey``/``fp`` columns, materializing
  objects only at merge points — and build *bit-identical* trees to the
  object-walk kernels in :mod:`repro.difftree.antiunify`, which stay as
  the parity oracles behind ``memo.columnar()``;
* :meth:`ColumnarTree.canonical_keys` hashes the whole tree bottom-up in
  one reverse-preorder pass (no per-node recursion), byte-identical to
  ``DTNode.canonical_key``;
* :class:`Topology` gives the cost kernel binary-lifting LCA / Steiner
  queries over the columnar ``parent`` array.

:meth:`ColumnarTree.extend` appends new subtrees under the root without
re-encoding the carried prefix (mirroring ``CompiledSequence.extend``),
and :meth:`ColumnarTree.to_payload` / :meth:`ColumnarTree.from_payload`
round-trip the encoding through JSON-native data — the designated wire
format for the future multi-process serving tier (symbol ids are
process-local, so payloads ship resolved symbols and re-intern on load).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .. import memo as _memo
from ..memo import INGEST
from ..obs import REGISTRY as _OBS_REGISTRY
from ..obs import trace
from ..sqlast import nodes as N
from ..sqlast.align import STRUCTURAL_VALUE_LABELS
from ..sqlast.symbols import SYMBOLS
from . import dtnodes
from .dtnodes import (
    ALL,
    ANY,
    EMPTY,
    MULTI,
    OPT,
    DTNode,
    any_merge,
    multi_node,
    opt_node,
)

__all__ = [
    "ColumnarTree",
    "Topology",
    "au_nodes",
    "graft_nodes",
    "fill_canonical_keys",
    "canonical_key_reference",
    "STATS",
]

#: Dense kind ids for the ``kind`` column (stable: part of the payload
#: wire format, do not renumber).
K_ALL, K_ANY, K_OPT, K_MULTI, K_EMPTY = range(5)

_KIND_ID = {ALL: K_ALL, ANY: K_ANY, OPT: K_OPT, MULTI: K_MULTI, EMPTY: K_EMPTY}
_KIND_NAME = {v: k for k, v in _KIND_ID.items()}

#: Node union the store encodes: difftrees, or raw ASTs (pure-``ALL``).
TreeNode = Union[DTNode, N.Node]


class ColumnarStats:
    """Process-wide columnar instrumentation (see :data:`STATS`).

    Plain unlocked ints like :class:`~repro.memo.IngestCounters`:
    approximate under concurrency, absorbed into the observability
    registry as ``difftree.columnar.<field>`` at snapshot time.
    """

    __slots__ = (
        "encodes",
        "encode_nodes",
        "extends",
        "extend_nodes",
        "au_calls",
        "graft_calls",
        "key_batches",
        "keys_filled",
        "topologies",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Uniform snapshot for the observability registry."""
        return {name: getattr(self, name) for name in self.__slots__}


#: The process-wide columnar counters (``difftree.columnar.*`` metrics).
STATS = ColumnarStats()

_OBS_REGISTRY.register_source("difftree.columnar", STATS.snapshot)

#: ``root node -> ColumnarTree`` so repeated kernel calls on the same
#: interned tree (every graft consults the evolving session tree) reuse
#: one encoding.  Registered with ``clear_memo_caches`` and the registry
#: like every other memo table.
_ENCODE_MEMO = _memo.memo_table(512, name="difftree.columnar.encode")


class ColumnarTree:
    """One interned tree, encoded as parallel columns (see module doc).

    Instances are immutable snapshots: :meth:`extend` returns a new
    tree sharing no mutable state with the receiver.  Columns are plain
    Python lists — the hot kernels do scalar index arithmetic, where
    list indexing beats NumPy scalar indexing — with NumPy views
    materialized lazily by :meth:`arrays` for vectorized queries.
    """

    __slots__ = (
        "kind",
        "head",
        "gkey",
        "nkids",
        "size",
        "parent",
        "level",
        "absent",
        "fp",
        "nodes",
        "is_ast",
        "_np",
        "__weakref__",
    )

    def __init__(self) -> None:
        # Built by the classmethod constructors; not for direct use.
        self.kind: List[int] = []
        self.head: List[int] = []
        self.gkey: List[int] = []
        self.nkids: List[int] = []
        self.size: List[int] = []
        self.parent: List[int] = []
        self.level: List[int] = []
        self.absent: List[int] = []
        self.fp: List[int] = []
        self.nodes: List[TreeNode] = []
        self.is_ast = False
        self._np: Optional[Dict[str, Any]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_node(cls, root: TreeNode) -> "ColumnarTree":
        """Encode ``root`` (memoized on the interned root object)."""
        cached = _ENCODE_MEMO.get(root)
        if cached is not None:
            return cached
        tree = cls._encode(root)
        _ENCODE_MEMO[root] = tree
        return tree

    @classmethod
    def _encode(cls, root: TreeNode) -> "ColumnarTree":
        with trace("difftree.columnar.encode", nodes=root.size):
            self = cls()
            is_ast = isinstance(root, N.Node)
            self.is_ast = is_ast
            n = root.size
            kind = self.kind = [0] * n
            head = self.head = [0] * n
            nkids = self.nkids = [0] * n
            size = self.size = [0] * n
            parent = self.parent = [0] * n
            level = self.level = [0] * n
            fp = self.fp = [0] * n
            nodes = self.nodes = [root] * n
            id_of = SYMBOLS.id_of
            # Preorder walk assigning ranks; parent/level ride along.
            index = 0
            stack: List[Tuple[TreeNode, int]] = [(root, -1)]
            while stack:
                node, parent_index = stack.pop()
                i = index
                index += 1
                nodes[i] = node
                parent[i] = parent_index
                level[i] = 0 if parent_index < 0 else level[parent_index] + 1
                size[i] = node._size
                fp[i] = node._hash
                children = node.children
                nkids[i] = len(children)
                if is_ast:
                    kind[i] = K_ALL
                    head[i] = id_of((ALL, node.label, node.value))
                else:
                    kind[i] = _KIND_ID[node.kind]
                    head[i] = id_of((node.kind, node.label, node.value))
                stack.extend((child, i) for child in reversed(children))
            self._fill_derived(0)
            STATS.encodes += 1
            STATS.encode_nodes += n
            return self

    def _fill_derived(self, start: int) -> None:
        """(Re)compute ``gkey``/``absent`` bottom-up from ``start`` on.

        Both columns are synthesized attributes of the subtree below a
        node, so a single reverse-preorder sweep (children precede their
        parent in reverse preorder) fills them.
        """
        n = len(self.kind)
        kind = self.kind
        nodes = self.nodes
        size = self.size
        gkey = self.gkey
        absent = self.absent
        if len(gkey) < n:
            gkey.extend([0] * (n - len(gkey)))
            absent.extend([0] * (n - len(absent)))
        id_of = SYMBOLS.id_of
        for i in range(n - 1, start - 1, -1):
            k = kind[i]
            if k == K_ALL:
                node = nodes[i]
                label = node.label
                if label in STRUCTURAL_VALUE_LABELS:
                    gkey[i] = id_of((label, node.value))
                else:
                    gkey[i] = id_of((label, None))
                absent[i] = 0
            elif k == K_OPT or k == K_MULTI:
                gkey[i] = gkey[i + 1]
                absent[i] = 1
            elif k == K_ANY:
                keys = set()
                can_be_absent = 0
                end = i + size[i]
                j = i + 1
                while j < end:
                    if kind[j] != K_EMPTY:
                        keys.add(gkey[j])
                    can_be_absent |= absent[j]
                    j += size[j]
                gkey[i] = keys.pop() if len(keys) == 1 else -1
                absent[i] = can_be_absent
            else:  # EMPTY
                gkey[i] = -1
                absent[i] = 1

    def extend(self, subtrees: Sequence[TreeNode]) -> "ColumnarTree":
        """A new tree with ``subtrees`` appended under the root.

        Mirrors ``CompiledSequence.extend``: the carried prefix is
        copied column-wise (no re-walk of the old object graph) and only
        the appended subtrees are encoded — O(appended), not O(total).
        The root row is patched (size/nkids/fingerprint/gkey/absent);
        every other prefix row is unchanged because preorder ranks,
        parents, and levels of existing nodes are append-stable.
        """
        if not subtrees:
            return self
        root = self.nodes[0]
        if self.kind[0] not in (K_ALL, K_ANY):
            raise ValueError(f"cannot extend a {_KIND_NAME[self.kind[0]]} root")
        with trace("difftree.columnar.extend", appended=len(subtrees)):
            if self.is_ast:
                new_root: TreeNode = N.Node(
                    root.label, root.value, root.children + tuple(subtrees)
                )
            else:
                new_root = DTNode(
                    root.kind, root.label, root.value, root.children + tuple(subtrees)
                )
            out = ColumnarTree()
            out.is_ast = self.is_ast
            out.kind = self.kind.copy()
            out.head = self.head.copy()
            out.gkey = self.gkey.copy()
            out.nkids = self.nkids.copy()
            out.size = self.size.copy()
            out.parent = self.parent.copy()
            out.level = self.level.copy()
            out.absent = self.absent.copy()
            out.fp = self.fp.copy()
            out.nodes = self.nodes.copy()
            added = 0
            for subtree in subtrees:
                sub = ColumnarTree.from_node(subtree)
                offset = len(out.kind)
                out.kind.extend(sub.kind)
                out.head.extend(sub.head)
                out.gkey.extend(sub.gkey)
                out.nkids.extend(sub.nkids)
                out.size.extend(sub.size)
                out.absent.extend(sub.absent)
                out.fp.extend(sub.fp)
                out.nodes.extend(sub.nodes)
                out.parent.extend(
                    0 if p < 0 else p + offset for p in sub.parent
                )
                out.level.extend(d + 1 for d in sub.level)
                added += sub.n
            out.size[0] += added
            out.nkids[0] += len(subtrees)
            out.fp[0] = new_root._hash
            out.nodes[0] = new_root
            # Only the root's synthesized columns can change: the new
            # children alter its ANY key-consensus / absorbability.
            out._fill_derived_root()
            STATS.extends += 1
            STATS.extend_nodes += added
            _ENCODE_MEMO[new_root] = out
            return out

    def _fill_derived_root(self) -> None:
        kind = self.kind
        if kind[0] != K_ANY:
            return  # ALL root: gkey/absent don't depend on children.
        keys = set()
        can_be_absent = 0
        end = self.size[0]
        j = 1
        while j < end:
            if kind[j] != K_EMPTY:
                keys.add(self.gkey[j])
            can_be_absent |= self.absent[j]
            j += self.size[j]
        self.gkey[0] = keys.pop() if len(keys) == 1 else -1
        self.absent[0] = can_be_absent

    # -- basic structure -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of encoded nodes."""
        return len(self.kind)

    @property
    def root(self) -> TreeNode:
        return self.nodes[0]

    def to_node(self) -> TreeNode:
        """The interned root object (O(1): the encoding keeps it)."""
        return self.nodes[0]

    def post(self, i: int) -> int:
        """Postorder rank, derived: ``pre - level + size - 1``."""
        return i - self.level[i] + self.size[i] - 1

    def children_of(self, i: int) -> Iterator[int]:
        """Preorder indexes of the children of ``i`` (sibling hops)."""
        end = i + self.size[i]
        j = i + 1
        while j < end:
            yield j
            j += self.size[j]

    def contains(self, i: int, j: int) -> bool:
        """Is ``j`` inside the subtree of ``i`` (``(pre, size)`` range check)?"""
        return i <= j < i + self.size[i]

    def subtree_equal(self, i: int, other: "ColumnarTree", j: int) -> bool:
        """Structural equality of two subtrees — one fingerprint compare
        plus an interning identity check (no walk)."""
        return self.fp[i] == other.fp[j] and self.nodes[i] is other.nodes[j]

    # -- vectorized queries ----------------------------------------------------

    def arrays(self) -> Dict[str, Any]:
        """Lazy NumPy views of the columns (plus the derived ``post``)."""
        if self._np is None:
            import numpy as np

            cols = {
                name: np.asarray(getattr(self, name), dtype=np.int64)
                for name in (
                    "kind",
                    "head",
                    "gkey",
                    "nkids",
                    "size",
                    "parent",
                    "level",
                    "absent",
                )
            }
            # Fingerprints use the full 64-bit space; object() identity
            # hashes can exceed int64 — keep them unsigned-safe.
            cols["fp"] = np.asarray(
                [f & 0xFFFFFFFFFFFFFFFF for f in self.fp], dtype=np.uint64
            )
            cols["post"] = (
                np.arange(len(self.kind), dtype=np.int64)
                - cols["level"]
                + cols["size"]
                - 1
            )
            self._np = cols
        return self._np

    def occurrences_of(self, node: TreeNode) -> List[int]:
        """Preorder indexes where ``node`` occurs as a subtree.

        Fingerprint-column scan first (vectorized), then an identity
        filter — interning makes the identity check exact.
        """
        import numpy as np

        fps = self.arrays()["fp"]
        hits = np.nonzero(fps == np.uint64(node._hash & 0xFFFFFFFFFFFFFFFF))[0]
        nodes = self.nodes
        return [int(i) for i in hits if nodes[i] is node]

    # -- canonical keys --------------------------------------------------------

    def canonical_keys(self, use_cache: bool = True) -> List[str]:
        """All canonical keys in one bottom-up pass over the columns.

        Byte-identical to ``DTNode.canonical_key`` (same digest text),
        but iterative: children are at higher preorder ranks, so a
        reverse-preorder sweep has every child key ready when its parent
        hashes.  Repeated subtrees hash once (identity dedup within the
        pass; the interned ``_key`` slot across passes).

        Args:
            use_cache: consult and fill the per-node ``_key`` slots
                (difftree mode only).  ``False`` recomputes everything —
                the benchmark's fairness mode.
        """
        n = len(self.kind)
        nodes = self.nodes
        size = self.size
        is_ast = self.is_ast
        keys: List[str] = [""] * n
        seen: Dict[int, str] = {}
        md5 = hashlib.md5
        for i in range(n - 1, -1, -1):
            node = nodes[i]
            key = node._key if (use_cache and not is_ast) else None
            if key is None:
                key = seen.get(id(node))
            if key is None:
                end = i + size[i]
                j = i + 1
                parts: List[str] = []
                while j < end:
                    parts.append(keys[j])
                    j += size[j]
                text = "{}:{}:{!r}({})".format(
                    ALL if is_ast else node.kind,
                    node.label or "",
                    node.value,
                    ",".join(parts),
                )
                key = md5(text.encode("utf-8")).hexdigest()
                seen[id(node)] = key
                if use_cache and not is_ast:
                    object.__setattr__(node, "_key", key)
            keys[i] = key
        return keys

    # -- wire format -----------------------------------------------------------

    def to_payload(self, root: int = 0) -> Dict[str, Any]:
        """JSON-native encoding of the tree (the snapshot wire format).

        Symbol ids are process-local, so the payload ships the resolved
        head symbols in a local dictionary; :meth:`from_payload`
        re-interns them through the process-wide :data:`SYMBOLS` table.
        Derived columns (gkey/fp/post) and the node objects are
        reconstructed on load, not shipped; the ``absent`` column *is*
        shipped (version 2) so the receiver can cross-check its
        re-derivation — a cheap integrity gate against truncated or
        hand-edited payloads.

        Args:
            root: preorder index to encode from — a non-zero value ships
                only that subtree (*partial state*: e.g. one alternative
                of a session's difftree), rebased to its own preorder.
        """
        if not 0 <= root < self.n:
            raise ValueError(f"root index {root} outside [0, {self.n})")
        end = root + self.size[root]
        local: Dict[int, int] = {}
        heads: List[List[Any]] = []
        head_local: List[int] = []
        for sid in self.head[root:end]:
            li = local.get(sid)
            if li is None:
                li = len(heads)
                local[sid] = li
                heads.append(list(SYMBOLS.symbol_of(sid)))
            head_local.append(li)
        return {
            "version": 2,
            "ast": self.is_ast,
            "n": end - root,
            "heads": heads,
            "head": head_local,
            "parent": [
                -1 if i == root else p - root for i, p in
                zip(range(root, end), self.parent[root:end])
            ],
            "absent": list(self.absent[root:end]),
        }

    @classmethod
    def payload_of(cls, node: Optional[TreeNode]) -> Dict[str, Any]:
        """Payload of an *optional* tree (``None`` = absent state).

        Session snapshots carry slots that may legitimately be empty (a
        session that has never searched has no best tree); the absent
        marker keeps "no state" distinguishable from a corrupt payload.
        """
        if node is None:
            return {"version": 2, "absent_state": True}
        return cls.from_node(node).to_payload()

    @classmethod
    def node_of(cls, payload: Optional[Dict[str, Any]]) -> Optional[TreeNode]:
        """Inverse of :meth:`payload_of` (``None`` / absent marker => None)."""
        if payload is None or payload.get("absent_state"):
            return None
        return cls.from_payload(payload).to_node()

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ColumnarTree":
        """Rebuild (and re-intern) a tree from :meth:`to_payload` output.

        Every head triple is re-interned through the process-wide
        :data:`repro.sqlast.symbols.SYMBOLS` table (values normalized
        from their JSON round-trip first), so trees decoded from
        payloads share head ids — and, via hash-consing, node identity —
        with trees built natively in this process, no matter how many
        payloads from how many senders were decoded before.
        """
        version = payload.get("version")
        if version not in (1, 2):
            raise ValueError(f"unsupported payload version {version!r}")
        n = payload["n"]
        parent = payload["parent"]
        head = payload["head"]
        if n == 0 or len(parent) != n or len(head) != n:
            raise ValueError("malformed payload: inconsistent column lengths")
        heads: List[Tuple[Any, ...]] = []
        for raw in payload["heads"]:
            kind, label, value = (_json_value(part) for part in raw)
            # Re-intern on receive: the canonical (identity-stable) head
            # tuple is the one the process-wide table hands back.
            heads.append(SYMBOLS.symbol_of(SYMBOLS.id_of((kind, label, value))))
        kids: List[List[int]] = [[] for _ in range(n)]
        for i in range(1, n):
            if not 0 <= parent[i] < i:
                raise ValueError("malformed payload: parent array not preorder")
            kids[parent[i]].append(i)
        is_ast = payload["ast"]
        built: List[Optional[TreeNode]] = [None] * n
        for i in range(n - 1, -1, -1):
            kind, label, value = heads[head[i]]
            children = tuple(built[j] for j in kids[i])
            if is_ast:
                built[i] = N.Node(label, value, children)
            else:
                built[i] = DTNode(kind, label, value, children)
        tree = cls.from_node(built[0])
        shipped_absent = payload.get("absent")
        if version >= 2 and shipped_absent is not None:
            if list(shipped_absent) != tree.absent:
                raise ValueError(
                    "corrupt payload: shipped absent column disagrees with "
                    "the re-derived one"
                )
        return tree


def _json_value(value: Any) -> Any:
    """Normalize a JSON-round-tripped head component (lists -> tuples)."""
    if isinstance(value, list):
        return tuple(_json_value(part) for part in value)
    return value


# -- structural kernels ----------------------------------------------------------


def au_nodes(a: DTNode, b: DTNode, memo: Optional[Any] = None) -> DTNode:
    """Columnar anti-unification of two difftrees (unnormalized).

    Pair-matching is driven by the ``head`` column (one int compare
    decides the aligned-ALL case) over the two encodings; DTNodes are
    materialized only at merge points.  Builds the *same* intermediate
    trees as ``antiunify._au_impl`` — interning then makes the results
    identical objects, so callers' ``normalize`` seals bit-for-bit
    parity with the object-walk oracle.

    Args:
        memo: optional subproblem memo table (the caller's ``_AU_MEMO``),
            consulted per interned pair like the object-walk recursion.
    """
    STATS.au_calls += 1
    ca = ColumnarTree.from_node(a)
    cb = ColumnarTree.from_node(b)
    return _au_cols(ca, 0, cb, 0, memo)


def _au_cols(
    ca: ColumnarTree, ia: int, cb: ColumnarTree, ib: int, memo: Optional[Any]
) -> DTNode:
    if ca.subtree_equal(ia, cb, ib):
        return ca.nodes[ia]
    a = ca.nodes[ia]
    b = cb.nodes[ib]
    if memo is not None:
        cached = memo.get((a, b))
        if cached is not None:
            INGEST.au_memo_hits += 1
            return cached
    nkids = ca.nkids[ia]
    if ca.kind[ia] == K_ALL and ca.head[ia] == cb.head[ib] and nkids == cb.nkids[ib]:
        # Equal head symbols imply equal (kind, label, value), so b is
        # also ALL with the same head: recurse column-aligned children.
        children: List[DTNode] = []
        ja = ia + 1
        jb = ib + 1
        for _ in range(nkids):
            children.append(_au_cols(ca, ja, cb, jb, memo))
            ja += ca.size[ja]
            jb += cb.size[jb]
        result = DTNode(ALL, a.label, a.value, tuple(children))
    else:
        result = any_merge((a, b))
    if memo is not None:
        memo[(a, b)] = result
    return result


def graft_nodes(tree: DTNode, query: DTNode) -> DTNode:
    """Columnar graft of one query into ``tree`` (unnormalized).

    Child alignment reads the precomputed ``gkey`` column (interned
    graft keys, ``-1`` = unstable) instead of recomputing ``_graft_key``
    per visit, and the best-alternative scan over an ``ANY`` domain is
    int compares over array slices.  Merge-point construction mirrors
    ``antiunify._graft`` exactly (see :func:`au_nodes` on parity).
    """
    STATS.graft_calls += 1
    ct = ColumnarTree.from_node(tree)
    cq = ColumnarTree.from_node(query)
    return _graft_cols(ct, 0, cq, 0)


def _graft_cols(ct: ColumnarTree, it: int, cq: ColumnarTree, iq: int) -> DTNode:
    if ct.subtree_equal(it, cq, iq):
        return ct.nodes[it]
    t = ct.nodes[it]
    q = cq.nodes[iq]
    k = ct.kind[it]
    if k == K_EMPTY:
        return any_merge((t, q))
    if k == K_OPT:
        return opt_node(_graft_cols(ct, it + 1, cq, iq))
    if k == K_MULTI:
        template_key = ct.gkey[it + 1]
        if template_key != -1 and template_key == cq.gkey[iq]:
            return multi_node(_graft_cols(ct, it + 1, cq, iq))
        return any_merge((t, q))
    if k == K_ANY:
        return _graft_into_any_cols(ct, it, cq, iq)
    # t is ALL.
    if ct.head[it] != cq.head[iq]:
        # Covers q not being ALL too: head ids encode the kind.
        return any_merge((t, q))
    columns = _align_cols(ct, it, cq, iq)
    if columns is not None:
        children: List[DTNode] = []
        for tj, qj in columns:
            if tj is None:
                children.append(opt_node(cq.nodes[qj]))
            elif qj is None:
                t_child = ct.nodes[tj]
                children.append(t_child if ct.absent[tj] else opt_node(t_child))
            else:
                children.append(_graft_cols(ct, tj, cq, qj))
        return DTNode(ALL, t.label, t.value, tuple(children))
    nkids = ct.nkids[it]
    if nkids == cq.nkids[iq]:
        children = []
        jt = it + 1
        jq = iq + 1
        for _ in range(nkids):
            children.append(_graft_cols(ct, jt, cq, jq))
            jt += ct.size[jt]
            jq += cq.size[jq]
        return DTNode(ALL, t.label, t.value, tuple(children))
    return any_merge((t, q))


def _graft_into_any_cols(
    ct: ColumnarTree, it: int, cq: ColumnarTree, iq: int
) -> DTNode:
    """Extend the best-aligned alternative; append ``q`` if none aligns."""
    q_key = cq.gkey[iq]
    best: Optional[DTNode] = None
    best_index = -1
    best_growth = 0
    if q_key != -1:
        gkey = ct.gkey
        size = ct.size
        end = it + size[it]
        j = it + 1
        index = 0
        while j < end:
            if gkey[j] == q_key:
                candidate = _graft_cols(ct, j, cq, iq)
                # Minimize *growth*, not candidate size (see the oracle).
                growth = candidate.size - size[j]
                if best is None or growth < best_growth:
                    best = candidate
                    best_index = index
                    best_growth = growth
            j += size[j]
            index += 1
    t = ct.nodes[it]
    if best is None:
        return any_merge(t.children + (cq.nodes[iq],))
    children = t.children[:best_index] + (best,) + t.children[best_index + 1 :]
    return any_merge(children)


def _align_cols(
    ct: ColumnarTree, it: int, cq: ColumnarTree, iq: int
) -> Optional[List[Tuple[Optional[int], Optional[int]]]]:
    """Order-preserving column alignment by interned graft key.

    The columnar twin of ``antiunify._align_graft_columns``: keys are
    ints read straight from the ``gkey`` column, and the result pairs
    preorder indexes (``None`` = row lacks the column).
    """
    t_children = list(ct.children_of(it))
    q_children = list(cq.children_of(iq))
    t_keys = [ct.gkey[j] for j in t_children]
    q_keys = [cq.gkey[j] for j in q_children]
    if -1 in t_keys or -1 in q_keys:
        return None
    if len(set(t_keys)) != len(t_keys) or len(set(q_keys)) != len(q_keys):
        return None
    order: List[int] = []
    for keys in (t_keys, q_keys):
        position = 0
        for key in keys:
            if key in order:
                existing = order.index(key)
                if existing < position:
                    return None
                position = existing + 1
            else:
                order.insert(position, key)
                position += 1
    t_by_key = dict(zip(t_keys, t_children))
    q_by_key = dict(zip(q_keys, q_children))
    return [(t_by_key.get(key), q_by_key.get(key)) for key in order]


# -- canonical-key batch fill -----------------------------------------------------


def fill_canonical_keys(root: DTNode) -> str:
    """Batch-fill ``_key`` on every node under ``root``; return the root key.

    Installed as ``dtnodes._BATCH_KEYS``: the ``canonical_key`` property
    routes cold trees here (columnar gate on, subtree large, children
    unkeyed), replacing per-node recursion with one encode + one
    reverse-preorder hashing sweep.
    """
    with trace("difftree.columnar.keys", nodes=root._size):
        tree = ColumnarTree.from_node(root)
        keys = tree.canonical_keys(use_cache=True)
        STATS.key_batches += 1
        STATS.keys_filled += tree.n
        return keys[0]


def canonical_key_reference(node: TreeNode) -> str:
    """Cache-free recursive canonical key (parity oracle for tests/benches)."""
    is_ast = isinstance(node, N.Node)
    text = "{}:{}:{!r}({})".format(
        ALL if is_ast else node.kind,
        node.label or "",
        node.value,
        ",".join(canonical_key_reference(c) for c in node.children),
    )
    return hashlib.md5(text.encode("utf-8")).hexdigest()


dtnodes._BATCH_KEYS = fill_canonical_keys


# -- topology queries (cost kernel) -----------------------------------------------


class Topology:
    """Binary-lifting LCA / distance / Steiner queries over a parent array.

    Consumes any preorder (Euler first-visit) ``parent`` column — the
    cost kernel's flattened decision schema or a :class:`ColumnarTree` —
    and answers the queries its Steiner precompute needs without walking
    parent chains: O(log n) per LCA after O(n log n) setup.  Results are
    int-exact matches of the naive parent-chain walk.
    """

    __slots__ = ("parent", "depth", "_up")

    def __init__(self, parent: Sequence[int]) -> None:
        self.parent = list(parent)
        n = len(self.parent)
        depth = [0] * n
        for i, p in enumerate(self.parent):
            if p >= i:
                raise ValueError("parent array must be in preorder (parent < child)")
            depth[i] = 0 if p < 0 else depth[p] + 1
        self.depth = depth
        # up[k][i] = 2^k-th ancestor (roots self-loop, saturating lifts).
        up0 = [p if p >= 0 else i for i, p in enumerate(self.parent)]
        up = [up0]
        max_depth = max(depth, default=0)
        for _ in range(1, max(1, max_depth.bit_length())):
            prev = up[-1]
            up.append([prev[prev[i]] for i in range(n)])
        self._up = up
        STATS.topologies += 1

    @property
    def n(self) -> int:
        return len(self.parent)

    def ancestor(self, i: int, k: int) -> int:
        """The ``k``-th ancestor of ``i`` (saturates at the root)."""
        bit = 0
        up = self._up
        while k and bit < len(up):
            if k & 1:
                i = up[bit][i]
            k >>= 1
            bit += 1
        return i

    def lca(self, a: int, b: int) -> int:
        depth = self.depth
        up = self._up
        if depth[a] < depth[b]:
            a, b = b, a
        a = self.ancestor(a, depth[a] - depth[b])
        if a == b:
            return a
        for k in range(len(up) - 1, -1, -1):
            lift = up[k]
            if lift[a] != lift[b]:
                a = lift[a]
                b = lift[b]
        return up[0][a]

    def distance(self, a: int, b: int) -> int:
        """Number of edges on the ``a``–``b`` path."""
        return self.depth[a] + self.depth[b] - 2 * self.depth[self.lca(a, b)]

    def steiner_size(self, touched: Sequence[int]) -> int:
        """Number of nodes in the minimal subtree connecting ``touched``.

        Virtual-tree identity: in index order (preorder = Euler
        first-visit order), the cycle of pairwise path lengths covers
        every Steiner edge exactly twice — ``edges = cycle // 2``.
        """
        count = len(touched)
        if count == 0:
            return 0
        if count == 1:
            return 1
        order = sorted(touched)
        total = 0
        previous = order[-1]
        for node in order:
            total += self.distance(previous, node)
            previous = node
        return total // 2 + 1
