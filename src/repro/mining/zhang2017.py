"""Reimplementation of the bottom-up interface miner of Zhang, Sellam &
Wu, "Mining Precision Interfaces from Query Logs" (SIGMOD 2017) — the
prior work the paper improves on.

The bottom-up approach, as characterized by the paper:

1. enumerate subtree differences between pairs of query ASTs,
2. group differences occurring at the *same AST path*,
3. map each group to the widget that best expresses its subtree set
   (appropriateness ``M`` only).

It does **not** search over groupings, does not consider layout or screen
constraints (widgets are simply stacked), and ignores the sequential
order of the log — precisely the three limitations motivating the MCTS
approach.  We keep those limitations faithfully: the result can be
evaluated under the full cost model for comparison, and on logs with
correlated changes it may not even express every input query (each widget
varies independently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cost import CostModel, EvaluatedInterface
from ..difftree import (
    DTNode,
    EMPTY_NODE,
    any_node,
    expresses,
    normalize,
    wrap_ast,
)
from ..sqlast import Node, diff_paths
from ..widgets import GreedyChooser, derive_widget_tree
from ..widgets.tree import WidgetNode


@dataclass
class MiningResult:
    """Output of the bottom-up miner.

    Attributes:
        tree: difftree assembled from the path-grouped differences.
        widget_tree: greedily chosen widgets, stacked vertically.
        expressible_fraction: share of input queries the interface can
            express (the bottom-up approach does not guarantee 1.0).
        evaluation: cost under the full model (None until evaluated).
    """

    tree: DTNode
    widget_tree: WidgetNode
    expressible_fraction: float
    evaluation: Optional[EvaluatedInterface] = None


def mine_interface(queries: Sequence[Node]) -> MiningResult:
    """Run the bottom-up pipeline on a query log."""
    if not queries:
        raise ValueError("need at least one query")
    base = queries[0]
    replacements: Dict[Tuple[int, ...], List[Optional[Node]]] = {}
    insertions: Dict[Tuple[int, ...], List[Optional[Node]]] = {}

    for other in queries[1:]:
        for path, base_sub, other_sub in diff_paths(base, other):
            if base_sub is None:
                # ``other`` has a subtree that ``base`` lacks: an optional
                # insertion grouped under the insertion position.
                bucket = insertions.setdefault(path, [None])
            else:
                bucket = replacements.setdefault(path, [base_sub])
            if not any(_same(existing, other_sub) for existing in bucket):
                bucket.append(other_sub)

    tree = normalize(_assemble(base, (), replacements, insertions))
    widget_tree = derive_widget_tree(tree, GreedyChooser())
    expressible = sum(1 for q in queries if expresses(tree, q)) / len(queries)
    return MiningResult(
        tree=tree,
        widget_tree=widget_tree,
        expressible_fraction=expressible,
    )


def evaluate_mined(model: CostModel, result: MiningResult) -> MiningResult:
    """Score a mined interface under the full cost model (for comparison)."""
    breakdown = model.evaluate(result.tree, result.widget_tree)
    result.evaluation = EvaluatedInterface(
        result.tree, result.widget_tree, breakdown
    )
    return result


def _same(a: Optional[Node], b: Optional[Node]) -> bool:
    if a is None or b is None:
        return a is b
    return a == b


def _assemble(
    node: Node,
    path: Tuple[int, ...],
    replacements: Dict[Tuple[int, ...], List[Optional[Node]]],
    insertions: Dict[Tuple[int, ...], List[Optional[Node]]],
) -> DTNode:
    """Rebuild the base AST as a difftree with ANY groups at diff paths."""
    group = replacements.get(path)
    if group is not None:
        alternatives = [
            EMPTY_NODE if sub is None else wrap_ast(sub) for sub in group
        ]
        return any_node(alternatives)
    children: List[DTNode] = []
    for index, child in enumerate(node.children):
        child_path = path + (index,)
        inserted = insertions.get(child_path)
        if inserted is not None:
            children.append(_insertion_group(inserted))
        children.append(_assemble(child, child_path, replacements, insertions))
    # Insertions at or beyond the end of the child list.
    for insert_path, group in insertions.items():
        if (
            len(insert_path) == len(path) + 1
            and insert_path[: len(path)] == path
            and insert_path[-1] >= len(node.children)
        ):
            children.append(_insertion_group(group))
    return DTNode("ALL", node.label, node.value, children)


def _insertion_group(group: List[Optional[Node]]) -> DTNode:
    alternatives = [EMPTY_NODE if sub is None else wrap_ast(sub) for sub in group]
    return any_node(alternatives)
