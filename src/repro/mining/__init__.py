"""Bottom-up mining baseline (Zhang, Sellam & Wu 2017)."""

from .zhang2017 import MiningResult, evaluate_mined, mine_interface

__all__ = ["MiningResult", "mine_interface", "evaluate_mined"]
