"""Choice co-occurrence statistics (the paper's "Ongoing Work").

The paper notes that "some combinations of widget choices may not make
semantic sense" and proposes to "leverage co-occurrence of subtrees in
the query log to identify likely and unlikely combinations of widget
choices".  This module implements that extension:

* fit a pairwise co-occurrence model over the choice assignments of the
  input log under a difftree,
* score any assignment (= interface state) by the support of its choice
  pairs,
* flag *unlikely* states — combinations never witnessed in the log —
  which an interface can surface as a gentle warning, and which could
  prune widget-choice enumeration during search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..difftree import Assignment, DTNode, Path, assignment_for
from ..sqlast import Node


def _freeze(value: Any) -> Any:
    """Choice values are already hashable (ints/bools/tuples of frozensets)."""
    return value


@dataclass
class CooccurrenceModel:
    """Pairwise support statistics over choice assignments.

    Attributes:
        tree: the difftree the statistics are defined over.
        num_queries: size of the fitted log.
        singleton_counts: per-choice value counts.
        pair_counts: per-choice-pair joint value counts.
    """

    tree: DTNode
    num_queries: int
    singleton_counts: Dict[Tuple[Path, Any], int] = field(default_factory=dict)
    pair_counts: Dict[Tuple[Path, Any, Path, Any], int] = field(default_factory=dict)

    @classmethod
    def from_log(cls, tree: DTNode, queries: Sequence[Node]) -> "CooccurrenceModel":
        """Fit the model from the log's canonical choice assignments.

        Queries the tree cannot express are skipped (callers using rule
        outputs never hit this, but the mining baseline can).
        """
        model = cls(tree=tree, num_queries=0)
        for query in queries:
            assignment = assignment_for(tree, query)
            if assignment is None:
                continue
            model._observe(assignment)
        return model

    def _observe(self, assignment: Assignment) -> None:
        self.num_queries += 1
        items = sorted(assignment.items())
        for path, value in items:
            key = (path, _freeze(value))
            self.singleton_counts[key] = self.singleton_counts.get(key, 0) + 1
        for i, (path_a, value_a) in enumerate(items):
            for path_b, value_b in items[i + 1 :]:
                pair = (path_a, _freeze(value_a), path_b, _freeze(value_b))
                self.pair_counts[pair] = self.pair_counts.get(pair, 0) + 1

    # -- scoring -----------------------------------------------------------------

    def pair_support(self, path_a: Path, value_a: Any, path_b: Path, value_b: Any) -> int:
        """How many log queries used both choices together."""
        if (path_a, value_a) > (path_b, value_b):
            path_a, value_a, path_b, value_b = path_b, value_b, path_a, value_a
        return self.pair_counts.get((path_a, _freeze(value_a), path_b, _freeze(value_b)), 0)

    def assignment_support(self, assignment: Assignment) -> int:
        """Minimum pairwise support across the assignment's choice pairs.

        0 means at least one pair of choices was never observed together;
        such states are *unlikely* (though still expressible — the
        interface generalizes the log by design).
        """
        items = sorted(assignment.items())
        if len(items) < 2:
            key = items[0] if items else None
            if key is None:
                return self.num_queries
            return self.singleton_counts.get((key[0], _freeze(key[1])), 0)
        support = self.num_queries
        for i, (path_a, value_a) in enumerate(items):
            for path_b, value_b in items[i + 1 :]:
                support = min(
                    support, self.pair_support(path_a, value_a, path_b, value_b)
                )
                if support == 0:
                    return 0
        return support

    def is_likely(self, assignment: Assignment) -> bool:
        """True when every choice pair was witnessed at least once."""
        return self.assignment_support(assignment) > 0

    def unlikely_pairs(self, assignment: Assignment) -> List[Tuple[Path, Any, Path, Any]]:
        """The never-observed choice pairs of an assignment (for warnings)."""
        items = sorted(assignment.items())
        out = []
        for i, (path_a, value_a) in enumerate(items):
            for path_b, value_b in items[i + 1 :]:
                if self.pair_support(path_a, value_a, path_b, value_b) == 0:
                    out.append((path_a, value_a, path_b, value_b))
        return out

    def generalization_ratio(self, sample: Sequence[Assignment]) -> float:
        """Fraction of ``sample`` assignments that are likely under the log.

        Low values mean the difftree generalizes far beyond the observed
        session (many expressible-but-unwitnessed states).
        """
        if not sample:
            return 1.0
        likely = sum(1 for a in sample if self.is_likely(a))
        return likely / len(sample)
