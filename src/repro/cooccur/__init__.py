"""Co-occurrence statistics over choice assignments (paper: Ongoing Work)."""

from .stats import CooccurrenceModel

__all__ = ["CooccurrenceModel"]
