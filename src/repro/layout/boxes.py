"""Bounding-box layout solver and screen constraints.

Computes the rendered size of every widget-tree node bottom-up (the blue
bounding boxes of paper Figure 2), and checks the hard screen constraint:
"We consider a widget tree invalid (has infinite cost) if its size exceeds
the output screen's size."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..widgets.tree import WidgetNode

#: Inner padding of a layout box (px) and gap between siblings (px).
BOX_PADDING = 6.0
BOX_GAP = 8.0
#: Height of a tab header row / adder button row (px).
HEADER_HEIGHT = 30.0
#: Extra width per tab header label character (matches widget library).
TITLE_HEIGHT = 14.0


@dataclass(frozen=True)
class Screen:
    """Output screen size in abstract pixels."""

    width: float
    height: float

    @staticmethod
    def wide() -> "Screen":
        """The paper's wider-screen setting (Figure 6a)."""
        return Screen(1100.0, 700.0)

    @staticmethod
    def narrow() -> "Screen":
        """The paper's narrow-screen setting (Figure 6b): phone-like.

        Tight enough that stacks of enumerating widgets (radio/button
        lists) overflow and the search must fall back to compact widgets
        (dropdowns) — the Figure 6(a) vs 6(b) contrast.
        """
        return Screen(340.0, 560.0)


@dataclass(frozen=True)
class Box:
    width: float
    height: float

    def padded(self, dx: float, dy: float) -> "Box":
        return Box(self.width + dx, self.height + dy)


def measure(node: WidgetNode) -> Box:
    """Compute the bounding box of a widget-tree node (recursive)."""
    name = node.widget
    if name in ("vertical", "horizontal"):
        if not node.children:
            return Box(0.0, 0.0)
        child_boxes = [measure(c) for c in node.children]
        gaps = BOX_GAP * (len(child_boxes) - 1)
        if name == "vertical":
            width = max(b.width for b in child_boxes)
            height = sum(b.height for b in child_boxes) + gaps
        else:
            width = sum(b.width for b in child_boxes) + gaps
            height = max(b.height for b in child_boxes)
        box = Box(width, height).padded(2 * BOX_PADDING, 2 * BOX_PADDING)
        if node.title:
            box = Box(box.width, box.height + TITLE_HEIGHT)
        return box
    if name == "tabs":
        header = node.wtype.size(node.domain, node.size_class)
        if node.children:
            pages = [measure(c) for c in node.children]
            content_w = max(b.width for b in pages)
            content_h = max(b.height for b in pages)
        else:
            content_w = content_h = 0.0
        width = max(header[0], content_w)
        height = HEADER_HEIGHT + content_h
        return Box(width, height).padded(2 * BOX_PADDING, 2 * BOX_PADDING)
    if name == "adder":
        buttons = node.wtype.size(node.domain, node.size_class)
        if node.children:
            inner = [measure(c) for c in node.children]
            gaps = BOX_GAP * (len(inner) - 1)
            content_w = max(b.width for b in inner)
            content_h = sum(b.height for b in inner) + gaps
        else:
            content_w = content_h = 0.0
        width = max(buttons[0], content_w)
        height = buttons[1] + content_h + BOX_GAP
        return Box(width, height).padded(2 * BOX_PADDING, 2 * BOX_PADDING)
    # Plain interaction widget: the library size plus an optional caption.
    width, height = node.wtype.size(node.domain, node.size_class)
    if node.title:
        height += TITLE_HEIGHT
        width = max(width, 7.0 * len(node.title))
    return Box(width, height)


def measure_all(root: WidgetNode) -> Dict[int, Box]:
    """Bounding boxes of every node, keyed by ``id(node)``."""
    boxes: Dict[int, Box] = {}

    def rec(node: WidgetNode) -> Box:
        for child in node.children:
            rec(child)
        box = measure(node)
        boxes[id(node)] = box
        return box

    rec(root)
    return boxes


def fits(root: WidgetNode, screen: Screen) -> bool:
    """True when the rendered interface fits the screen."""
    box = measure(root)
    return box.width <= screen.width and box.height <= screen.height


def overflow(root: WidgetNode, screen: Screen) -> Tuple[float, float]:
    """How far (px) the interface exceeds the screen in each dimension."""
    box = measure(root)
    return (max(0.0, box.width - screen.width), max(0.0, box.height - screen.height))
