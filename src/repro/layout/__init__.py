"""Layout solving: bounding boxes and screen constraints."""

from .boxes import BOX_GAP, BOX_PADDING, Box, Screen, fits, measure, measure_all, overflow

__all__ = [
    "Box",
    "Screen",
    "measure",
    "measure_all",
    "fits",
    "overflow",
    "BOX_GAP",
    "BOX_PADDING",
]
