"""The process-wide metrics registry: counters, gauges, histograms, sources.

Two kinds of metrics live here:

* **Native metrics** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instances created (get-or-create) through the
  registry under stable dotted names (``span.engine.generate``,
  ``search.iterations``, ``cost.kernel.delta_evals``, …).  Histograms
  are bounded: a fixed-size reservoir of the most recent observations
  backs the p50/p95/p99 quantiles, while count/sum/min/max are exact
  over the full stream.

* **Sources** — callables that snapshot *existing* ad-hoc counters
  (``repro.memo.INGEST``, every named :class:`~repro.memo.BoundedLRU`,
  :class:`~repro.serve.cache.InterfaceCache`, the session router's
  ingest totals) into the same dotted namespace at read time.  This is
  how the registry absorbs the pre-existing instrumentation without
  touching its hot paths: the counters stay plain ints where they are,
  and the registry prefixes and merges them on ``snapshot()``.  Sources
  registered with ``weak=True`` hold only a weak reference to their
  owner, so registering every cache at construction cannot leak caches;
  dead sources are pruned on the next snapshot or registration.

All operations are thread-safe: the scheduler's workers observe spans
and bump counters concurrently, and the losslessness of those updates is
part of the test contract (``tests/test_obs.py``).
"""

from __future__ import annotations

import math
import re
import threading
import weakref
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Dotted lowercase metric names only — the stable-naming contract.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_#]+)*$")

#: Default histogram reservoir (most recent observations kept).
DEFAULT_RESERVOIR = 512

#: Quantiles reported by every histogram snapshot.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric names are dotted lowercase identifiers, got {name!r}"
        )
    return name


class Counter:
    """A monotone counter (lossless under concurrent increments)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded histogram: exact count/sum/min/max, reservoir quantiles.

    The reservoir keeps the ``reservoir_size`` most recent observations
    (a deque, so memory is bounded no matter how long the process
    serves); quantiles are computed over it by sorting at read time —
    reads are rare (scrapes/snapshots), writes are the hot path.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir", "_lock")

    def __init__(self, name: str, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        if reservoir_size < 1:
            raise ValueError("histogram reservoir must hold >= 1 observation")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: deque = deque(maxlen=reservoir_size)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._reservoir.append(value)

    def percentile(self, q: float) -> float:
        """The ``q`` quantile (0..1) over the reservoir (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            data = sorted(self._reservoir)
        if not data:
            return 0.0
        rank = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
        return data[rank]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            data = sorted(self._reservoir)
            count, total = self.count, self.total
            lo = self.min if count else 0.0
            hi = self.max if count else 0.0
        out = {"count": count, "sum": total, "min": lo, "max": hi}
        for label, q in QUANTILES:
            if not data:
                out[label] = 0.0
            else:
                rank = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
                out[label] = data[rank]
        return out


class MetricsRegistry:
    """Name → metric table plus the absorbed-counter sources.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create and
    type-checked: one dotted name is one metric for the whole process.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._sources: Dict[str, Callable[[], Optional[Dict[str, Any]]]] = {}
        self._lock = threading.Lock()

    # -- native metrics ------------------------------------------------------

    def _get_or_create(self, name: str, cls, *args):
        _check_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, reservoir_size: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        return self._get_or_create(name, Histogram, reservoir_size)

    def metrics(self) -> List[str]:
        """Registered native metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    # -- absorbed sources ----------------------------------------------------

    def register_source(
        self,
        name: str,
        fn: Callable[[], Dict[str, Any]],
        weak: bool = False,
    ) -> str:
        """Register a snapshot callable under the ``name`` prefix.

        With ``weak=True`` (for per-instance caches registered at
        construction), ``fn`` must be a bound method; only a weak
        reference to it is kept, so registration never extends the
        owner's lifetime.  If ``name`` is already taken by a *live*
        source, a ``#2``/``#3``… suffix disambiguates — several
        evaluator state caches can coexist — and the assigned name is
        returned.
        """
        _check_name(name)
        if weak:
            ref = weakref.WeakMethod(fn)

            def call() -> Optional[Dict[str, Any]]:
                target = ref()
                return None if target is None else target()

        else:
            def call() -> Optional[Dict[str, Any]]:
                return fn()

        with self._lock:
            self._prune_locked()
            assigned = name
            serial = 1
            while assigned in self._sources:
                serial += 1
                assigned = f"{name}#{serial}"
            self._sources[assigned] = call
            return assigned

    def _prune_locked(self) -> None:
        dead = [n for n, fn in self._sources.items() if fn() is None]
        for n in dead:
            del self._sources[n]

    def sources(self) -> List[str]:
        """Names of the live registered sources, sorted."""
        with self._lock:
            self._prune_locked()
            return sorted(self._sources)

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One flat dict of every metric and absorbed source value.

        Counters and gauges appear under their own names; a histogram
        ``h`` expands to ``h.count`` / ``h.sum`` / ``h.min`` / ``h.max``
        / ``h.p50`` / ``h.p95`` / ``h.p99``; a source ``s`` returning
        ``{"hits": 3}`` appears as ``s.hits``.
        """
        with self._lock:
            metrics = list(self._metrics.values())
            sources = list(self._sources.items())
        out: Dict[str, Any] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                for key, value in metric.snapshot().items():
                    out[f"{metric.name}.{key}"] = value
            else:
                out[metric.name] = metric.value
        for prefix, fn in sources:
            values = fn()
            if values is None:
                continue
            for key, value in values.items():
                out[f"{prefix}.{key}"] = value
        return out

    def prometheus_text(self) -> str:
        """The snapshot in Prometheus text exposition format.

        Dots (and ``#`` instance suffixes) become underscores; native
        counters get ``# TYPE ... counter``, everything else is exported
        as a gauge.  One scrapeable page — the pull-side complement of
        the push-side :class:`~repro.obs.sink.TelemetryLog`.
        """
        with self._lock:
            native = {name: metric for name, metric in self._metrics.items()}
        lines: List[str] = []
        for name, value in sorted(self.snapshot().items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            flat = name.replace(".", "_").replace("#", "_")
            kind = "counter" if isinstance(native.get(name), Counter) else "gauge"
            lines.append(f"# TYPE {flat} {kind}")
            lines.append(f"{flat} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every native metric (sources stay registered).

        Benchmark/test isolation: both modes of the overhead gate start
        from an empty registry.
        """
        with self._lock:
            self._metrics.clear()
            self._prune_locked()


#: The process-wide registry every layer records into.
REGISTRY = MetricsRegistry()
