"""Durable telemetry sinks: the JSONL log and the in-memory buffer.

A sink is anything with ``write(record: dict)``.  Two implementations:

* :class:`TelemetryLog` — appends one compact JSON object per line to a
  file.  This is the durable observation stream the ROADMAP's adaptive
  search controller will train on: every span and every delivered
  :class:`~repro.engine.GenerationReport` lands here in arrival order,
  and a ``report`` record's payload *is* ``report.to_dict()`` — reading
  the line back yields the identical envelope (the replay contract
  checked by ``benchmarks/bench_obs.py``).

* :class:`MemoryTelemetry` — an in-process list of records, for tests
  and short-lived introspection.

Writes are serialized under a lock and each record is dumped to a single
string before writing, so concurrent scheduler workers can never
interleave partial lines — every line of the log parses on its own.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional


class TelemetryLog:
    """Append-only JSONL telemetry writer.

    Args:
        path: file to append to (created if missing).
        flush_every: flush after this many records (1 = every record).
            The file is always flushed on :meth:`close` / context exit.
    """

    def __init__(self, path: str, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = str(path)
        self.flush_every = flush_every
        self.records_written = 0
        self._since_flush = 0
        self._lock = threading.Lock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self.records_written += 1
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._fh.flush()
                self._since_flush = 0

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._since_flush = 0

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryTelemetry:
    """An in-memory sink (``.records`` is the list, oldest first)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    def flush(self) -> None:  # sink-protocol compatibility
        pass

    def close(self) -> None:
        pass

    def of_type(self, record_type: str) -> List[Dict[str, Any]]:
        """The recorded entries of one type (``"span"`` / ``"report"``)."""
        with self._lock:
            return [r for r in self.records if r.get("type") == record_type]


def read_telemetry(path: str, record_type: Optional[str] = None) -> List[Dict[str, Any]]:
    """Parse a JSONL telemetry file back into records (the replay reader).

    Args:
        path: the file written by :class:`TelemetryLog`.
        record_type: keep only records of this type (``None`` = all).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record_type is None or record.get("type") == record_type:
                records.append(record)
    return records
