"""repro.obs — unified tracing + metrics with durable telemetry.

The stack's telemetry used to be fragmented: ``SearchStats`` counters,
``ingest_stats`` snapshots, per-cache hit/miss tallies, and a
``timings`` dict that mostly held ``total_s``.  This package unifies all
of it behind one switch::

    from repro import obs

    obs.configure(enabled=True, telemetry="run.jsonl")
    report = Engine().generate(log)
    print(report.to_dict()["trace"])       # per-phase spans
    print(obs.snapshot()["search.iterations"])
    print(obs.prometheus_text())
    obs.configure(enabled=False, telemetry=None)

Three pieces:

* :data:`REGISTRY` (:mod:`repro.obs.metrics`) — process-wide counters,
  gauges, and bounded histograms under stable dotted names, plus
  *sources* that absorb the pre-existing ad-hoc counters (ingest memo
  tables, interface caches, kernel stats) at snapshot time without
  touching their hot paths.
* :func:`trace` (:mod:`repro.obs.tracer`) — span context managers
  instrumenting every layer (engine verbs, scheduler slices, search
  steps, kernel compiles).  Disabled, a trace call is one global check
  returning a shared no-op.
* :class:`TelemetryLog` (:mod:`repro.obs.sink`) — the durable JSONL
  stream of spans and report envelopes; the training substrate for the
  ROADMAP's adaptive search controller.

Everything hangs off :func:`configure`; the default is **disabled** and
the disabled path is near-zero cost (gated by
``benchmarks/bench_obs.py --strict``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Optional

from . import config as _config
from .config import UNSET, enabled
from .metrics import (
    DEFAULT_RESERVOIR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from .sink import MemoryTelemetry, TelemetryLog, read_telemetry
from .tracer import Span, collecting, trace

__all__ = [
    "configure",
    "observed",
    "enabled",
    "telemetry_sink",
    "emit_report",
    "snapshot",
    "prometheus_text",
    "reset_metrics",
    "trace",
    "collecting",
    "Span",
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_RESERVOIR",
    "TelemetryLog",
    "MemoryTelemetry",
    "read_telemetry",
]

#: Whether the currently-configured sink was opened (from a path) by
#: :func:`configure` — only then does reconfiguration close it.
_owns_sink = False


def configure(enabled: Any = UNSET, telemetry: Any = UNSET) -> Dict[str, Any]:
    """Set the global observability switch and/or the telemetry sink.

    Args:
        enabled: turn span tracing + telemetry emission on or off
            (omit to leave unchanged).  Metrics *reads* (``snapshot()``,
            absorbed sources) work regardless — the switch gates the
            recording paths.
        telemetry: where telemetry records go — a path (a
            :class:`TelemetryLog` is opened and owned: replacing it
            later closes it), a sink object (anything with
            ``write(dict)``; caller owns it), or ``None`` to detach.
            Omit to leave unchanged.

    Returns:
        ``{"enabled": bool, "telemetry": sink-or-None}`` after applying.
    """
    global _owns_sink
    if telemetry is not UNSET:
        previous = _config.sink()
        if isinstance(telemetry, (str, bytes)) or hasattr(telemetry, "__fspath__"):
            sink: Optional[Any] = TelemetryLog(telemetry)
            owns = True
        else:
            sink = telemetry
            owns = False
        _config.set_state(sink=sink)
        if _owns_sink and previous is not None and previous is not sink:
            previous.close()
        _owns_sink = owns
    if enabled is not UNSET:
        _config.set_state(enabled=enabled)
        sink = _config.sink()
        if not _config.enabled() and sink is not None:
            # Turning recording off is a natural read boundary: push any
            # buffered records out so the file is complete right away.
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()
    return {"enabled": _config.enabled(), "telemetry": _config.sink()}


@contextmanager
def observed(enabled: bool = True, telemetry: Any = UNSET):
    """Temporarily reconfigure observability (restores the prior state).

    The benchmark/test idiom::

        with obs.observed(True, telemetry=sink):
            engine.generate(log)
    """
    prior_enabled = _config.enabled()
    prior_sink = _config.sink()
    global _owns_sink
    prior_owns = _owns_sink
    if telemetry is not UNSET:
        _owns_sink = False  # never close the caller's prior sink here
    configure(enabled=enabled, telemetry=telemetry)
    try:
        yield _config.sink()
    finally:
        current = _config.sink()
        if _owns_sink and current is not None and current is not prior_sink:
            current.close()
        _config.set_state(enabled=prior_enabled, sink=prior_sink)
        _owns_sink = prior_owns


def telemetry_sink() -> Optional[Any]:
    """The active telemetry sink (``None`` when detached)."""
    return _config.sink()


def emit_report(report: Any, verb: str) -> None:
    """Write one ``report`` telemetry record for an Engine verb delivery.

    The payload is exactly ``report.to_dict()`` — reading the JSONL line
    back replays the identical envelope.  No-op when disabled or no sink
    is configured.
    """
    if not _config.enabled() or _config.sink() is None:
        return
    _config.emit(
        {
            "type": "report",
            "ts": time.time(),
            "verb": verb,
            "report": report.to_dict(),
        }
    )
    REGISTRY.counter("telemetry.reports").inc()


def snapshot() -> Dict[str, Any]:
    """Flat name → value snapshot of every metric and absorbed source."""
    return REGISTRY.snapshot()


def prometheus_text() -> str:
    """The registry snapshot in Prometheus text exposition format."""
    return REGISTRY.prometheus_text()


def reset_metrics() -> None:
    """Drop all native metrics (absorbed sources stay registered)."""
    REGISTRY.reset()
