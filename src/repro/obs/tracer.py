"""The low-overhead span tracer.

A *span* is one timed region of work with a dotted name and optional
tags::

    with trace("engine.generate", strategy="mcts"):
        ...

On exit the span becomes a plain dict (``name`` / ``ts`` /
``duration_s`` / ``tags``) that is fanned out three ways:

* observed into the registry histogram ``span.<name>`` (p50/p95/p99
  latency per phase, for free);
* appended to every *collector* active on the current thread
  (:func:`collecting` — how a :class:`~repro.engine.GenerationReport`
  gathers the spans of exactly its own call, even with many sessions in
  flight);
* written to the configured telemetry sink, one JSONL record per span —
  the durable replay log.

Disabled (the default), :func:`trace` returns a shared no-op context
manager after a single module-global check: the instrumented hot paths
pay one function call and one ``with`` — nanoseconds — which the
``bench_obs`` gate verifies is statistically zero.

Collectors are **thread-local** by design: per-session work is
single-threaded (the scheduler's lease guarantees it), so a worker's
spans can never leak into another session's report.  A search sliced
across different worker threads accumulates its spans in the
:class:`~repro.serve.incremental.PendingSearch` it belongs to — each
slice's worker pushes the pending's span list as its collector for the
duration of the slice.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from . import config
from .metrics import REGISTRY


class _NoopSpan:
    """The shared do-nothing span returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()

_TLS = threading.local()


def _collectors() -> List[List[Dict[str, Any]]]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


class Span:
    """One live traced region (use via :func:`trace`)."""

    __slots__ = ("name", "tags", "started_at", "_t0")

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.started_at = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._t0
        record: Dict[str, Any] = {
            "name": self.name,
            "ts": self.started_at,
            "duration_s": duration,
        }
        if self.tags:
            record["tags"] = self.tags
        REGISTRY.histogram(f"span.{self.name}").observe(duration)
        for collector in _collectors():
            collector.append(record)
        config.emit({"type": "span", **record})
        return False


def trace(name: str, **tags: Any):
    """A span context manager (or the shared no-op when disabled).

    The enabled/disabled decision is taken at entry: a span opened while
    enabled records on exit even if observability is switched off
    mid-flight (and vice versa a no-op stays a no-op) — spans are never
    half-recorded.
    """
    if not config.enabled():
        return _NOOP
    return Span(name, tags)


@contextmanager
def collecting(target: Optional[List[Dict[str, Any]]] = None):
    """Collect every span finished on this thread into ``target``.

    Yields the target list (a fresh one when not given).  Collectors
    nest: an inner collector does not steal spans from an outer one —
    both receive them — so a report's collector and a diagnostic
    test collector can coexist.
    """
    spans: List[Dict[str, Any]] = [] if target is None else target
    stack = _collectors()
    stack.append(spans)
    try:
        yield spans
    finally:
        stack.pop()
