"""The process-wide observability switch and active telemetry sink.

Kept in its own module (instead of ``repro.obs.__init__``) so the hot
paths — :func:`repro.obs.tracer.trace` is called from every Engine verb,
every :meth:`~repro.search.common.SearchTask.step`, and every kernel
compile — can read one module-global bool without touching the package
namespace, and so :mod:`repro.obs.tracer` / :mod:`repro.obs.sink` can
share the state without importing each other.

The contract of the disabled path (the default): ``enabled()`` is a
plain global read, ``trace(...)`` returns a shared no-op context
manager, and nothing is recorded anywhere — benchmarked to be
statistically indistinguishable from uninstrumented code by
``benchmarks/bench_obs.py``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

#: Sentinel distinguishing "leave unchanged" from an explicit ``None``.
UNSET = object()

_lock = threading.Lock()
_enabled = False
_sink: Optional[Any] = None


def enabled() -> bool:
    """Whether observability (spans + telemetry emission) is on."""
    return _enabled


def sink() -> Optional[Any]:
    """The active telemetry sink (``None`` when not configured)."""
    return _sink


def set_state(enabled: Any = UNSET, sink: Any = UNSET) -> None:
    """Atomically update the global switch and/or the sink.

    Used by :func:`repro.obs.configure`; takes the lock so concurrent
    reconfiguration (tests, benchmarks) can't interleave half-states.
    Readers stay lock-free — a span racing a reconfigure sees either the
    old or the new state, both valid.
    """
    global _enabled, _sink
    with _lock:
        if enabled is not UNSET:
            _enabled = bool(enabled)
        if sink is not UNSET:
            _sink = sink


def emit(record: Dict[str, Any]) -> None:
    """Write one telemetry record to the sink, if one is configured.

    Snapshot the sink reference first: a concurrent ``configure`` must
    not let this call see a half-closed sink being swapped out.
    """
    target = _sink
    if target is not None and _enabled:
        target.write(record)
