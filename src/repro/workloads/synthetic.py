"""Parameterized synthetic query-log generators.

The paper motivates interface generation with ad-hoc analysis sessions:
an analyst re-runs near-identical queries while varying literals, toggling
clauses, and adding predicates.  These generators produce logs with
exactly those change patterns, at controllable sizes, for scaling and
ablation benchmarks.  All are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..registry import register_workload
from ..sqlast import Node, parse

_DEFAULT_COLUMNS = ("u", "g", "r", "i", "z")
_DEFAULT_TABLES = ("stars", "galaxies", "quasars")


@register_workload(
    "synthetic.value_drift",
    tags=("synthetic", "ast"),
    description="one numeric literal drifting (slider material)",
)
def value_drift_log(
    num_queries: int = 8,
    table: str = "stars",
    column: str = "u",
    seed: int = 0,
) -> List[Node]:
    """The same query with one numeric literal drifting (slider material)."""
    rng = random.Random(seed)
    threshold = rng.randrange(5, 15)
    queries = []
    for _ in range(num_queries):
        queries.append(parse(f"select objid from {table} where {column} < {threshold}"))
        threshold += rng.randrange(1, 4)
    return queries


@register_workload(
    "synthetic.clause_toggle",
    tags=("synthetic", "ast"),
    description="optional WHERE/ORDER BY clauses toggling on and off",
)
def clause_toggle_log(
    num_queries: int = 8,
    table: str = "galaxies",
    seed: int = 0,
) -> List[Node]:
    """Queries that keep appearing with and without optional clauses."""
    rng = random.Random(seed)
    queries = []
    for _ in range(num_queries):
        parts = [f"select objid from {table}"]
        if rng.random() < 0.6:
            column = rng.choice(_DEFAULT_COLUMNS)
            parts.append(f"where {column} between 0 and {rng.randrange(10, 30)}")
        if rng.random() < 0.4:
            parts.append(f"order by {rng.choice(('ra', 'dec'))}")
        queries.append(parse(" ".join(parts)))
    return queries


@register_workload(
    "synthetic.predicate_add",
    tags=("synthetic", "ast"),
    description="growing AND-chain of BETWEEN conjuncts (adder material)",
)
def predicate_add_log(
    num_queries: int = 6,
    table: str = "quasars",
    columns: Sequence[str] = _DEFAULT_COLUMNS[:4],
    seed: int = 0,
) -> List[Node]:
    """A growing AND-chain of BETWEEN conjuncts (MULTI/adder material)."""
    rng = random.Random(seed)
    queries = []
    for i in range(num_queries):
        count = 1 + (i % len(columns))
        conjuncts = []
        for column in columns[:count]:
            lo = rng.randrange(0, 10)
            hi = lo + rng.randrange(10, 20)
            conjuncts.append(f"{column} between {lo} and {hi}")
        queries.append(
            parse(f"select objid from {table} where {' and '.join(conjuncts)}")
        )
    return queries


@register_workload(
    "synthetic.projection_cycle",
    tags=("synthetic", "ast"),
    description="cycling projections and aggregates (radio-button axis)",
)
def projection_cycle_log(
    num_queries: int = 9,
    table: str = "stars",
    seed: int = 0,
) -> List[Node]:
    """Cycling projections and aggregates (Figure 6(a)'s radio-button axis)."""
    rng = random.Random(seed)
    items = ("objid", "count(*)", "ra", "dec")
    tops = (None, 10, 100, 1000)
    queries = []
    for _ in range(num_queries):
        item = rng.choice(items)
        top = rng.choice(tops)
        top_clause = f"top {top} " if top is not None else ""
        queries.append(parse(f"select {top_clause}{item} from {table}"))
    return queries


@register_workload(
    "synthetic.mixed_session",
    tags=("synthetic", "ast"),
    description="mixed session: drifting literals, toggles, table changes",
)
def mixed_session_log(
    num_queries: int = 12,
    seed: int = 0,
    tables: Sequence[str] = _DEFAULT_TABLES,
) -> List[Node]:
    """A realistic mixed session: drifting literals, clause toggles,
    changing tables and projections."""
    rng = random.Random(seed)
    queries: List[Node] = []
    threshold = rng.randrange(10, 20)
    for _ in range(num_queries):
        table = rng.choice(list(tables))
        item = rng.choice(("objid", "count(*)"))
        top: Optional[int] = rng.choice((None, 10, 100))
        parts = ["select"]
        if top is not None:
            parts.append(f"top {top}")
        parts.append(item)
        parts.append(f"from {table}")
        if rng.random() < 0.7:
            column = rng.choice(_DEFAULT_COLUMNS)
            parts.append(f"where {column} < {threshold}")
            threshold += rng.randrange(0, 3)
        queries.append(parse(" ".join(parts)))
    return queries
