"""Evaluation workloads: the paper's SDSS log, TPC-H-style analytic
sessions, and synthetic generators."""

from .sdss import LISTING1_SQL, listing1_queries, listing1_sql, sdss_session_sql
from .synthetic import (
    clause_toggle_log,
    mixed_session_log,
    predicate_add_log,
    projection_cycle_log,
    value_drift_log,
)
from .tpch import (
    PRICING_SUMMARY_SQL,
    pricing_summary_queries,
    pricing_summary_sql,
    tpch_session_queries,
    tpch_session_sql,
)

__all__ = [
    "LISTING1_SQL",
    "listing1_sql",
    "listing1_queries",
    "sdss_session_sql",
    "PRICING_SUMMARY_SQL",
    "pricing_summary_sql",
    "pricing_summary_queries",
    "tpch_session_sql",
    "tpch_session_queries",
    "value_drift_log",
    "clause_toggle_log",
    "predicate_add_log",
    "projection_cycle_log",
    "mixed_session_log",
]
