"""Evaluation workloads: the paper's SDSS log, TPC-H-style analytic
sessions, and synthetic generators.

Each generator also registers itself in the shared workload registry
(:mod:`repro.registry`) with descriptive tags — ``"growing"`` session
generators (SQL strings, ``(num_queries, seed=...)`` signature) power
the serving benches and :meth:`repro.engine.Engine.workload`;
``"synthetic"`` pattern logs (parsed ASTs) power the scaling/ablation
benches.  Resolve them by name with :func:`repro.registry.get_workload`
or list them with :func:`repro.registry.workload_names`.
"""

from ..registry import get_workload, workload_names, workload_spec
from .sdss import LISTING1_SQL, listing1_queries, listing1_sql, sdss_session_sql
from .synthetic import (
    clause_toggle_log,
    mixed_session_log,
    predicate_add_log,
    projection_cycle_log,
    value_drift_log,
)
from .tpch import (
    PRICING_SUMMARY_SQL,
    pricing_summary_queries,
    pricing_summary_sql,
    tpch_session_queries,
    tpch_session_sql,
)

__all__ = [
    "LISTING1_SQL",
    "listing1_sql",
    "listing1_queries",
    "sdss_session_sql",
    "PRICING_SUMMARY_SQL",
    "pricing_summary_sql",
    "pricing_summary_queries",
    "tpch_session_sql",
    "tpch_session_queries",
    "value_drift_log",
    "clause_toggle_log",
    "predicate_add_log",
    "projection_cycle_log",
    "mixed_session_log",
    "get_workload",
    "workload_names",
    "workload_spec",
]
