"""The paper's evaluation workload: the SDSS-derived query log (Listing 1).

The paper prints only the first two queries in full and notes that *all*
queries share the same WHERE-clause structure (four BETWEEN conjuncts on
the photometric bands u, g, r, i) and that queries 6–8 share *identical*
WHERE clauses (which is why Figure 6(c), generated from queries 6–8 alone,
only asks the user to pick TOP 10/100/1000).  We reconstruct the remaining
bounds deterministically under exactly those constraints.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..registry import register_workload
from ..sqlast import Node, parse

#: (table, select item, top-n or None, ((u), (g), (r), (i)) bounds)
_SHARED_678: Tuple[Tuple[int, int], ...] = ((0, 30), (5, 25), (2, 28), (1, 29))

_SPEC: Tuple[Tuple[str, str, object, Tuple[Tuple[int, int], ...]], ...] = (
    # 1-2 are printed verbatim in the paper's Listing 1.
    ("stars", "objid", 10, ((0, 30), (0, 30), (0, 30), (0, 30))),
    ("galaxies", "objid", 100, ((1, 29), (10, 30), (9, 30), (3, 28))),
    ("quasars", "objid", 1000, ((2, 28), (6, 26), (0, 30), (1, 27))),
    ("stars", "count(*)", None, ((0, 28), (4, 26), (2, 29), (0, 25))),
    ("galaxies", "objid", None, ((3, 27), (1, 30), (6, 24), (2, 26))),
    ("quasars", "objid", 10, _SHARED_678),
    ("stars", "objid", 100, _SHARED_678),
    ("galaxies", "objid", 1000, _SHARED_678),
    ("quasars", "count(*)", None, ((2, 26), (3, 27), (4, 28), (5, 29))),
    ("stars", "objid", None, ((1, 25), (2, 30), (3, 29), (4, 26))),
)

_BANDS = ("u", "g", "r", "i")


def _build_sql(
    table: str, item: str, top: object, bounds: Sequence[Tuple[int, int]]
) -> str:
    top_clause = f"top {top} " if top is not None else ""
    preds = " and ".join(
        f"{band} between {lo} and {hi}" for band, (lo, hi) in zip(_BANDS, bounds)
    )
    return f"select {top_clause}{item} from {table} where {preds}"


#: The ten SQL strings of Listing 1 (1-indexed in the paper).
LISTING1_SQL: Tuple[str, ...] = tuple(_build_sql(*spec) for spec in _SPEC)


def listing1_sql(start: int = 1, end: int = 10) -> List[str]:
    """Queries ``start``..``end`` of Listing 1 (1-indexed, inclusive)."""
    if not (1 <= start <= end <= len(LISTING1_SQL)):
        raise ValueError(f"invalid Listing-1 range [{start}, {end}]")
    return list(LISTING1_SQL[start - 1 : end])


def listing1_queries(start: int = 1, end: int = 10) -> List[Node]:
    """Parsed ASTs of Listing-1 queries ``start``..``end`` (inclusive)."""
    return [parse(sql) for sql in listing1_sql(start, end)]


@register_workload(
    "sdss",
    tags=("growing", "sql"),
    description="SDSS Listing-1-shaped session with drifting band bounds",
)
def sdss_session_sql(num_queries: int = 20, seed: int = 0) -> List[str]:
    """An arbitrarily long SDSS-style session log (Listing-1 shaped).

    Deterministic given a seed: every query keeps Listing 1's exact
    shape — ``SELECT [TOP n] item FROM table WHERE`` four ``BETWEEN``
    conjuncts on the photometric bands — while the table, projection,
    TOP value, and per-band bounds drift the way an analyst's session
    does: over a *small* palette of revisited values (Listing 1 itself
    uses only six distinct bound sets across ten queries).  Used by the
    incremental-serving benchmark, which needs logs that keep growing
    past the ten queries the paper prints.
    """
    rng = random.Random(seed)
    tables = ("stars", "galaxies", "quasars")
    items = ("objid", "count(*)")
    tops: Tuple[object, ...] = (None, 10, 100, 1000)
    #: Per-band palettes the session keeps coming back to.
    palettes: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
        (pair, (pair[0] + 1, pair[1] - 1), (pair[0] + 2, pair[1]))
        for pair in _SHARED_678
    )
    bounds = [palette[0] for palette in palettes]
    queries: List[str] = []
    for _ in range(num_queries):
        # Nudge one band per step (the analyst revisits a known range).
        band = rng.randrange(len(bounds))
        bounds[band] = rng.choice(palettes[band])
        queries.append(
            _build_sql(
                rng.choice(tables),
                rng.choice(items),
                rng.choice(tops),
                tuple(bounds),
            )
        )
    return queries
