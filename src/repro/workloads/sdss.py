"""The paper's evaluation workload: the SDSS-derived query log (Listing 1).

The paper prints only the first two queries in full and notes that *all*
queries share the same WHERE-clause structure (four BETWEEN conjuncts on
the photometric bands u, g, r, i) and that queries 6–8 share *identical*
WHERE clauses (which is why Figure 6(c), generated from queries 6–8 alone,
only asks the user to pick TOP 10/100/1000).  We reconstruct the remaining
bounds deterministically under exactly those constraints.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..sqlast import Node, parse

#: (table, select item, top-n or None, ((u), (g), (r), (i)) bounds)
_SHARED_678: Tuple[Tuple[int, int], ...] = ((0, 30), (5, 25), (2, 28), (1, 29))

_SPEC: Tuple[Tuple[str, str, object, Tuple[Tuple[int, int], ...]], ...] = (
    # 1-2 are printed verbatim in the paper's Listing 1.
    ("stars", "objid", 10, ((0, 30), (0, 30), (0, 30), (0, 30))),
    ("galaxies", "objid", 100, ((1, 29), (10, 30), (9, 30), (3, 28))),
    ("quasars", "objid", 1000, ((2, 28), (6, 26), (0, 30), (1, 27))),
    ("stars", "count(*)", None, ((0, 28), (4, 26), (2, 29), (0, 25))),
    ("galaxies", "objid", None, ((3, 27), (1, 30), (6, 24), (2, 26))),
    ("quasars", "objid", 10, _SHARED_678),
    ("stars", "objid", 100, _SHARED_678),
    ("galaxies", "objid", 1000, _SHARED_678),
    ("quasars", "count(*)", None, ((2, 26), (3, 27), (4, 28), (5, 29))),
    ("stars", "objid", None, ((1, 25), (2, 30), (3, 29), (4, 26))),
)

_BANDS = ("u", "g", "r", "i")


def _build_sql(
    table: str, item: str, top: object, bounds: Sequence[Tuple[int, int]]
) -> str:
    top_clause = f"top {top} " if top is not None else ""
    preds = " and ".join(
        f"{band} between {lo} and {hi}" for band, (lo, hi) in zip(_BANDS, bounds)
    )
    return f"select {top_clause}{item} from {table} where {preds}"


#: The ten SQL strings of Listing 1 (1-indexed in the paper).
LISTING1_SQL: Tuple[str, ...] = tuple(_build_sql(*spec) for spec in _SPEC)


def listing1_sql(start: int = 1, end: int = 10) -> List[str]:
    """Queries ``start``..``end`` of Listing 1 (1-indexed, inclusive)."""
    if not (1 <= start <= end <= len(LISTING1_SQL)):
        raise ValueError(f"invalid Listing-1 range [{start}, {end}]")
    return list(LISTING1_SQL[start - 1 : end])


def listing1_queries(start: int = 1, end: int = 10) -> List[Node]:
    """Parsed ASTs of Listing-1 queries ``start``..``end`` (inclusive)."""
    return [parse(sql) for sql in listing1_sql(start, end)]
