"""A TPC-H-style analytic session workload (grouping/aggregate-heavy).

The SDSS log (:mod:`repro.workloads.sdss`) exercises range predicates on
a flat projection; analytic dashboards stress a different part of the
interface space: aggregate functions, GROUP BY column sets, ORDER BY
direction, and LIMIT — the knobs a TPC-H-style pricing-summary session
(in the spirit of TPC-H Q1/Q5/Q10) keeps revisiting.  The generators
here mirror the SDSS ones deterministically: every query keeps one
shared shape so anti-unification factors the session well, while the
aggregate, grouping, filter bounds, and row limit drift over a *small*
palette of revisited values the way an analyst's session does.

``tpch_session_sql`` is the growing-log variant (like
``sdss_session_sql``) used by the incremental-serving and cost-kernel
benchmarks for scenario diversity.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..registry import register_workload
from ..sqlast import Node, parse

#: The measure columns an analyst aggregates over, and the aggregates.
_MEASURES = ("l_quantity", "l_extendedprice", "l_discount")
_AGGREGATES = ("sum", "avg", "min", "max")
#: Grouping column sets the session cycles through (kept to two so the
#: GROUP BY clause factors into a compact choice, like Listing 1's
#: six bound sets).
_GROUPINGS = ("l_returnflag", "l_linestatus")
#: (lo, hi) palettes per filter column — revisited, SDSS-style.
_QTY_BOUNDS = ((1, 24), (5, 30), (10, 40))
_PRICE_BOUNDS = ((100, 900), (200, 800), (300, 700))
_LIMITS: Tuple[Optional[int], ...] = (None, 10, 100)
_DIRECTIONS = ("", " desc")


def _build_sql(
    aggregate: str,
    measure: str,
    grouping: str,
    qty: Tuple[int, int],
    price: Tuple[int, int],
    direction: str,
    limit: Optional[int],
) -> str:
    limit_clause = f" limit {limit}" if limit is not None else ""
    return (
        f"select {grouping}, {aggregate}({measure}) from lineitem"
        f" where l_quantity between {qty[0]} and {qty[1]}"
        f" and l_extendedprice between {price[0]} and {price[1]}"
        f" group by {grouping}"
        f" order by {grouping}{direction}"
        f"{limit_clause}"
    )


#: A fixed ten-query pricing-summary session (the TPC-H analogue of
#: Listing 1): same shape throughout, drifting aggregate/grouping/bounds.
_SPEC: Tuple[Tuple[str, str, str, int, int, str, Optional[int]], ...] = (
    ("sum", "l_quantity", "l_returnflag", 0, 0, "", 10),
    ("sum", "l_extendedprice", "l_returnflag", 0, 0, "", 10),
    ("avg", "l_extendedprice", "l_returnflag", 0, 1, "", 100),
    ("avg", "l_discount", "l_linestatus", 1, 1, " desc", 100),
    ("sum", "l_quantity", "l_linestatus", 1, 0, " desc", None),
    ("min", "l_extendedprice", "l_returnflag", 2, 0, "", None),
    ("max", "l_extendedprice", "l_returnflag", 2, 2, "", 10),
    ("sum", "l_discount", "l_linestatus", 0, 2, " desc", 10),
    ("avg", "l_quantity", "l_returnflag", 0, 0, "", 100),
    ("sum", "l_extendedprice", "l_linestatus", 1, 1, "", 10),
)

PRICING_SUMMARY_SQL: Tuple[str, ...] = tuple(
    _build_sql(
        agg,
        measure,
        grouping,
        _QTY_BOUNDS[qty],
        _PRICE_BOUNDS[price],
        direction,
        limit,
    )
    for agg, measure, grouping, qty, price, direction, limit in _SPEC
)


def pricing_summary_sql(start: int = 1, end: int = 10) -> List[str]:
    """Queries ``start``..``end`` of the fixed session (1-indexed, incl.)."""
    if not (1 <= start <= end <= len(PRICING_SUMMARY_SQL)):
        raise ValueError(f"invalid pricing-summary range [{start}, {end}]")
    return list(PRICING_SUMMARY_SQL[start - 1 : end])


def pricing_summary_queries(start: int = 1, end: int = 10) -> List[Node]:
    """Parsed ASTs of the fixed session queries (1-indexed, inclusive)."""
    return [parse(sql) for sql in pricing_summary_sql(start, end)]


@register_workload(
    "tpch",
    tags=("growing", "sql"),
    description="TPC-H-style pricing-summary session (aggregate/grouping drift)",
)
def tpch_session_sql(num_queries: int = 20, seed: int = 0) -> List[str]:
    """An arbitrarily long TPC-H-style session log (growing-log variant).

    Deterministic given a seed: every query keeps the pricing-summary
    shape — ``SELECT g, agg(m) FROM lineitem WHERE`` two ``BETWEEN``
    filters ``GROUP BY g ORDER BY g [DESC] [LIMIT n]`` — while the
    aggregate, measure, grouping column, per-filter bounds, sort
    direction, and limit drift over small revisited palettes.  One knob
    is nudged per step (the analyst refines the previous query), which
    keeps consecutive-pair diffs realistic for the ``U`` cost.
    """
    rng = random.Random(seed)
    state = {
        "aggregate": _AGGREGATES[0],
        "measure": _MEASURES[0],
        "grouping": _GROUPINGS[0],
        "qty": _QTY_BOUNDS[0],
        "price": _PRICE_BOUNDS[0],
        "direction": _DIRECTIONS[0],
        "limit": _LIMITS[1],
    }
    nudges: Sequence[Tuple[str, Sequence[object]]] = (
        ("aggregate", _AGGREGATES),
        ("measure", _MEASURES),
        ("grouping", _GROUPINGS),
        ("qty", _QTY_BOUNDS),
        ("price", _PRICE_BOUNDS),
        ("direction", _DIRECTIONS),
        ("limit", _LIMITS),
    )
    queries: List[str] = []
    for _ in range(num_queries):
        knob, palette = nudges[rng.randrange(len(nudges))]
        state[knob] = palette[rng.randrange(len(palette))]
        queries.append(
            _build_sql(
                state["aggregate"],
                state["measure"],
                state["grouping"],
                state["qty"],
                state["price"],
                state["direction"],
                state["limit"],
            )
        )
    return queries


def tpch_session_queries(num_queries: int = 20, seed: int = 0) -> List[Node]:
    """Parsed ASTs of :func:`tpch_session_sql`."""
    return [parse(sql) for sql in tpch_session_sql(num_queries, seed=seed)]
