"""Concurrent multi-session scheduling over resumable search tasks.

The Engine's verbs serve one session at a time: a long search blocks
every session queued behind it (FIFO), so under concurrent load the p95
first-interface latency grows with the *sum* of all predecessors' work.
:class:`SessionScheduler` fixes that by exploiting the
:class:`~repro.search.common.SearchTask` state machine: every session's
search is opened once (warm-start and compiled-sequence carry included,
via :meth:`~repro.serve.IncrementalGenerator.open_search`) and then
*time-sliced* — a few iterations per slice, sessions interleaved — so
short work is never starved by long work in front of it.

A submission is a session *script*: an ordered list of query chunks.
The scheduler appends a chunk, slices the search for the grown log to
completion, delivers the :class:`~repro.engine.report.GenerationReport`
(with scheduling provenance), then moves to the session's next chunk —
the growing-log serving pattern.

Three policies:

* ``"round_robin"`` — runnable sessions rotate; each gets
  ``slice_iterations`` (and optionally ``slice_s``) per turn.  Fair
  processor-sharing: p95 first-interface latency is bounded by the
  *per-step* work of the cohort, not the sum of whole scripts.
* ``"deadline"`` — earliest-deadline-first: each submission carries a
  ``target_latency_s`` and the most urgent runnable session is sliced
  next (ties fall back to submission order).
* ``"fifo"`` — no preemption: the earliest-submitted session runs each
  search to completion.  This is the blocking baseline the serving
  benchmark (``benchmarks/bench_serving.py``) compares against.

The scheduler also provides **admission control** (at most
``max_active`` sessions hold search state concurrently; the rest wait
in an admission queue, and their wait is reported as ``queue_wait_s``),
**per-session accounting** (slices, preemptions, iterations, first-
interface latency), and **cancellation**.

Thread-safety: :meth:`SessionScheduler.run` accepts ``workers > 1``.
Scheduler bookkeeping is lock-protected, and a *lease* guarantees at
most one worker ever steps a given session's task — per-session work
stays single-threaded (each task owns its RNG and clock), so
iteration-capped sessions whose logs don't overlap produce bit-for-bit
the results of a serial run regardless of worker count or interleaving.
(Sessions sharing identical logs or log prefixes couple through the
shared interface cache — who hits whose entry is timing-dependent, the
same way it is order-dependent for serial callers; the interfaces are
still valid and deterministic per search, but which session pays for
the search may differ.)  Shared structures (interface cache, session
router shards, cost-model LRUs) carry their own locks.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..obs import collecting as _collecting, emit_report as _emit_report, trace as _trace
from ..serve.incremental import PendingSearch
from ..serve.stream import QueryLike
from .report import GenerationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Engine

#: Scheduling policies (see module docstring).
POLICIES = ("round_robin", "deadline", "fifo")

#: Ticket lifecycle states.
TICKET_STATES = ("queued", "active", "done", "cancelled", "failed")


@dataclass
class SessionTicket:
    """One submitted session script and its scheduling account.

    Attributes:
        session_id: the serving session the script belongs to.
        chunks: the query batches still to be appended + served, in order.
        target_latency_s: the deadline policy's urgency knob (seconds
            from submission; ``None`` = no deadline, scheduled last).
        state: ``queued`` (awaiting admission) → ``active`` →
            ``done`` / ``cancelled`` / ``failed``.
        reports: one report per delivered interface, in chunk order.
        first_interface_s: submission-to-first-interface latency — the
            benchmark's headline metric.
        queue_wait_s: how long admission control held the session.
        slices: task slices this session consumed (all searches).
        preemptions: slices that ended with the search still unfinished
            (the session was put back in the runnable queue).
        iterations: search iterations executed across all its searches.
        error: repr of the exception when ``state == "failed"``.
    """

    session_id: str
    chunks: List[Tuple[QueryLike, ...]]
    target_latency_s: Optional[float] = None
    state: str = "queued"
    reports: List[GenerationReport] = field(default_factory=list)
    first_interface_s: Optional[float] = None
    queue_wait_s: float = 0.0
    slices: int = 0
    preemptions: int = 0
    iterations: int = 0
    error: Optional[str] = None
    #: Monotone submission sequence number (FIFO / tie-break order).
    seq: int = 0
    #: perf_counter timestamps (internal accounting).
    submitted_at: float = 0.0
    admitted_at: Optional[float] = None
    #: Index of the next chunk to append.
    chunk_index: int = 0

    @property
    def finished(self) -> bool:
        return self.state in ("done", "cancelled", "failed")

    def deadline(self) -> float:
        """Absolute deadline (``inf`` when no target latency was given)."""
        if self.target_latency_s is None:
            return math.inf
        return self.submitted_at + self.target_latency_s


class SessionScheduler:
    """Slices many sessions' searches over the engine's serving state.

    Obtained from :meth:`Engine.scheduler`.  Typical use::

        scheduler = engine.scheduler(slice_iterations=16)
        for sid, chunks in workload.items():
            scheduler.submit(sid, chunks)
        tickets = scheduler.run()          # or run(workers=4)
        for ticket in tickets:
            print(ticket.session_id, ticket.first_interface_s,
                  [r.cost for r in ticket.reports])

    Args:
        engine: the owning :class:`Engine` (its incremental service,
            cache, and router are shared with the other verbs).
        slice_iterations: search iterations per slice for the preempting
            policies.  ``None`` = unbounded (slice ends only on
            ``slice_s`` or task completion).
        slice_s: optional wall-clock bound per slice.
        policy: ``"round_robin"``, ``"deadline"``, or ``"fifo"``.
        max_active: admission control — how many sessions may hold
            search state at once (``None`` = unlimited).
    """

    def __init__(
        self,
        engine: "Engine",
        slice_iterations: Optional[int] = 16,
        slice_s: Optional[float] = None,
        policy: str = "round_robin",
        max_active: Optional[int] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if slice_iterations is not None and slice_iterations < 1:
            raise ValueError(
                f"slice_iterations must be >= 1 or None, got {slice_iterations}"
            )
        if slice_s is not None and slice_s <= 0:
            raise ValueError(f"slice_s must be > 0 or None, got {slice_s}")
        if max_active is not None and max_active < 1:
            raise ValueError(f"max_active must be >= 1 or None, got {max_active}")
        self.engine = engine
        #: Fail fast (before any submit) on non-warm-capable strategies.
        self._service = engine._incremental_service()
        self.slice_iterations = slice_iterations
        self.slice_s = slice_s
        self.policy = policy
        self.max_active = max_active
        self._lock = threading.RLock()
        self._tickets: Dict[str, SessionTicket] = {}
        #: Sessions awaiting admission, in submission order.
        self._admission: List[str] = []
        #: Admitted sessions eligible for their next slice.
        self._runnable: List[str] = []
        #: Sessions currently being stepped by a worker (lease: at most
        #: one worker per session, ever).
        self._leased: set = set()
        #: session id -> its currently open (unfinished) search.
        self._pending: Dict[str, PendingSearch] = {}
        #: session id -> log length before the current chunk's append —
        #: the rollback point if the chunk's interface is never
        #: delivered (cancelled/failed scripts must not pollute the
        #: session's log with unserved queries).
        self._chunk_baseline: Dict[str, int] = {}
        self._seq = 0

    # -- submission / introspection -----------------------------------------

    def submit(
        self,
        session_id: str,
        chunks: Sequence[Sequence[QueryLike]],
        target_latency_s: Optional[float] = None,
    ) -> SessionTicket:
        """Queue a session script: per chunk, append + serve an interface.

        Admission control applies immediately: within ``max_active`` the
        session becomes runnable, otherwise it waits (FIFO) for a slot
        freed by a finishing/cancelled session.
        """
        cleaned = [tuple(chunk) for chunk in chunks if len(tuple(chunk))]
        if not cleaned:
            raise ValueError("a session script needs at least one non-empty chunk")
        with self._lock:
            existing = self._tickets.get(session_id)
            if existing is not None and not existing.finished:
                raise ValueError(
                    f"session {session_id!r} already has an unfinished ticket"
                )
            self._seq += 1
            ticket = SessionTicket(
                session_id=session_id,
                chunks=cleaned,
                target_latency_s=target_latency_s,
                seq=self._seq,
                submitted_at=time.perf_counter(),
            )
            self._tickets[session_id] = ticket
            if self.max_active is None or self._active_count() < self.max_active:
                self._admit(ticket)
            else:
                self._admission.append(session_id)
            return ticket

    def tickets(self) -> List[SessionTicket]:
        """All tickets, in submission order."""
        with self._lock:
            return sorted(self._tickets.values(), key=lambda t: t.seq)

    def ticket(self, session_id: str) -> SessionTicket:
        with self._lock:
            ticket = self._tickets.get(session_id)
            if ticket is None:
                raise KeyError(f"no ticket for session {session_id!r}")
            return ticket

    @property
    def idle(self) -> bool:
        """True when every submitted script has reached a terminal state."""
        with self._lock:
            return all(t.finished for t in self._tickets.values())

    def cancel(self, session_id: str) -> bool:
        """Cancel a session's remaining script (delivered reports stay).

        A search mid-slice finishes its current slice and is then
        discarded.  Returns False if the ticket was already finished.
        """
        with self._lock:
            ticket = self._tickets.get(session_id)
            if ticket is None or ticket.finished:
                return False
            ticket.state = "cancelled"
            if session_id in self._admission:
                self._admission.remove(session_id)
            if session_id in self._runnable:
                self._runnable.remove(session_id)
            # A leased worker notices the cancelled state on return and
            # drops the pending search; an unleased one is dropped here.
            if session_id not in self._leased:
                self._pending.pop(session_id, None)
                self._rollback_chunk(session_id)
                self._admit_next()
            return True

    # -- the scheduling loop -------------------------------------------------

    def step(self) -> bool:
        """One scheduling decision: pick a session, slice it, account.

        Returns True if a slice ran (False: nothing runnable — either
        all scripts finished or every runnable session is leased to
        another worker).
        """
        with self._lock:
            session_id = self._pick()
            if session_id is None:
                return False
            self._leased.add(session_id)
            ticket = self._tickets[session_id]
            pending = self._pending.get(session_id)
        try:
            delivered, pending, performed, opened = self._advance(
                ticket, pending
            )
        except Exception as exc:  # noqa: BLE001 - surfaced on the ticket
            with self._lock:
                self._leased.discard(session_id)
                self._pending.pop(session_id, None)
                self._rollback_chunk(session_id)
                # A cancel() that raced with this slice wins: the ticket
                # stays "cancelled" (its documented terminal state); the
                # error is still recorded for diagnosis.
                if ticket.state != "cancelled":
                    ticket.state = "failed"
                ticket.error = repr(exc)
                self._admit_next()
            return True
        with self._lock:
            self._leased.discard(session_id)
            if ticket.state == "cancelled":
                self._pending.pop(session_id, None)
                self._rollback_chunk(session_id)
                self._admit_next()
                return True
            ticket.slices += 1 if (performed or opened or delivered) else 0
            ticket.iterations += performed
            if pending is not None:
                self._pending[session_id] = pending
                ticket.preemptions += 1
            else:
                self._pending.pop(session_id, None)
            if delivered is not None:
                self._chunk_baseline.pop(session_id, None)
                ticket.reports.append(delivered)
                now = time.perf_counter()
                if ticket.first_interface_s is None:
                    ticket.first_interface_s = now - ticket.submitted_at
                ticket.chunk_index += 1
                if ticket.chunk_index >= len(ticket.chunks):
                    ticket.state = "done"
                    self._admit_next()
            if not ticket.finished:
                self._runnable.append(session_id)
        return True

    def run(self, workers: int = 1, poll_s: float = 0.0005) -> List[SessionTicket]:
        """Drain every submitted script; returns the tickets.

        With ``workers > 1``, that many threads step sessions
        concurrently (the lease keeps each session single-threaded).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers == 1:
            while not self.idle:
                if not self.step():
                    time.sleep(poll_s)
            return self.tickets()

        def worker() -> None:
            while not self.idle:
                if not self.step():
                    time.sleep(poll_s)

        threads = [
            threading.Thread(target=worker, name=f"session-scheduler-{i}")
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return self.tickets()

    # -- internals -----------------------------------------------------------

    def _active_count(self) -> int:
        return sum(
            1
            for t in self._tickets.values()
            if t.state == "active"
        )

    def _admit(self, ticket: SessionTicket) -> None:
        """Move a queued ticket into the runnable set (lock held)."""
        now = time.perf_counter()
        ticket.state = "active"
        ticket.admitted_at = now
        ticket.queue_wait_s = now - ticket.submitted_at
        self._runnable.append(ticket.session_id)

    def _admit_next(self) -> None:
        """Fill freed admission slots from the wait queue (lock held)."""
        while self._admission and (
            self.max_active is None or self._active_count() < self.max_active
        ):
            self._admit(self._tickets[self._admission.pop(0)])

    def _rollback_chunk(self, session_id: str) -> None:
        """Un-append the current chunk after cancel/failure (lock held).

        The chunk's queries were ingested when its search opened; if no
        interface was ever delivered for them they must leave the log,
        or the session's next interface (and a resubmitted script) would
        be computed over queries the user never saw served.
        """
        baseline = self._chunk_baseline.pop(session_id, None)
        if baseline is not None:
            self.engine.router.truncate(session_id, baseline)

    def _pick(self) -> Optional[str]:
        """Choose the next session to slice (lock held).

        round_robin: head of the rotation queue.  fifo: earliest
        submission.  deadline: earliest deadline, submission order as
        tie-break.  Leased sessions are skipped (another worker owns
        them).
        """
        candidates = [sid for sid in self._runnable if sid not in self._leased]
        if not candidates:
            return None
        if self.policy == "round_robin":
            chosen = candidates[0]
        elif self.policy == "fifo":
            chosen = min(candidates, key=lambda sid: self._tickets[sid].seq)
        else:  # deadline
            chosen = min(
                candidates,
                key=lambda sid: (
                    self._tickets[sid].deadline(),
                    self._tickets[sid].seq,
                ),
            )
        self._runnable.remove(chosen)
        return chosen

    def _advance(
        self, ticket: SessionTicket, pending: Optional[PendingSearch]
    ) -> Tuple[Optional[GenerationReport], Optional[PendingSearch], int, bool]:
        """Slice one session (no scheduler lock held).

        Returns ``(delivered_report, still_pending, iterations, opened)``.
        """
        session_id = ticket.session_id
        opened = False
        performed = 0
        slice_spans: List[dict] = []
        with _collecting(slice_spans), _trace(
            "scheduler.slice",
            session=session_id,
            policy=self.policy,
            worker=threading.current_thread().name,
        ):
            if pending is None:
                chunk = ticket.chunks[ticket.chunk_index]
                with self._lock:
                    self._chunk_baseline.setdefault(
                        session_id, self._service.log_length(session_id)
                    )
                self._service.append(*chunk, session_id=session_id)
                pending = self._service.open_search(session_id)
                opened = True
            if pending.cached is None:
                if self.policy == "fifo":
                    performed = pending.task.step()
                else:
                    performed = pending.task.step(
                        n_iterations=self.slice_iterations, slice_s=self.slice_s
                    )
        # Attach this slice's spans to the session's pending record.  The
        # lease keeps per-session work single-threaded, so plain appends
        # are safe; identity-dedup keeps the spans open_search already
        # attached (collected by both levels) from appearing twice.
        seen = {id(span) for span in pending.spans}
        pending.spans.extend(s for s in slice_spans if id(s) not in seen)
        if pending.cached is not None:
            report = self._report(ticket, pending, searched=False)
            return report, None, 0, opened
        if not pending.task.done:
            return None, pending, performed, opened
        report = self._report(ticket, pending, searched=True)
        return report, None, performed, opened

    def _report(
        self, ticket: SessionTicket, pending: PendingSearch, searched: bool
    ) -> GenerationReport:
        """Package a delivered interface with scheduling provenance."""
        engine = self.engine
        if searched:
            task = pending.task
            # finish() collects its own spans into pending.spans and fills
            # pending.timings["search_s"/"render_s"] from the task clock.
            generated = pending.finish()
            scheduling_extra = {
                "slices": task.slices,
                "iterations": task.iterations,
            }
        else:
            generated = pending.cached
            scheduling_extra = {"slices": 0, "iterations": 0}
        now = time.perf_counter()
        timings = dict(pending.timings)
        timings["total_s"] = now - (ticket.admitted_at or ticket.submitted_at)
        stats = generated.search.stats
        report = GenerationReport(
            result=generated,
            source="search" if searched else "cache",
            strategy=generated.search.strategy,
            session_id=ticket.session_id,
            log_size=len(generated.queries),
            warm_states_seeded=stats.warm_states_seeded if searched else 0,
            cache_stats=engine.cache_stats,
            timings=timings,
            scheduling={
                "policy": self.policy,
                "queue_wait_s": ticket.queue_wait_s,
                "latency_s": now - ticket.submitted_at,
                "preemptions": ticket.preemptions,
                **scheduling_extra,
            },
            trace=list(pending.spans),
            snapshot=engine.restored_session(ticket.session_id),
        )
        _emit_report(report, verb="scheduler")
        return report
