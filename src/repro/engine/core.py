"""The session-oriented Engine facade over generate/serve.

One long-lived object owns every piece of serving state the caller used
to hand-wire — the rule engine, the parse-once AST caches (inside the
:class:`~repro.serve.SessionRouter`), the :class:`~repro.serve.InterfaceCache`,
the warm-start/compiled-sequence carry-over of
:class:`~repro.serve.IncrementalGenerator`, and the batch worker pool —
and exposes three verbs:

* :meth:`Engine.generate` — one-shot, cache-aware generation.
* :meth:`Engine.session` — a :class:`LogSession` handle whose
  ``append()`` / ``interface()`` / ``history()`` make "append queries,
  get the refreshed interface" the primary operation (incremental +
  cached + warm-started under the hood).
* :meth:`Engine.generate_batch` — many independent logs across a
  process pool.

Every verb returns a :class:`~repro.engine.report.GenerationReport`:
the uniform JSON-serializable envelope (interface + search stats +
kernel counters + cache/warm-start provenance + timings) intended as
the stable contract for a future HTTP layer.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..core import GeneratedInterface, GenerationConfig, prepare_search, run_search
from ..difftree import as_asts, wrap_ast
from ..layout import Screen
from ..memo import INGEST
from ..obs import collecting as _collecting, emit_report as _emit_report, trace as _trace
from ..registry import get_workload, strategy_spec
from ..rules import RuleEngine
from ..serve import (
    DEFAULT_SESSION,
    EXECUTORS,
    IncrementalGenerator,
    InterfaceCache,
    SessionRouter,
    context_key,
    generate_interfaces_batch,
)
from ..serve.stream import QueryLike
from ..sqlast import Node
from .report import GenerationReport
from .scheduler import SessionScheduler


class LogSession:
    """One serving session's handle: append queries, get interfaces.

    Obtained from :meth:`Engine.session`; the engine keeps one handle
    per id, so repeated ``session("a")`` calls share history.  All
    state (log, warm-start carry, cache) lives in the owning engine —
    the handle is just the session-scoped view of it.
    """

    def __init__(self, engine: "Engine", session_id: str) -> None:
        self._engine = engine
        self.session_id = session_id
        #: Most recent reports, oldest first (bounded: the engine's
        #: max_history caps what a long-lived session retains).
        self._history: Deque[GenerationReport] = deque(maxlen=engine.max_history)

    def __len__(self) -> int:
        return self.log_length

    @property
    def log_length(self) -> int:
        """How many queries this session has ingested."""
        return len(self._engine.router.stream(self.session_id))

    def append(self, *queries: QueryLike) -> int:
        """Append queries (SQL text or ASTs); returns the new log length."""
        self._engine._touch_session(self.session_id)
        return self._engine.router.append(self.session_id, *queries)

    def interface(self) -> GenerationReport:
        """The interface for the session's current log.

        Incremental by construction: an unchanged log is a cache hit
        (zero search), an appended one warm-starts from the previous
        run's extended difftree, elites, and compiled sequences.
        """
        self._engine._touch_session(self.session_id)
        report = self._engine._session_interface(self.session_id)
        self._history.append(report)
        return report

    def remove(self, indices: Sequence[int]) -> int:
        """Delete the queries at ``indices``; returns the new log length.

        The session's warm-start carry — compiled sequences, carried
        search tree, prior best/elites — is shrunk in place with bounded
        recompute, not dropped (see
        :meth:`repro.serve.IncrementalGenerator.remove`).
        """
        self._engine._touch_session(self.session_id)
        return self._engine._incremental_service().remove(
            indices, session_id=self.session_id
        )

    def retain(
        self,
        last_n: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> int:
        """Apply a retention window (count and/or age); returns the new length.

        ``retain(last_n=100)`` keeps the 100 most recent queries;
        ``retain(max_age_s=3600)`` drops everything ingested more than
        an hour ago; combining both applies the stricter bound.
        """
        self._engine._touch_session(self.session_id)
        return self._engine._incremental_service().retain(
            last_n=last_n, max_age_s=max_age_s, session_id=self.session_id
        )

    def history(self) -> Tuple[GenerationReport, ...]:
        """Retained reports, oldest first (the engine's ``max_history``
        most recent ones)."""
        return tuple(self._history)

    def drop(self) -> bool:
        """Forget the session's log and warm-start state (history stays)."""
        return self._engine.drop_session(self.session_id)


class Engine:
    """The facade owning all generation/serving state.

    Args:
        screen: target screen (default wide).
        config: generation settings shared by every verb; validated at
            construction (see :class:`~repro.core.GenerationConfig`).
        rules: custom rule engine (default: the paper's full set,
            filtered by ``config.exclude_rules``).
        cache: interface cache to consult/populate (default: fresh LRU).
        router: session router for ingestion (default: 8 shards).
        warm_top_k: elite transposition-table states carried between a
            session's runs (incremental path).
        executor: default batch executor — ``"process"``, ``"thread"``,
            or ``"serial"``.
        max_workers: default batch pool size.
        max_history: reports each :class:`LogSession` retains for
            :meth:`LogSession.history` (oldest dropped first;
            ``None`` = unbounded).
        max_sessions: how many live sessions the engine retains
            (``None`` = unbounded).  Past the bound, the least recently
            *used* session is evicted with its full serving state —
            log stream, warm-start carry, and compiled sequences are
            released through :meth:`drop_session`, so a long-running
            engine's per-session state cannot leak.
    """

    def __init__(
        self,
        screen: Optional[Screen] = None,
        config: Optional[GenerationConfig] = None,
        rules: Optional[RuleEngine] = None,
        cache: Optional[InterfaceCache] = None,
        router: Optional[SessionRouter] = None,
        warm_top_k: int = 4,
        executor: str = "process",
        max_workers: Optional[int] = None,
        max_history: Optional[int] = 64,
        max_sessions: Optional[int] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if warm_top_k < 0:
            raise ValueError(f"warm_top_k must be >= 0, got {warm_top_k}")
        if max_history is not None and max_history < 0:
            raise ValueError(f"max_history must be >= 0 or None, got {max_history}")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1 or None, got {max_sessions}")
        self.screen = screen or Screen.wide()
        self.config = config or GenerationConfig()
        self.rules = rules
        self.cache = cache if cache is not None else InterfaceCache()
        self.router = router if router is not None else SessionRouter()
        self.warm_top_k = warm_top_k
        self.executor = executor
        self.max_workers = max_workers
        self.max_history = max_history
        self.max_sessions = max_sessions
        self._ctx = context_key(self.screen, self.config)
        #: Incremental service backing LogSessions (built on first use —
        #: it requires a warm-start-capable strategy, which one-shot and
        #: batch verbs do not).
        self._incremental: Optional[IncrementalGenerator] = None
        #: Live session handles in least-recently-used order (guarded:
        #: scheduler workers touch sessions from multiple threads).
        self._sessions: "OrderedDict[str, LogSession]" = OrderedDict()
        self._sessions_lock = threading.Lock()
        #: Searches run by the one-shot/batch verbs (the incremental
        #: service keeps its own count; see :attr:`searches_run`).
        self._direct_searches = 0
        #: Restore provenance per rehydrated session (reports carry it).
        self._restored: Dict[str, Dict] = {}
        #: Called with the session id as the LRU bound evicts a session,
        #: *before* its state is dropped — the serving cluster's
        #: :class:`~repro.serve.SnapshotWriter` hooks in here to persist
        #: evicted state (see ``attach_eviction_hook``).
        self.session_evicted_hook = None

    # -- introspection ------------------------------------------------------

    @property
    def strategy(self):
        """The registered spec of the configured strategy."""
        return strategy_spec(self.config.strategy)

    @property
    def searches_run(self) -> int:
        """Actual searches executed (cache hits excluded), all verbs."""
        incremental = (
            self._incremental.searches_run if self._incremental is not None else 0
        )
        return self._direct_searches + incremental

    @property
    def cache_stats(self) -> Dict[str, int]:
        return self.cache.snapshot()

    @property
    def ingest_stats(self) -> Dict[str, int]:
        """Ingest-path counters: process-wide memo/intern activity plus
        the per-stream parse/dedup totals of this engine's sessions."""
        stats = INGEST.snapshot()
        stats.update(self.router.ingest_totals())
        return stats

    @staticmethod
    def workload(name: str, *args, **kwargs):
        """Generate a registered workload log by name (e.g. ``"sdss"``)."""
        import repro.workloads  # noqa: F401  (registers the built-ins)

        return get_workload(name)(*args, **kwargs)

    # -- one-shot -----------------------------------------------------------

    def generate(
        self,
        queries: Sequence[Union[str, Node]],
        warm_states: Sequence = (),
    ) -> GenerationReport:
        """One-shot, cache-aware generation for a full log.

        A log already served by this engine (exactly, or permuted /
        duplicated — the cache key is order-insensitive) returns from
        the cache without searching; otherwise the configured strategy
        runs (capabilities enforced declaratively by the registry) and
        the result is cached for future one-shot *and* session calls.
        """
        t0 = time.perf_counter()
        spans: List[Dict] = []
        with _collecting(spans), _trace("engine.generate"):
            # Key and consult the cache before building any search machinery
            # — a hit must not pay for a cost model or rule engine.
            asts = as_asts(queries)
            key = InterfaceCache.key_for(asts, self.screen, self.config)
            parse_s = time.perf_counter() - t0
            cached = self.cache.get(key)
            if cached is not None:
                report = GenerationReport(
                    result=cached,
                    source="cache",
                    strategy=cached.search.strategy,
                    log_size=len(asts),
                    cache_stats=self.cache_stats,
                    ingest_stats=self.ingest_stats,
                    timings={
                        "parse_s": parse_s,
                        "total_s": time.perf_counter() - t0,
                    },
                )
            else:
                difftree_started = time.perf_counter()
                asts, screen, model, initial, rules = prepare_search(
                    asts, screen=self.screen, config=self.config, engine=self.rules
                )
                difftree_s = time.perf_counter() - difftree_started
                result = run_search(model, initial, rules, self.config, warm_states)
                self._direct_searches += 1
                render_started = time.perf_counter()
                generated = GeneratedInterface(
                    queries=asts, screen=screen, search=result, best=result.best
                )
                self.cache.put(
                    key,
                    generated,
                    query_keys=tuple(wrap_ast(ast).canonical_key for ast in asts),
                    ctx=self._ctx,
                )
                report = GenerationReport(
                    result=generated,
                    source="search",
                    strategy=result.strategy,
                    log_size=len(asts),
                    warm_states_seeded=result.stats.warm_states_seeded,
                    cache_stats=self.cache_stats,
                    ingest_stats=self.ingest_stats,
                    timings={
                        "parse_s": parse_s,
                        "difftree_s": difftree_s,
                        "search_s": result.elapsed,
                        "render_s": time.perf_counter() - render_started,
                        "total_s": time.perf_counter() - t0,
                    },
                )
        report.trace = spans
        _emit_report(report, verb="generate")
        return report

    # -- sessions -----------------------------------------------------------

    def session(self, session_id: str = DEFAULT_SESSION) -> LogSession:
        """The (shared) handle for one serving session.

        Requires a warm-start-capable strategy — the capability the
        incremental path is built on; others raise at first use.

        With ``max_sessions`` set, looking up (or creating) a session
        refreshes its recency, and the least recently used sessions past
        the bound are evicted via :meth:`drop_session` — releasing their
        log streams *and* the incremental service's warm-start carry,
        not just the handle.
        """
        self._incremental_service()  # fail fast on incapable strategies
        evicted: List[str] = []
        with self._sessions_lock:
            handle = self._sessions.get(session_id)
            if handle is None:
                handle = LogSession(self, session_id)
                self._sessions[session_id] = handle
            self._sessions.move_to_end(session_id)
            if self.max_sessions is not None:
                while len(self._sessions) > self.max_sessions:
                    old_id, _ = self._sessions.popitem(last=False)
                    evicted.append(old_id)
        for old_id in evicted:
            # Outside the handle lock: eviction must also drop the
            # warm-start/compiled-sequence carry and the log stream, or
            # a bounded session table still leaks serving state.  The
            # eviction hook sees the session while its state is intact.
            if self.session_evicted_hook is not None:
                self.session_evicted_hook(old_id)
            self._drop_session_state(old_id)
        return handle

    def sessions(self) -> List[str]:
        """Ids of every session the router currently holds."""
        return self.router.sessions()

    def drop_session(self, session_id: str) -> bool:
        """Forget a session's log and warm-start state."""
        with self._sessions_lock:
            self._sessions.pop(session_id, None)
        self._restored.pop(session_id, None)
        return self._drop_session_state(session_id)

    def _touch_session(self, session_id: str) -> None:
        """Refresh a session's LRU recency on actual use.

        ``max_sessions`` eviction must track *use* (appends and serves
        through a retained handle), not just :meth:`session` lookups —
        otherwise an actively-served session could be evicted mid-
        conversation while its idle siblings survive.
        """
        with self._sessions_lock:
            if session_id in self._sessions:
                self._sessions.move_to_end(session_id)

    def _drop_session_state(self, session_id: str) -> bool:
        """Release everything beyond the handle (stream + warm carry)."""
        if self._incremental is not None:
            return self._incremental.drop_session(session_id)
        return self.router.drop(session_id)

    def scheduler(
        self,
        slice_iterations: Optional[int] = 16,
        slice_s: Optional[float] = None,
        policy: str = "round_robin",
        max_active: Optional[int] = None,
    ) -> SessionScheduler:
        """A :class:`~repro.engine.scheduler.SessionScheduler` over this engine.

        The concurrent-serving verb: submit many sessions' growing-log
        scripts and let the scheduler time-slice their searches fairly
        instead of serving them FIFO.  Shares the engine's cache,
        router, and warm-start state, so scheduler-served sessions mix
        freely with :meth:`generate` / :meth:`session` calls.

        Args:
            slice_iterations: search iterations per slice (``None`` =
                slice only by ``slice_s``/completion).
            slice_s: optional wall-clock bound per slice.
            policy: ``"round_robin"`` (fair rotation), ``"deadline"``
                (earliest target latency first), or ``"fifo"``
                (no preemption — the blocking baseline).
            max_active: admission control — concurrent sessions holding
                search state (``None`` = unlimited).
        """
        return SessionScheduler(
            self,
            slice_iterations=slice_iterations,
            slice_s=slice_s,
            policy=policy,
            max_active=max_active,
        )

    def cluster(
        self,
        workers: int = 4,
        store: Optional[str] = None,
        snapshot_every: int = 1,
        slice_iterations: Optional[int] = 16,
        policy: str = "round_robin",
        start_method: Optional[str] = None,
    ):
        """A :class:`~repro.serve.cluster.ClusterFront` over this config.

        The sharded multi-process serving verb: ``workers`` processes
        each run a :class:`~repro.engine.scheduler.SessionScheduler`
        over their hash slice of the submitted sessions, snapshotting
        warm state into ``store`` (a SQLite path; ``None`` = a
        temporary file the front owns) at delivered-interface
        boundaries so survivors can rehydrate a dead worker's sessions
        mid-conversation.

        Workers rebuild their serving state from ``screen``/``config``
        in their own process — custom ``rules``/``cache``/``router``
        objects do not transfer and raise here.
        """
        if self.rules is not None:
            raise ValueError(
                "cluster workers rebuild their rule engine from config; "
                "custom rules objects are not supported "
                "(use GenerationConfig.exclude_rules)"
            )
        from ..serve.cluster import ClusterFront

        return ClusterFront(
            screen=self.screen,
            config=self.config,
            workers=workers,
            store=store,
            snapshot_every=snapshot_every,
            slice_iterations=slice_iterations,
            policy=policy,
            start_method=start_method,
        )

    # -- snapshots ----------------------------------------------------------

    def snapshot_session(
        self,
        session_id: str = DEFAULT_SESSION,
        accounting: Optional[Dict] = None,
    ):
        """Capture a session's full warm state as a durable
        :class:`~repro.serve.SessionSnapshot` (see its docs for the
        restore contract)."""
        from ..serve.snapshot import SessionSnapshot

        return SessionSnapshot.capture(self, session_id, accounting=accounting)

    def restore_snapshot(self, snapshot) -> LogSession:
        """Rebuild a snapshotted session in this engine; returns its handle.

        Accepts a :class:`~repro.serve.SessionSnapshot` or a raw payload
        dict.  Existing state under the same id is replaced.  Raises
        :class:`~repro.serve.SnapshotError` on version/context mismatch
        or corrupt state.
        """
        from ..serve.snapshot import SessionSnapshot

        if isinstance(snapshot, dict):
            snapshot = SessionSnapshot.from_payload(snapshot)
        session_id = snapshot.restore(self)
        return self.session(session_id)

    def _note_restored(self, session_id: str, info: Dict) -> None:
        """Record restore provenance (reports for the session carry it)."""
        self._restored[session_id] = dict(info)

    def restored_session(self, session_id: str) -> Optional[Dict]:
        """Restore provenance for a session (None when never restored)."""
        return self._restored.get(session_id)

    def _incremental_service(self) -> IncrementalGenerator:
        if self._incremental is None:
            self._incremental = IncrementalGenerator(
                screen=self.screen,
                config=self.config,
                engine=self.rules,
                cache=self.cache,
                router=self.router,
                warm_top_k=self.warm_top_k,
            )
        return self._incremental

    def _session_interface(self, session_id: str) -> GenerationReport:
        service = self._incremental_service()
        t0 = time.perf_counter()
        spans: List[Dict] = []
        with _collecting(spans), _trace("engine.session.interface", session=session_id):
            pending = service.open_search(session_id)
            searched = pending.cached is None
            if searched:
                pending.task.step()
            generated = pending.finish()
        timings = dict(pending.timings)
        timings["total_s"] = time.perf_counter() - t0
        report = GenerationReport(
            result=generated,
            source="search" if searched else "cache",
            strategy=generated.search.strategy,
            session_id=session_id,
            log_size=len(generated.queries),
            warm_states_seeded=(
                generated.search.stats.warm_states_seeded if searched else 0
            ),
            cache_stats=self.cache_stats,
            ingest_stats=self.ingest_stats,
            timings=timings,
            snapshot=self._restored.get(session_id),
            carry=pending.carry if searched else None,
        )
        report.trace = spans
        _emit_report(report, verb="session.interface")
        return report

    # -- batch --------------------------------------------------------------

    def generate_batch(
        self,
        logs: Sequence[Sequence[QueryLike]],
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> List[GenerationReport]:
        """One interface per log, fanned across the worker pool.

        Results come back in input order and are inserted into the
        engine's cache, so follow-up one-shot or session calls over the
        same logs are hits.
        """
        t0 = time.perf_counter()
        spans: List[Dict] = []
        with _collecting(spans), _trace("engine.generate_batch", logs=len(logs)):
            results = generate_interfaces_batch(
                logs,
                screen=self.screen,
                config=self.config,
                max_workers=(
                    max_workers if max_workers is not None else self.max_workers
                ),
                executor=executor or self.executor,
            )
        total_s = time.perf_counter() - t0
        reports = []
        for generated in results:
            self._direct_searches += 1
            key = InterfaceCache.key_for(generated.queries, self.screen, self.config)
            self.cache.put(
                key,
                generated,
                query_keys=tuple(
                    wrap_ast(ast).canonical_key for ast in generated.queries
                ),
                ctx=self._ctx,
            )
            report = GenerationReport(
                result=generated,
                source="batch",
                strategy=generated.search.strategy,
                log_size=len(generated.queries),
                cache_stats=self.cache_stats,
                ingest_stats=self.ingest_stats,
                timings={
                    "total_s": total_s,
                    "search_s": generated.search.elapsed,
                },
            )
            # The batch ran as one fanned-out phase; every lane's report
            # carries the shared batch-level spans.
            report.trace = list(spans)
            reports.append(report)
            _emit_report(report, verb="generate_batch")
        return reports
