"""repro.engine — the session-oriented front door.

One :class:`Engine` owns the rule engine, parse caches, interface
cache, warm-start state, and worker pool, and exposes the three verbs
of the serving story::

    from repro.engine import Engine

    engine = Engine()
    report = engine.generate(log)              # one-shot (cache-aware)

    session = engine.session("analyst-42")     # long-lived handle
    session.append("select objid from stars where u between 0 and 30")
    report = session.interface()               # incremental + warm-started
    print(report.ascii_art, report.to_dict()["provenance"])

    reports = engine.generate_batch([log_a, log_b])   # process-pool fan-out

    scheduler = engine.scheduler()             # concurrent multi-session serving
    scheduler.submit("analyst-1", [log_a[:5], log_a[5:]])
    scheduler.submit("analyst-2", [log_b])
    tickets = scheduler.run()                  # time-sliced, fair, warm-started

Every verb returns a :class:`GenerationReport` — the uniform
JSON-serializable envelope (scheduler deliveries add scheduling
provenance).  Strategies and workloads are resolved through the
pluggable registries in :mod:`repro.registry`.
"""

from ..registry import (
    StrategySpec,
    WorkloadSpec,
    get_workload,
    register_strategy,
    register_workload,
    strategy_names,
    strategy_spec,
    workload_names,
    workload_spec,
)
from .core import Engine, LogSession
from .report import REPORT_SCHEMA_VERSION, SOURCES, GenerationReport
from .scheduler import POLICIES, TICKET_STATES, SessionScheduler, SessionTicket

__all__ = [
    "Engine",
    "LogSession",
    "GenerationReport",
    "REPORT_SCHEMA_VERSION",
    "SOURCES",
    "SessionScheduler",
    "SessionTicket",
    "POLICIES",
    "TICKET_STATES",
    "StrategySpec",
    "WorkloadSpec",
    "register_strategy",
    "register_workload",
    "strategy_spec",
    "strategy_names",
    "workload_spec",
    "workload_names",
    "get_workload",
]
