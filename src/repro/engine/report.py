"""The structured result envelope every Engine entry point returns.

:class:`GenerationReport` wraps the rich in-process
:class:`~repro.core.GeneratedInterface` with the serving metadata a
caller (or a future HTTP layer) needs to interpret it: where the answer
came from (fresh search vs. cache), how it was warm-started, what the
search did (iterations, kernel counters), and how long each phase took.
``to_dict()`` flattens the whole envelope into plain JSON-serializable
types — the stable wire contract.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import GeneratedInterface

#: Bump when the ``to_dict`` wire shape changes.  Version 2 added the
#: ``trace`` section and guaranteed per-phase ``timings`` keys; version
#: 3 added ``provenance.snapshot`` (set when the session was rehydrated
#: from a durable snapshot); version 4 added ``provenance.carry`` (set
#: when the search rebased a carried tree — nodes carried / invalidated
#: / re-keyed / reopened).  All additive, so older consumers keep
#: reading newer envelopes.
REPORT_SCHEMA_VERSION = 4

#: Phase keys every report's ``timings`` dict carries (0.0 when a phase
#: did not run for that verb — e.g. a cache hit searches for 0 s).
TIMING_PHASES = ("parse_s", "difftree_s", "search_s", "render_s")

#: Where a report's interface came from.
SOURCES = ("search", "cache", "batch")


def _jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples into JSON-native types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class GenerationReport:
    """One generation outcome plus its serving provenance.

    Attributes:
        result: the full in-process interface (difftree, widget tree,
            search diagnostics) — everything the legacy API returned.
        source: ``"search"`` (a search ran for this call), ``"cache"``
            (served from :class:`~repro.serve.InterfaceCache` with zero
            new search work), or ``"batch"`` (one lane of a batch run).
        strategy: the search strategy that produced the interface (for
            cache hits: the strategy of the original run).
        session_id: serving session the report belongs to, if any.
        log_size: how many queries the interface expresses.
        warm_states_seeded: warm-start states injected into this call's
            search (0 for cold runs and cache hits).
        cache_stats: snapshot of the owning cache's counters at serve
            time (empty when the entry point has no cache).
        ingest_stats: snapshot of the process-wide ingest counters
            (:data:`repro.memo.INGEST`) at serve time — parses, intern
            hits, anti-unify/graft/expressibility memo hits, and
            dedup-skipped appends (empty when the entry point does not
            sample them).  Additive to schema_version 1.
        timings: wall-clock phases in seconds; always has ``total_s``
            plus every key in :data:`TIMING_PHASES` (defaulted to 0.0
            for phases that did not run).
        trace: per-phase span records collected while producing this
            interface when :mod:`repro.obs` is enabled (empty
            otherwise).  Each record is
            ``{"name", "ts", "duration_s", "tags"?}``.  Additive to
            schema_version 2.
        scheduling: scheduler provenance when the interface was produced
            by a :class:`~repro.engine.SessionScheduler` (``None``
            otherwise): the policy, how long the session waited for
            admission (``queue_wait_s``), submission-to-delivery
            ``latency_s``, and how the search was sliced (``slices``,
            ``preemptions``, ``iterations``).
        snapshot: restore provenance when the serving session was
            rehydrated from a durable
            :class:`~repro.serve.SessionSnapshot` (``None`` for never-
            restored sessions): the restored generation and snapshot
            schema version.  Additive to schema_version 3.
        carry: search-tree carry provenance when this call's search
            rebased a carried tree (``None`` for cold runs, cache hits,
            and gate-off runs): nodes carried / invalidated / re-keyed /
            reopened plus the append size the rebase diffed.  Additive
            to schema_version 4.
    """

    result: GeneratedInterface
    source: str = "search"
    strategy: str = ""
    session_id: Optional[str] = None
    log_size: int = 0
    warm_states_seeded: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    ingest_stats: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    scheduling: Optional[Dict[str, Any]] = None
    trace: List[Dict[str, Any]] = field(default_factory=list)
    snapshot: Optional[Dict[str, Any]] = None
    carry: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValueError(f"source must be one of {SOURCES}, got {self.source!r}")
        for phase in TIMING_PHASES:
            self.timings.setdefault(phase, 0.0)

    # -- convenience passthroughs (the legacy surface) ----------------------

    @property
    def cost(self) -> float:
        return self.result.cost

    @property
    def feasible(self) -> bool:
        return self.result.best.breakdown.feasible

    @property
    def ascii_art(self) -> str:
        return self.result.ascii_art

    @property
    def difftree(self):
        return self.result.difftree

    @property
    def widget_tree(self):
        return self.result.widget_tree

    @property
    def search(self):
        """The underlying :class:`~repro.search.SearchResult`."""
        return self.result.search

    def html(self, title: str = "Generated interface") -> str:
        return self.result.html(title=title)

    # -- the wire contract --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serializable envelope (stable keys, plain types)."""
        search = self.result.search
        history: List[Tuple[float, float]] = search.history
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "source": self.source,
            "strategy": self.strategy or search.strategy,
            "session_id": self.session_id,
            "log_size": self.log_size or len(self.result.queries),
            "cost": self.cost,
            "feasible": self.feasible,
            "ascii_art": self.ascii_art,
            "screen": _jsonable(self.result.screen),
            "breakdown": _jsonable(self.result.best.breakdown),
            "search": {
                "strategy": search.strategy,
                "elapsed_s": search.elapsed,
                "history": _jsonable(history),
                "stats": _jsonable(search.stats),
            },
            "provenance": {
                "source": self.source,
                "warm_states_seeded": self.warm_states_seeded,
                "cache": dict(self.cache_stats),
                "ingest": dict(self.ingest_stats),
                "snapshot": (
                    _jsonable(dict(self.snapshot))
                    if self.snapshot is not None
                    else None
                ),
                "carry": (
                    _jsonable(dict(self.carry))
                    if self.carry is not None
                    else None
                ),
            },
            "scheduling": (
                _jsonable(dict(self.scheduling))
                if self.scheduling is not None
                else None
            ),
            "timings": dict(self.timings),
            "trace": _jsonable(self.trace),
        }
