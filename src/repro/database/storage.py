"""In-memory columnar storage.

A :class:`Table` stores named columns of equal length; a :class:`Database`
is a catalog of tables.  This is the execution substrate that generated
interfaces run their current query against when the user interacts with a
widget.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class SchemaError(Exception):
    """Raised for malformed tables or unknown tables/columns."""


class Table:
    """An immutable, column-oriented table.

    Args:
        name: table name, used in FROM clauses.
        columns: ordered mapping from column name to its values.  All
            columns must have equal length.
    """

    def __init__(self, name: str, columns: Mapping[str, Sequence[Any]]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(
                f"table {name!r} has ragged columns (lengths {sorted(lengths)})"
            )
        self.name = name
        self._columns: Dict[str, List[Any]] = {
            col: list(values) for col, values in columns.items()
        }
        self._nrows = lengths.pop() if lengths else 0

    # -- shape ----------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> List[Any]:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r} "
                f"(columns: {', '.join(self._columns)})"
            ) from None

    def column_type(self, name: str) -> type:
        """Best-effort Python type of a column (type of first non-null)."""
        for value in self.column(name):
            if value is not None:
                return type(value)
        return type(None)

    # -- access ---------------------------------------------------------------

    def row(self, index: int) -> Dict[str, Any]:
        return {col: values[index] for col, values in self._columns.items()}

    def rows(self) -> Iterator[Dict[str, Any]]:
        for i in range(self._nrows):
            yield self.row(i)

    def select_rows(self, indexes: Iterable[int]) -> "Table":
        """Return a new table containing only the given row indexes."""
        index_list = list(indexes)
        return Table(
            self.name,
            {
                col: [values[i] for i in index_list]
                for col, values in self._columns.items()
            },
        )

    def __len__(self) -> int:
        return self._nrows

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {self.num_rows} rows x "
            f"{self.num_columns} cols)"
        )


class Database:
    """A named collection of tables."""

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: Dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"unknown table {name!r} (tables: {', '.join(self._tables)})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def __repr__(self) -> str:
        return f"Database(tables={self.table_names})"


class ResultSet:
    """The output of executing a query: named columns plus row count."""

    def __init__(self, columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row width {len(row)} != header width {len(self.columns)}"
                )

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise SchemaError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={self.num_rows})"
