"""In-memory database substrate: columnar storage and a SQL executor.

Generated interfaces hold a *current query*; every widget interaction
rewrites that query and re-executes it here to refresh the visualization.
"""

from .executor import AGGREGATES, ExecutionError, execute
from .storage import Database, ResultSet, SchemaError, Table

__all__ = [
    "Table",
    "Database",
    "ResultSet",
    "SchemaError",
    "ExecutionError",
    "execute",
    "AGGREGATES",
]
