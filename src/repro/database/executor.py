"""Query executor for the SQL subset over in-memory tables.

Supports the full AST the parser produces: projections (columns, ``*``,
aggregate functions, aliases), TOP/LIMIT, WHERE with AND/OR/NOT,
comparisons, BETWEEN and IN, GROUP BY, and ORDER BY.  Multi-table FROM
clauses are executed as cross products (sufficient for the paper's
workloads, which are single-table).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sqlast import nodes as N
from .storage import Database, ResultSet, SchemaError, Table


class ExecutionError(Exception):
    """Raised when a semantically invalid query is executed."""


AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": len,
    "sum": lambda xs: sum(xs) if xs else 0,
    "avg": lambda xs: (sum(xs) / len(xs)) if xs else None,
    "min": lambda xs: min(xs) if xs else None,
    "max": lambda xs: max(xs) if xs else None,
}


def execute(db: Database, query: N.Node) -> ResultSet:
    """Execute a ``Select`` AST against ``db`` and return a result set."""
    if query.label != N.SELECT:
        raise ExecutionError(f"can only execute Select, got {query.label}")
    from_ = query.child_by_label(N.FROM)
    if from_ is None or not from_.children:
        raise ExecutionError("query has no FROM clause")
    rows = _scan(db, from_)

    where = query.child_by_label(N.WHERE)
    if where is not None:
        predicate = where.children[0]
        rows = [row for row in rows if _eval_pred(predicate, row)]

    project = query.child_by_label(N.PROJECT)
    if project is None:
        raise ExecutionError("query has no projection")
    group = query.child_by_label(N.GROUPBY)
    if group is not None or _has_aggregate(project):
        header, out_rows = _aggregate(project, group, rows)
    else:
        header, out_rows = _project(project, rows)

    order = query.child_by_label(N.ORDERBY)
    if order is not None:
        out_rows = _order(order, header, out_rows)

    top = query.child_by_label(N.TOP)
    if top is not None:
        out_rows = out_rows[: int(top.value)]
    lim = query.child_by_label(N.LIMIT)
    if lim is not None:
        out_rows = out_rows[: int(lim.value)]
    return ResultSet(header, out_rows)


# -- scanning ----------------------------------------------------------------


def _scan(db: Database, from_: N.Node) -> List[Dict[str, Any]]:
    tables = [db.table(str(t.value)) for t in from_.children]
    rows: List[Dict[str, Any]] = [{}]
    for table in tables:
        rows = [
            {**left, **_qualify(table, i)}
            for left in rows
            for i in range(table.num_rows)
        ]
    return rows


def _qualify(table: Table, index: int) -> Dict[str, Any]:
    row = table.row(index)
    qualified = {f"{table.name}.{col}": val for col, val in row.items()}
    qualified.update(row)
    return qualified


# -- expressions -------------------------------------------------------------


def _eval_expr(expr: N.Node, row: Dict[str, Any]) -> Any:
    label = expr.label
    if label == N.COLEXPR:
        name = str(expr.value)
        if name not in row:
            raise ExecutionError(f"unknown column {name!r}")
        return row[name]
    if label == N.NUMEXPR or label == N.STREXPR:
        return expr.value
    raise ExecutionError(f"cannot evaluate expression node {label!r}")


def _eval_pred(pred: N.Node, row: Dict[str, Any]) -> bool:
    label = pred.label
    if label == N.AND:
        return all(_eval_pred(c, row) for c in pred.children)
    if label == N.OR:
        return any(_eval_pred(c, row) for c in pred.children)
    if label == N.NOT:
        return not _eval_pred(pred.children[0], row)
    if label == N.BIEXPR:
        left = _eval_expr(pred.children[0], row)
        right = _eval_expr(pred.children[1], row)
        return _compare(str(pred.value), left, right)
    if label == N.BETWEEN:
        value = _eval_expr(pred.children[0], row)
        lo = _eval_expr(pred.children[1], row)
        hi = _eval_expr(pred.children[2], row)
        if value is None:
            return False
        return lo <= value <= hi
    if label == N.INLIST:
        value = _eval_expr(pred.children[0], row)
        options = [_eval_expr(c, row) for c in pred.children[1:]]
        return value in options
    raise ExecutionError(f"cannot evaluate predicate node {label!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown operator {op!r}")


# -- projection / aggregation --------------------------------------------------


def _has_aggregate(project: N.Node) -> bool:
    return any(
        node.label == N.FUNC and str(node.value) in AGGREGATES
        for node in project.walk()
    )


def _item_name(item: N.Node) -> str:
    if item.label == N.ALIAS:
        return str(item.value)
    if item.label == N.COLEXPR:
        return str(item.value)
    if item.label == N.FUNC:
        inner = item.children[0]
        arg = "*" if inner.label == N.STAR else str(inner.value)
        return f"{item.value}({arg})"
    if item.label == N.STAR:
        return "*"
    if item.label in (N.NUMEXPR, N.STREXPR):
        return str(item.value)
    raise ExecutionError(f"cannot name projection item {item.label!r}")


def _project(
    project: N.Node, rows: List[Dict[str, Any]]
) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    items = list(project.children)
    if any(item.label == N.STAR for item in items):
        if rows:
            header = sorted(k for k in rows[0] if "." not in k)
        else:
            header = []
        non_star = [i for i in items if i.label != N.STAR]
        header = header + [_item_name(i) for i in non_star]
        out = [
            tuple(row[c] for c in header[: len(header) - len(non_star)])
            + tuple(_eval_expr(_unalias(i), row) for i in non_star)
            for row in rows
        ]
        return header, out
    header = [_item_name(i) for i in items]
    out = [tuple(_eval_expr(_unalias(i), row) for i in items) for row in rows]
    return header, out


def _unalias(item: N.Node) -> N.Node:
    return item.children[0] if item.label == N.ALIAS else item


def _aggregate(
    project: N.Node, group: Optional[N.Node], rows: List[Dict[str, Any]]
) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    group_cols = [str(c.value) for c in group.children] if group is not None else []
    groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
    if group_cols:
        for row in rows:
            key = tuple(row.get(c) for c in group_cols)
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = rows

    header = [_item_name(i) for i in project.children]
    out_rows: List[Tuple[Any, ...]] = []
    for key in sorted(groups, key=_sort_key):
        bucket = groups[key]
        out_row = []
        for item in project.children:
            expr = _unalias(item)
            out_row.append(_eval_agg_item(expr, group_cols, key, bucket))
        out_rows.append(tuple(out_row))
    return header, out_rows


def _eval_agg_item(
    expr: N.Node,
    group_cols: List[str],
    key: Tuple[Any, ...],
    bucket: List[Dict[str, Any]],
) -> Any:
    if expr.label == N.COLEXPR:
        name = str(expr.value)
        if name not in group_cols:
            raise ExecutionError(
                f"column {name!r} must appear in GROUP BY or an aggregate"
            )
        return key[group_cols.index(name)]
    if expr.label == N.FUNC:
        fname = str(expr.value)
        if fname not in AGGREGATES:
            raise ExecutionError(f"unknown aggregate {fname!r}")
        arg = expr.children[0]
        if arg.label == N.STAR:
            values: List[Any] = [1] * len(bucket)
        else:
            values = [
                row[str(arg.value)]
                for row in bucket
                if row.get(str(arg.value)) is not None
            ]
        return AGGREGATES[fname](values)
    if expr.label in (N.NUMEXPR, N.STREXPR):
        return expr.value
    raise ExecutionError(f"cannot aggregate over node {expr.label!r}")


def _order(
    order: N.Node, header: List[str], rows: List[Tuple[Any, ...]]
) -> List[Tuple[Any, ...]]:
    for item in reversed(order.children):
        name = str(item.children[0].value)
        if name not in header:
            raise ExecutionError(f"ORDER BY column {name!r} not in output")
        index = header.index(name)
        rows = sorted(
            rows,
            key=lambda row: _sort_key((row[index],)),
            reverse=(item.value == "desc"),
        )
    return rows


def _sort_key(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Total-order key tolerant of None and mixed types."""
    out = []
    for v in values:
        if v is None:
            out.append((0, 0, ""))
        elif isinstance(v, (int, float)) and not isinstance(v, bool):
            out.append((1, v if not math.isnan(v) else math.inf, ""))
        else:
            out.append((2, 0, str(v)))
    return tuple(out)
