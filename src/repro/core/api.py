"""The library front door: one call from query log to interface.

    from repro import generate_interface, Screen

    result = generate_interface(
        ["select a from t where x < 1", "select b from t where x < 2"],
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=10.0),
    )
    print(result.ascii_art)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..cost import CostModel, CostWeights, EvaluatedInterface
from ..database import Database
from ..difftree import DTNode, as_asts, initial_difftree
from ..interface import InterfaceSession, render_ascii, render_html
from ..layout import Screen
from ..rules import RuleEngine, default_engine
from ..search import (
    MCTSConfig,
    SearchResult,
    beam_search,
    exhaustive_search,
    greedy_search,
    mcts_search,
    random_search,
)
from ..sqlast import Node

STRATEGIES = ("mcts", "random", "greedy", "beam", "exhaustive")


@dataclass(frozen=True)
class GenerationConfig:
    """End-to-end generation settings.

    Attributes:
        strategy: search strategy (``"mcts"`` is the paper's).
        time_budget_s: wall-clock search budget (paper used ~60 s).
        k_assignments: widget-assignment samples per state reward.
        exploration_c: UCT exploration constant (MCTS only).
        max_walk_steps: random-walk cap (paper: 200).
        seed: RNG seed for reproducible generation.
        weights: cost-term weights.
        exclude_rules: rule names to disable (ablations).
        final_cap: widget-enumeration cap for the final phase.
    """

    strategy: str = "mcts"
    time_budget_s: float = 5.0
    k_assignments: int = 5
    exploration_c: float = 1.4
    max_walk_steps: int = 200
    seed: int = 0
    weights: CostWeights = field(default_factory=CostWeights)
    exclude_rules: Sequence[str] = ()
    final_cap: int = 4000


@dataclass
class GeneratedInterface:
    """Everything a caller needs from one generation run."""

    queries: List[Node]
    screen: Screen
    search: SearchResult
    best: EvaluatedInterface

    @property
    def cost(self) -> float:
        return self.best.cost

    @property
    def difftree(self) -> DTNode:
        return self.best.tree

    @property
    def widget_tree(self):
        return self.best.widget_tree

    @property
    def ascii_art(self) -> str:
        return render_ascii(self.best.widget_tree)

    def html(self, title: str = "Generated interface") -> str:
        return render_html(self.best.widget_tree, title=title)

    def session(self, db: Optional[Database] = None) -> InterfaceSession:
        """Open an interactive session on this interface."""
        return InterfaceSession(
            self.difftree,
            self.widget_tree,
            db=db,
            initial_query=self.queries[0],
        )


def generate_interface(
    queries: Sequence[Union[str, Node]],
    screen: Optional[Screen] = None,
    config: GenerationConfig = GenerationConfig(),
    engine: Optional[RuleEngine] = None,
) -> GeneratedInterface:
    """Generate an interactive interface for a SQL query log.

    Args:
        queries: the input log — SQL strings or pre-parsed ASTs, in
            session order (order matters: the ``U`` cost models stepping
            through the log sequentially).
        screen: output screen constraint (default: wide).
        config: generation settings.
        engine: custom rule engine (default: the paper's full rule set,
            optionally filtered by ``config.exclude_rules``).

    Returns:
        A :class:`GeneratedInterface` bundling the winning difftree,
        widget tree, cost, and search diagnostics.
    """
    asts = as_asts(queries)
    screen = screen or Screen.wide()
    engine = engine or default_engine(exclude=config.exclude_rules or None)
    model = CostModel(asts, screen, weights=config.weights)
    initial = initial_difftree(asts)

    if config.strategy == "mcts":
        result = mcts_search(
            model,
            initial,
            engine=engine,
            config=MCTSConfig(
                exploration_c=config.exploration_c,
                max_walk_steps=config.max_walk_steps,
                k_assignments=config.k_assignments,
                time_budget_s=config.time_budget_s,
                seed=config.seed,
                final_cap=config.final_cap,
            ),
        )
    elif config.strategy == "random":
        result = random_search(
            model,
            initial,
            engine=engine,
            time_budget_s=config.time_budget_s,
            max_walk_steps=config.max_walk_steps,
            k_assignments=config.k_assignments,
            seed=config.seed,
            final_cap=config.final_cap,
        )
    elif config.strategy == "greedy":
        result = greedy_search(
            model,
            initial,
            engine=engine,
            time_budget_s=config.time_budget_s,
            k_assignments=config.k_assignments,
            seed=config.seed,
            final_cap=config.final_cap,
        )
    elif config.strategy == "beam":
        result = beam_search(
            model,
            initial,
            engine=engine,
            time_budget_s=config.time_budget_s,
            k_assignments=config.k_assignments,
            seed=config.seed,
            final_cap=config.final_cap,
        )
    elif config.strategy == "exhaustive":
        result = exhaustive_search(
            model,
            initial,
            engine=engine,
            k_assignments=config.k_assignments,
            seed=config.seed,
            final_cap=config.final_cap,
        )
    else:
        raise ValueError(
            f"unknown strategy {config.strategy!r} (have: {', '.join(STRATEGIES)})"
        )
    return GeneratedInterface(
        queries=asts, screen=screen, search=result, best=result.best
    )
