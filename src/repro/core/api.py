"""The library front door: one call from query log to interface.

    from repro import generate_interface, Screen

    result = generate_interface(
        ["select a from t where x < 1", "select b from t where x < 2"],
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=10.0),
    )
    print(result.ascii_art)

For repeated generation over a growing log, see :mod:`repro.serve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..cost import CostModel, CostWeights, EvaluatedInterface
from ..database import Database
from ..difftree import DTNode, as_asts, initial_difftree
from ..interface import InterfaceSession, render_ascii, render_html
from ..layout import Screen
from ..rules import RuleEngine, default_engine
from ..search import (
    MCTSConfig,
    SearchResult,
    beam_search,
    exhaustive_search,
    greedy_search,
    mcts_search,
    random_search,
)
from ..sqlast import Node


@dataclass(frozen=True)
class GenerationConfig:
    """End-to-end generation settings.

    Attributes:
        strategy: search strategy (``"mcts"`` is the paper's).
        time_budget_s: wall-clock search budget (paper used ~60 s).
        k_assignments: widget-assignment samples per state reward.
        exploration_c: UCT exploration constant (MCTS only).
        max_walk_steps: random-walk cap (paper: 200).
        max_iterations: hard iteration cap, 0 = unlimited (MCTS only;
            useful for deterministic equal-work comparisons).
        seed: RNG seed for reproducible generation.
        weights: cost-term weights.
        exclude_rules: rule names to disable (ablations).
        final_cap: widget-enumeration cap for the final phase.
    """

    strategy: str = "mcts"
    time_budget_s: float = 5.0
    k_assignments: int = 5
    exploration_c: float = 1.4
    max_walk_steps: int = 200
    max_iterations: int = 0
    seed: int = 0
    weights: CostWeights = field(default_factory=CostWeights)
    exclude_rules: Sequence[str] = ()
    final_cap: int = 4000


@dataclass
class GeneratedInterface:
    """Everything a caller needs from one generation run."""

    queries: List[Node]
    screen: Screen
    search: SearchResult
    best: EvaluatedInterface

    @property
    def cost(self) -> float:
        return self.best.cost

    @property
    def difftree(self) -> DTNode:
        return self.best.tree

    @property
    def widget_tree(self):
        return self.best.widget_tree

    @property
    def ascii_art(self) -> str:
        return render_ascii(self.best.widget_tree)

    def html(self, title: str = "Generated interface") -> str:
        return render_html(self.best.widget_tree, title=title)

    def session(self, db: Optional[Database] = None) -> InterfaceSession:
        """Open an interactive session on this interface."""
        return InterfaceSession(
            self.difftree,
            self.widget_tree,
            db=db,
            initial_query=self.queries[0],
        )


def as_mcts_config(config: GenerationConfig) -> MCTSConfig:
    """Project the end-to-end settings onto the MCTS tunables."""
    return MCTSConfig(
        exploration_c=config.exploration_c,
        max_walk_steps=config.max_walk_steps,
        k_assignments=config.k_assignments,
        time_budget_s=config.time_budget_s,
        max_iterations=config.max_iterations,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def prepare_search(
    queries: Sequence[Union[str, Node]],
    screen: Optional[Screen] = None,
    config: Optional[GenerationConfig] = None,
    engine: Optional[RuleEngine] = None,
) -> Tuple[List[Node], Screen, CostModel, DTNode, RuleEngine]:
    """Build the shared search ingredients for a query log.

    Used by :func:`generate_interface` and by :mod:`repro.serve`, which
    drives the search itself (to warm-start and to keep the node table).
    """
    config = config or GenerationConfig()
    asts = as_asts(queries)
    screen = screen or Screen.wide()
    engine = engine or default_engine(exclude=config.exclude_rules or None)
    model = CostModel(asts, screen, weights=config.weights)
    initial = initial_difftree(asts)
    return asts, screen, model, initial, engine


def _require_cold(warm_states: Sequence[DTNode], strategy: str) -> None:
    if warm_states:
        raise ValueError(f"warm_states requires strategy 'mcts', not {strategy!r}")


def _run_mcts(model, initial, engine, config, warm_states):
    return mcts_search(
        model,
        initial,
        engine=engine,
        config=as_mcts_config(config),
        warm_states=warm_states,
    )


def _run_random(model, initial, engine, config, warm_states):
    _require_cold(warm_states, "random")
    return random_search(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        max_walk_steps=config.max_walk_steps,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def _run_greedy(model, initial, engine, config, warm_states):
    _require_cold(warm_states, "greedy")
    return greedy_search(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def _run_beam(model, initial, engine, config, warm_states):
    _require_cold(warm_states, "beam")
    return beam_search(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def _run_exhaustive(model, initial, engine, config, warm_states):
    _require_cold(warm_states, "exhaustive")
    return exhaustive_search(
        model,
        initial,
        engine=engine,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


#: Strategy name -> runner(model, initial, engine, config, warm_states).
_RUNNERS: Dict[str, Callable[..., SearchResult]] = {
    "mcts": _run_mcts,
    "random": _run_random,
    "greedy": _run_greedy,
    "beam": _run_beam,
    "exhaustive": _run_exhaustive,
}

STRATEGIES = tuple(_RUNNERS)


def generate_interface(
    queries: Sequence[Union[str, Node]],
    screen: Optional[Screen] = None,
    config: Optional[GenerationConfig] = None,
    engine: Optional[RuleEngine] = None,
    warm_states: Sequence[DTNode] = (),
) -> GeneratedInterface:
    """Generate an interactive interface for a SQL query log.

    Args:
        queries: the input log — SQL strings or pre-parsed ASTs, in
            session order (order matters: the ``U`` cost models stepping
            through the log sequentially).
        screen: output screen constraint (default: wide).
        config: generation settings (default: ``GenerationConfig()``).
        engine: custom rule engine (default: the paper's full rule set,
            optionally filtered by ``config.exclude_rules``).
        warm_states: known-good difftree states (expressing the full
            log) used to seed the MCTS transposition table and incumbent
            — the warm-start path used by :mod:`repro.serve`.

    Returns:
        A :class:`GeneratedInterface` bundling the winning difftree,
        widget tree, cost, and search diagnostics.
    """
    config = config or GenerationConfig()
    asts, screen, model, initial, engine = prepare_search(
        queries, screen=screen, config=config, engine=engine
    )
    runner = _RUNNERS.get(config.strategy)
    if runner is None:
        raise ValueError(
            f"unknown strategy {config.strategy!r} (have: {', '.join(STRATEGIES)})"
        )
    result = runner(model, initial, engine, config, tuple(warm_states))
    return GeneratedInterface(
        queries=asts, screen=screen, search=result, best=result.best
    )
