"""The library front door: one call from query log to interface.

    from repro import generate_interface, Screen

    result = generate_interface(
        ["select a from t where x < 1", "select b from t where x < 2"],
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=10.0),
    )
    print(result.ascii_art)

For repeated generation over a growing log — and for the structured
:class:`~repro.engine.GenerationReport` envelope — see the session-
oriented :class:`repro.engine.Engine`, which supersedes this module as
the primary entry point.  ``generate_interface`` remains as a thin
stable shim over the same strategy registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional, Sequence, Tuple, Union

from ..cost import CostModel, CostWeights, EvaluatedInterface
from ..database import Database
from ..difftree import DTNode, as_asts, initial_difftree
from ..interface import InterfaceSession, render_ascii, render_html
from ..layout import Screen
from ..registry import StrategySpec, register_strategy, strategy_names, strategy_spec
from ..rules import DEFAULT_RULE_NAMES, RuleEngine, default_engine
from ..search import (
    MCTS,
    BeamSearchTask,
    ExhaustiveSearchTask,
    GreedySearchTask,
    MCTSConfig,
    RandomSearchTask,
    SearchResult,
    SearchTask,
    beam_search,
    exhaustive_search,
    greedy_search,
    mcts_search,
    random_search,
)
from ..sqlast import Node


@dataclass(frozen=True)
class GenerationConfig:
    """End-to-end generation settings.

    Invalid settings raise :class:`ValueError` at *construction* — a
    negative budget or a misspelled strategy/rule name must not surface
    minutes later from inside a search.

    Attributes:
        strategy: search strategy (``"mcts"`` is the paper's); must be
            registered (see :func:`repro.registry.register_strategy`).
        time_budget_s: wall-clock search budget (paper used ~60 s).
        k_assignments: widget-assignment samples per state reward.
        exploration_c: UCT exploration constant (MCTS only).
        max_walk_steps: random-walk cap (paper: 200).
        max_iterations: hard iteration cap, 0 = unlimited (MCTS only;
            useful for deterministic equal-work comparisons).
        seed: RNG seed for reproducible generation.
        weights: cost-term weights.
        exclude_rules: rule names to disable (ablations).
        final_cap: widget-enumeration cap for the final phase.
    """

    strategy: str = "mcts"
    time_budget_s: float = 5.0
    k_assignments: int = 5
    exploration_c: float = 1.4
    max_walk_steps: int = 200
    max_iterations: int = 0
    seed: int = 0
    weights: CostWeights = field(default_factory=CostWeights)
    exclude_rules: Sequence[str] = ()
    final_cap: int = 4000

    def __post_init__(self) -> None:
        if self.strategy not in strategy_names():
            raise ValueError(
                f"unknown strategy {self.strategy!r} "
                f"(have: {', '.join(strategy_names())})"
            )
        if self.time_budget_s < 0:
            raise ValueError(f"time_budget_s must be >= 0, got {self.time_budget_s}")
        if self.k_assignments < 1:
            raise ValueError(f"k_assignments must be >= 1, got {self.k_assignments}")
        if self.max_walk_steps < 1:
            raise ValueError(f"max_walk_steps must be >= 1, got {self.max_walk_steps}")
        if self.max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {self.max_iterations}")
        if self.exploration_c < 0:
            raise ValueError(f"exploration_c must be >= 0, got {self.exploration_c}")
        if self.final_cap < 1:
            raise ValueError(f"final_cap must be >= 1, got {self.final_cap}")
        unknown = set(self.exclude_rules) - set(DEFAULT_RULE_NAMES)
        if unknown:
            raise ValueError(
                f"unknown exclude_rules names: {sorted(unknown)} "
                f"(have: {', '.join(DEFAULT_RULE_NAMES)})"
            )

    def replace(self, **changes) -> "GenerationConfig":
        """A copy with ``changes`` applied (re-validated)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return GenerationConfig(**current)


@dataclass
class GeneratedInterface:
    """Everything a caller needs from one generation run."""

    queries: List[Node]
    screen: Screen
    search: SearchResult
    best: EvaluatedInterface

    @property
    def cost(self) -> float:
        return self.best.cost

    @property
    def difftree(self) -> DTNode:
        return self.best.tree

    @property
    def widget_tree(self):
        return self.best.widget_tree

    @property
    def ascii_art(self) -> str:
        return render_ascii(self.best.widget_tree)

    def html(self, title: str = "Generated interface") -> str:
        return render_html(self.best.widget_tree, title=title)

    def session(self, db: Optional[Database] = None) -> InterfaceSession:
        """Open an interactive session on this interface."""
        return InterfaceSession(
            self.difftree,
            self.widget_tree,
            db=db,
            initial_query=self.queries[0],
        )


def as_mcts_config(config: GenerationConfig) -> MCTSConfig:
    """Project the end-to-end settings onto the MCTS tunables."""
    return MCTSConfig(
        exploration_c=config.exploration_c,
        max_walk_steps=config.max_walk_steps,
        k_assignments=config.k_assignments,
        time_budget_s=config.time_budget_s,
        max_iterations=config.max_iterations,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def prepare_search(
    queries: Sequence[Union[str, Node]],
    screen: Optional[Screen] = None,
    config: Optional[GenerationConfig] = None,
    engine: Optional[RuleEngine] = None,
) -> Tuple[List[Node], Screen, CostModel, DTNode, RuleEngine]:
    """Build the shared search ingredients for a query log.

    Used by :func:`generate_interface`, :class:`repro.engine.Engine`, and
    :mod:`repro.serve`, which drives the search itself (to warm-start and
    to keep the node table).
    """
    config = config or GenerationConfig()
    asts = as_asts(queries)
    screen = screen or Screen.wide()
    engine = engine or default_engine(exclude=config.exclude_rules or None)
    model = CostModel(asts, screen, weights=config.weights)
    initial = initial_difftree(asts)
    return asts, screen, model, initial, engine


# -- registered strategies -----------------------------------------------------
#
# Each strategy declares its capabilities at registration; the dispatch in
# run_search()/open_search_task() enforces them, replacing the per-runner
# _require_cold checks.  Every built-in registers a task_factory returning an
# *opened* SearchTask, so all of them can be time-sliced by the scheduler;
# the runner remains the monolithic convenience (one unbounded step).


def _open_mcts(model, initial, engine, config, warm_states) -> SearchTask:
    return MCTS(model, engine=engine, config=as_mcts_config(config)).open(
        initial, warm_states=warm_states
    )


def _open_random(model, initial, engine, config, warm_states) -> SearchTask:
    return RandomSearchTask(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        max_walk_steps=config.max_walk_steps,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def _open_greedy(model, initial, engine, config, warm_states) -> SearchTask:
    return GreedySearchTask(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def _open_beam(model, initial, engine, config, warm_states) -> SearchTask:
    return BeamSearchTask(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


def _open_exhaustive(model, initial, engine, config, warm_states) -> SearchTask:
    return ExhaustiveSearchTask(
        model,
        initial,
        engine=engine,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


@register_strategy(
    "mcts",
    supports_warm_start=True,
    needs_time_budget=True,
    supports_iteration_cap=True,
    task_factory=_open_mcts,
    description="the paper's MCTS over difftree states (warm-startable)",
)
def _run_mcts(model, initial, engine, config, warm_states):
    return mcts_search(
        model,
        initial,
        engine=engine,
        config=as_mcts_config(config),
        warm_states=warm_states,
    )


@register_strategy(
    "random",
    needs_time_budget=True,
    task_factory=_open_random,
    description="random-restart walks baseline",
)
def _run_random(model, initial, engine, config, warm_states):
    return random_search(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        max_walk_steps=config.max_walk_steps,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


@register_strategy(
    "greedy",
    needs_time_budget=True,
    task_factory=_open_greedy,
    description="greedy hill-climbing baseline (forward rules only)",
)
def _run_greedy(model, initial, engine, config, warm_states):
    return greedy_search(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


@register_strategy(
    "beam",
    needs_time_budget=True,
    task_factory=_open_beam,
    description="beam-search baseline",
)
def _run_beam(model, initial, engine, config, warm_states):
    return beam_search(
        model,
        initial,
        engine=engine,
        time_budget_s=config.time_budget_s,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


@register_strategy(
    "exhaustive",
    needs_time_budget=False,
    task_factory=_open_exhaustive,
    description="exhaustive state enumeration (tiny logs only)",
)
def _run_exhaustive(model, initial, engine, config, warm_states):
    return exhaustive_search(
        model,
        initial,
        engine=engine,
        k_assignments=config.k_assignments,
        seed=config.seed,
        final_cap=config.final_cap,
    )


#: Registered strategy names (kept for back-compat; prefer
#: :func:`repro.registry.strategy_names`, which reflects late
#: registrations too).
STRATEGIES = strategy_names()


def _validate_dispatch(
    spec: StrategySpec, config: GenerationConfig, warm_states: Sequence[DTNode]
) -> None:
    """Enforce a strategy's declared capabilities before dispatching."""
    if warm_states and not spec.supports_warm_start:
        raise ValueError(
            f"strategy {spec.name!r} does not support warm starts "
            f"(warm-start capable: "
            f"{', '.join(n for n in strategy_names() if strategy_spec(n).supports_warm_start)})"
        )
    if spec.needs_time_budget and config.time_budget_s <= 0:
        # Only strategies that actually consume max_iterations may use
        # it as their sole stop condition; for the others a zero budget
        # would silently evaluate nothing but the initial state.
        if not (spec.supports_iteration_cap and config.max_iterations > 0):
            raise ValueError(
                f"strategy {spec.name!r} needs a stop condition: set "
                f"time_budget_s > 0"
                + (
                    " or max_iterations > 0"
                    if spec.supports_iteration_cap
                    else " (it does not consume max_iterations)"
                )
            )


def open_search_task(
    model: CostModel,
    initial: DTNode,
    engine: RuleEngine,
    config: GenerationConfig,
    warm_states: Sequence[DTNode] = (),
) -> SearchTask:
    """Open (but do not run) a resumable search task for ``config``.

    The stepping entry point of the strategy registry: capability checks
    are identical to :func:`run_search`, but instead of running to
    completion the opened :class:`~repro.search.SearchTask` is returned
    for the caller — typically the multi-session scheduler — to drive
    via ``step()``.  Raises for strategies registered without a
    ``task_factory``.
    """
    spec = strategy_spec(config.strategy)
    _validate_dispatch(spec, config, warm_states)
    if not spec.supports_stepping or spec.task_factory is None:
        steppable = ", ".join(
            n for n in strategy_names() if strategy_spec(n).supports_stepping
        )
        raise ValueError(
            f"strategy {spec.name!r} does not support stepping "
            f"(steppable: {steppable})"
        )
    return spec.task_factory(model, initial, engine, config, tuple(warm_states))


def run_search(
    model: CostModel,
    initial: DTNode,
    engine: RuleEngine,
    config: GenerationConfig,
    warm_states: Sequence[DTNode] = (),
) -> SearchResult:
    """Dispatch one search through the strategy registry.

    Enforces the strategy's declared capabilities: ``warm_states`` are
    rejected unless the strategy ``supports_warm_start``, and strategies
    that ``needs_time_budget`` require a positive wall-clock budget —
    or, if they declare ``supports_iteration_cap``, a positive
    ``max_iterations``.

    Steppable strategies run as one unbounded step of their opened task
    (the same code path the scheduler slices); legacy runners registered
    without a ``task_factory`` fall back to their monolithic function.
    """
    spec = strategy_spec(config.strategy)
    _validate_dispatch(spec, config, warm_states)
    if spec.supports_stepping and spec.task_factory is not None:
        task = spec.task_factory(model, initial, engine, config, tuple(warm_states))
        return task.run()
    return spec.runner(model, initial, engine, config, tuple(warm_states))


def generate_interface(
    queries: Sequence[Union[str, Node]],
    screen: Optional[Screen] = None,
    config: Optional[GenerationConfig] = None,
    engine: Optional[RuleEngine] = None,
    warm_states: Sequence[DTNode] = (),
) -> GeneratedInterface:
    """Generate an interactive interface for a SQL query log.

    This is the stable one-shot shim over the strategy registry; the
    session-oriented :class:`repro.engine.Engine` exposes the same search
    plus caching, incremental sessions, and structured reports.

    Args:
        queries: the input log — SQL strings or pre-parsed ASTs, in
            session order (order matters: the ``U`` cost models stepping
            through the log sequentially).
        screen: output screen constraint (default: wide).
        config: generation settings (default: ``GenerationConfig()``).
        engine: custom rule engine (default: the paper's full rule set,
            optionally filtered by ``config.exclude_rules``).
        warm_states: known-good difftree states (expressing the full
            log) used to seed the MCTS transposition table and incumbent
            — the warm-start path used by :mod:`repro.serve`.

    Returns:
        A :class:`GeneratedInterface` bundling the winning difftree,
        widget tree, cost, and search diagnostics.
    """
    config = config or GenerationConfig()
    asts, screen, model, initial, engine = prepare_search(
        queries, screen=screen, config=config, engine=engine
    )
    result = run_search(model, initial, engine, config, warm_states)
    return GeneratedInterface(
        queries=asts, screen=screen, search=result, best=result.best
    )
