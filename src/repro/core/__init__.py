"""Top-level API."""

from .api import (
    STRATEGIES,
    GeneratedInterface,
    GenerationConfig,
    as_mcts_config,
    generate_interface,
    open_search_task,
    prepare_search,
    run_search,
)

__all__ = [
    "generate_interface",
    "GenerationConfig",
    "GeneratedInterface",
    "STRATEGIES",
    "as_mcts_config",
    "open_search_task",
    "prepare_search",
    "run_search",
]
