"""Top-level API."""

from .api import (
    STRATEGIES,
    GeneratedInterface,
    GenerationConfig,
    as_mcts_config,
    generate_interface,
    prepare_search,
    run_search,
)

__all__ = [
    "generate_interface",
    "GenerationConfig",
    "GeneratedInterface",
    "STRATEGIES",
    "as_mcts_config",
    "prepare_search",
    "run_search",
]
