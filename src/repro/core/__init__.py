"""Top-level API."""

from .api import STRATEGIES, GeneratedInterface, GenerationConfig, generate_interface

__all__ = [
    "generate_interface",
    "GenerationConfig",
    "GeneratedInterface",
    "STRATEGIES",
]
