"""Pretty-printer turning ASTs back into SQL text.

``parse(to_sql(ast)) == ast`` holds for every AST the parser can produce;
this round-trip is exercised by property tests.
"""

from __future__ import annotations

from .. import memo as _memo
from . import nodes as N

#: ``interned AST -> rendered SQL``; rendering the same (sub)tree twice —
#: e.g. interface runtimes re-displaying the current query per widget
#: interaction — is a lookup instead of a tree walk.
_RENDER_MEMO = _memo.memo_table(4096, name="sqlast.render")


def to_sql(node: N.Node) -> str:
    """Render an AST back to SQL text (memoized on the interned node)."""
    if _memo.fast_paths_enabled():
        cached = _RENDER_MEMO.get(node)
        if cached is not None:
            return cached
        text = _render(node)
        _RENDER_MEMO[node] = text
        return text
    return _render(node)


def _render(node: N.Node) -> str:
    if node.label == N.SELECT:
        return _select_to_sql(node)
    return _expr_to_sql(node, parent=None)


def _select_to_sql(node: N.Node) -> str:
    parts = ["SELECT"]
    top = node.child_by_label(N.TOP)
    if top is not None:
        parts.append(f"TOP {top.value}")
    proj = node.child_by_label(N.PROJECT)
    if proj is None:
        raise ValueError("Select node is missing its Project clause")
    parts.append(", ".join(_expr_to_sql(c, parent=None) for c in proj.children))
    from_ = node.child_by_label(N.FROM)
    if from_ is None:
        raise ValueError("Select node is missing its From clause")
    parts.append("FROM")
    parts.append(", ".join(str(t.value) for t in from_.children))
    where = node.child_by_label(N.WHERE)
    if where is not None:
        parts.append("WHERE")
        parts.append(_expr_to_sql(where.children[0], parent=None))
    group = node.child_by_label(N.GROUPBY)
    if group is not None:
        parts.append("GROUP BY")
        parts.append(", ".join(str(c.value) for c in group.children))
    order = node.child_by_label(N.ORDERBY)
    if order is not None:
        parts.append("ORDER BY")
        items = []
        for item in order.children:
            suffix = " DESC" if item.value == "desc" else ""
            items.append(f"{item.children[0].value}{suffix}")
        parts.append(", ".join(items))
    lim = node.child_by_label(N.LIMIT)
    if lim is not None:
        parts.append(f"LIMIT {lim.value}")
    return " ".join(parts)


def _expr_to_sql(node: N.Node, parent) -> str:
    label = node.label
    if label == N.COLEXPR:
        return str(node.value)
    if label == N.STAR:
        return "*"
    if label == N.NUMEXPR:
        return repr(node.value)
    if label == N.STREXPR:
        escaped = str(node.value).replace("'", "''")
        return f"'{escaped}'"
    if label == N.FUNC:
        return f"{node.value}({_expr_to_sql(node.children[0], node)})"
    if label == N.ALIAS:
        return f"{_expr_to_sql(node.children[0], node)} AS {node.value}"
    if label == N.BIEXPR:
        left = _expr_to_sql(node.children[0], node)
        right = _expr_to_sql(node.children[1], node)
        return f"{left} {node.value} {right}"
    if label == N.BETWEEN:
        column = _expr_to_sql(node.children[0], node)
        lo = _expr_to_sql(node.children[1], node)
        hi = _expr_to_sql(node.children[2], node)
        return f"{column} BETWEEN {lo} AND {hi}"
    if label == N.INLIST:
        column = _expr_to_sql(node.children[0], node)
        values = ", ".join(_expr_to_sql(c, node) for c in node.children[1:])
        return f"{column} IN ({values})"
    if label == N.AND:
        parts = [_expr_to_sql(c, node) for c in node.children]
        text = " AND ".join(
            f"({p})" if c.label == N.OR else p
            for p, c in zip(parts, node.children)
        )
        return text
    if label == N.OR:
        return " OR ".join(_expr_to_sql(c, node) for c in node.children)
    if label == N.NOT:
        inner = node.children[0]
        body = _expr_to_sql(inner, node)
        if inner.label in (N.AND, N.OR):
            body = f"({body})"
        return f"NOT {body}"
    if label == N.SELECT:
        return f"({_select_to_sql(node)})"
    raise ValueError(f"cannot print node label {label!r}")
