"""SQL front-end: lexer, parser, AST nodes, printer, and alignment.

Quick use::

    from repro.sqlast import parse, to_sql
    ast = parse("SELECT sales FROM sales WHERE cty = 'USA'")
    print(to_sql(ast))
"""

from . import nodes
from .align import align_children, align_key, alignable, count_differences, diff_paths
from .errors import LexError, ParseError, SqlError
from .lexer import Token, tokenize
from .nodes import Node
from .parser import parse, parse_many
from .printer import to_sql
from .symbols import SYMBOLS, SymbolTable, head_symbol

__all__ = [
    "nodes",
    "Node",
    "SymbolTable",
    "SYMBOLS",
    "head_symbol",
    "Token",
    "tokenize",
    "parse",
    "parse_many",
    "to_sql",
    "align_children",
    "align_key",
    "alignable",
    "diff_paths",
    "count_differences",
    "SqlError",
    "LexError",
    "ParseError",
]
