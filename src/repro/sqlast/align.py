"""AST alignment and diff utilities.

These helpers answer the structural questions the difftree layer asks:
which children of two nodes correspond to each other, and where do two
ASTs differ?  Alignment is by *head signature* — the ``(label, value)``
pair for structure-bearing labels, and just the label for value-bearing
leaves (so ``ColExpr(sales)`` aligns with ``ColExpr(costs)``).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from . import nodes as N

#: Labels whose ``value`` is *structural* — two nodes with these labels but
#: different values must NOT be aligned (a ``BiExpr(=)`` is a different
#: operation from a ``BiExpr(<)``, and ``avg(...)`` differs from
#: ``count(...)``).  For all other labels the value is *content* and nodes
#: align on label alone.
STRUCTURAL_VALUE_LABELS = frozenset({N.BIEXPR, N.FUNC, N.ORDERITEM})


def align_key(node: N.Node) -> Tuple[str, Any]:
    """Return the key on which two AST nodes are considered alignable."""
    if node.label in STRUCTURAL_VALUE_LABELS:
        return (node.label, node.value)
    return (node.label, None)


def alignable(a: N.Node, b: N.Node) -> bool:
    """True if ``a`` and ``b`` have matching heads and may be aligned."""
    return align_key(a) == align_key(b)


def align_children(
    rows: Sequence[Sequence[N.Node]],
) -> Optional[List[List[Optional[N.Node]]]]:
    """Align the child sequences of several nodes into columns.

    Args:
        rows: one child sequence per node being aligned.

    Returns:
        A list of columns; each column is a list with one entry per row,
        where the entry is the aligned child or ``None`` when the row has
        no child in this column.  Returns ``None`` when no consistent
        order-preserving alignment exists (keys appear in conflicting
        orders or a key repeats within a row — repeated keys are the
        province of the ``Multi`` rule, not alignment).
    """
    keyed_rows: List[List[Tuple[Tuple[str, Any], N.Node]]] = []
    for row in rows:
        keyed = [(align_key(child), child) for child in row]
        keys = [k for k, _ in keyed]
        if len(set(keys)) != len(keys):
            return None
        keyed_rows.append(keyed)

    # Merge the per-row key orders into one global order; fail on conflicts
    # (key A before B in one row but after B in another).
    order: List[Tuple[str, Any]] = []
    for keyed in keyed_rows:
        position = 0
        for key, _ in keyed:
            if key in order:
                existing = order.index(key)
                if existing < position:
                    return None
                position = existing + 1
            else:
                order.insert(position, key)
                position += 1

    columns: List[List[Optional[N.Node]]] = []
    for key in order:
        column: List[Optional[N.Node]] = []
        for keyed in keyed_rows:
            match = next((child for k, child in keyed if k == key), None)
            column.append(match)
        columns.append(column)
    return columns


def diff_paths(
    a: N.Node, b: N.Node, prefix: Tuple[int, ...] = ()
) -> Iterator[Tuple[Tuple[int, ...], Optional[N.Node], Optional[N.Node]]]:
    """Yield ``(path, subtree_a, subtree_b)`` for each maximal difference.

    A *difference* is the highest point in the trees where the two ASTs
    stop matching: either the heads differ, or the child alignment
    produced an insertion/deletion.  This is the primitive used by the
    bottom-up mining baseline (Zhang et al. 2017).
    """
    if a == b:
        return
    if not alignable(a, b):
        yield prefix, a, b
        return
    if a.value != b.value and not a.children and not b.children:
        # Same label, different leaf payload (e.g. differing literals).
        yield prefix, a, b
        return
    if a.value != b.value:
        yield prefix, a, b
        return
    columns = align_children([a.children, b.children])
    if columns is None:
        yield prefix, a, b
        return
    # Map each aligned child back to its index in ``a`` (for path bookkeeping);
    # insertions on the ``b`` side are reported at the position they would
    # occupy.
    index_a = {id(child): i for i, child in enumerate(a.children)}
    for column in columns:
        child_a, child_b = column
        if child_a is None:
            yield prefix + (len(a.children),), None, child_b
        elif child_b is None:
            yield prefix + (index_a[id(child_a)],), child_a, None
        else:
            yield from diff_paths(child_a, child_b, prefix + (index_a[id(child_a)],))


def count_differences(a: N.Node, b: N.Node) -> int:
    """Number of maximal differing subtree pairs between two ASTs."""
    return sum(1 for _ in diff_paths(a, b))
