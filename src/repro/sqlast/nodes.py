"""Typed, immutable abstract-syntax-tree nodes for the SQL subset.

The paper models every query as its AST (Figure 1).  We use one generic
:class:`Node` class parameterized by a *label* (the grammar rule, e.g.
``Select``, ``ColExpr``), an optional scalar *value* (column name, literal,
operator) and a tuple of children.  Nodes are immutable and hashable so they
can be shared freely between difftrees, used as dictionary keys, and
structurally deduplicated.

Nodes are **hash-consed**: constructing a node whose ``(label, value,
children)`` triple matches a live instance returns that instance, so
structurally equal subtrees built anywhere in the process are the *same*
object and equality is usually one identity check.  The intern table is
weak — nodes are collected normally once unreferenced — and pickling
re-interns in the receiving process (``__reduce__`` rebuilds through the
constructor).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence, Tuple
from weakref import WeakValueDictionary

from ..memo import INGEST

# ---------------------------------------------------------------------------
# Grammar labels.  Using plain strings (not an enum) keeps nodes lightweight
# and lets the difftree layer treat labels fully generically.
# ---------------------------------------------------------------------------

SELECT = "Select"
TOP = "Top"
PROJECT = "Project"
COLEXPR = "ColExpr"
STAR = "Star"
FUNC = "Func"
ALIAS = "Alias"
FROM = "From"
TABLE = "Table"
WHERE = "Where"
AND = "And"
OR = "Or"
NOT = "Not"
BIEXPR = "BiExpr"
BETWEEN = "Between"
INLIST = "InList"
NUMEXPR = "NumExpr"
STREXPR = "StrExpr"
GROUPBY = "GroupBy"
ORDERBY = "OrderBy"
ORDERITEM = "OrderItem"
LIMIT = "Limit"

#: Labels whose nodes carry a scalar payload in ``value``.
VALUE_LABELS = frozenset(
    {TOP, COLEXPR, FUNC, ALIAS, TABLE, BIEXPR, NUMEXPR, STREXPR, ORDERITEM, LIMIT}
)

#: Clause labels that may appear as direct children of ``Select``, in
#: canonical order.  The parser always emits clauses in this order, which
#: makes AST alignment across queries deterministic.
CLAUSE_ORDER = (TOP, PROJECT, FROM, WHERE, GROUPBY, ORDERBY, LIMIT)

_CLAUSE_RANK = {label: i for i, label in enumerate(CLAUSE_ORDER)}

#: The hash-consing table: ``(label, value, children) -> live Node``.
#: Values are weak, so interning never extends a node's lifetime.
_INTERN: "WeakValueDictionary[Tuple[str, Any, Tuple['Node', ...]], Node]" = (
    WeakValueDictionary()
)


def interned_node_count() -> int:
    """How many distinct AST subtrees are currently interned (diagnostics)."""
    return len(_INTERN)


class Node:
    """An immutable AST node.

    Args:
        label: grammar-rule name (one of the module-level label constants).
        value: optional scalar payload (e.g. a column name for ``ColExpr``,
            the operator string for ``BiExpr``, a number for ``NumExpr``).
        children: child nodes, stored as a tuple.

    Equality and hashing are structural and O(1) after construction: the
    hash is computed bottom-up once and cached, and interning makes most
    equality checks a single identity comparison (equal structures are
    the same object; unequal ones almost always differ in cached hash).
    """

    __slots__ = ("label", "value", "children", "_hash", "_size", "__weakref__")

    def __new__(
        cls,
        label: str,
        value: Any = None,
        children: Sequence["Node"] = (),
    ) -> "Node":
        children = tuple(children)
        key = (label, value, children)
        cached = _INTERN.get(key)
        if cached is not None:
            INGEST.node_intern_hits += 1
            return cached
        for child in children:
            if not isinstance(child, Node):
                raise TypeError(f"child of {label} is not a Node: {child!r}")
        self = object.__new__(cls)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(
            self, "_size", 1 + sum(c._size for c in children)
        )
        _INTERN[key] = self
        return self

    # -- immutability -------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Node is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Node is immutable")

    # -- identity -----------------------------------------------------------

    def __reduce__(self):
        # Slotted + immutable blocks pickle's default setattr-based path;
        # rebuild through __init__ (process-pool transport in repro.serve).
        return (Node, (self.label, self.value, self.children))

    def __hash__(self) -> int:
        return self._hash

    @property
    def fingerprint(self) -> int:
        """Cached structural fingerprint (process-local).

        Interning makes equal fingerprints of live nodes coincide with
        object identity; use :meth:`repro.difftree.wrap_ast` canonical
        keys when a cross-process-stable digest is needed.
        """
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Interning makes the identity check decide almost every
        # comparison; the structural fallback only runs for the rare
        # un-interned twin (e.g. built concurrently on another thread).
        if self is other:
            return True
        if not isinstance(other, Node):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (
            self.label == other.label
            and self.value == other.value
            and self.children == other.children
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        parts = [self.label]
        if self.value is not None:
            parts.append(f"value={self.value!r}")
        if self.children:
            parts.append(f"children={list(self.children)!r}")
        return f"Node({', '.join(parts)})"

    # -- structure ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes in this subtree (including this node)."""
        return self._size

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def walk_paths(
        self, prefix: Tuple[int, ...] = ()
    ) -> Iterator[Tuple[Tuple[int, ...], "Node"]]:
        """Yield ``(path, node)`` pairs in pre-order.

        A *path* is a tuple of child indices from the root; the root's path
        is the empty tuple.
        """
        yield prefix, self
        for i, child in enumerate(self.children):
            yield from child.walk_paths(prefix + (i,))

    def at(self, path: Sequence[int]) -> "Node":
        """Return the descendant at ``path`` (root for an empty path)."""
        node = self
        for index in path:
            node = node.children[index]
        return node

    def replace_at(self, path: Sequence[int], new: Optional["Node"]) -> "Node":
        """Return a copy with the subtree at ``path`` replaced by ``new``.

        If ``new`` is ``None`` the subtree is deleted.  Replacing the root
        (empty path) with ``None`` is an error.
        """
        if not path:
            if new is None:
                raise ValueError("cannot delete the root node")
            return new
        index = path[0]
        child = self.children[index]
        if len(path) == 1:
            replacement = new
        else:
            replacement = child.replace_at(path[1:], new)
        if replacement is None:
            new_children = self.children[:index] + self.children[index + 1 :]
        else:
            new_children = (
                self.children[:index] + (replacement,) + self.children[index + 1 :]
            )
        return Node(self.label, self.value, new_children)

    def with_children(self, children: Sequence["Node"]) -> "Node":
        """Return a copy of this node with ``children`` substituted."""
        return Node(self.label, self.value, children)

    def with_value(self, value: Any) -> "Node":
        """Return a copy of this node with ``value`` substituted."""
        return Node(self.label, value, self.children)

    def find_all(self, predicate: Callable[["Node"], bool]) -> Iterator["Node"]:
        """Yield every descendant (pre-order) for which ``predicate`` holds."""
        return (node for node in self.walk() if predicate(node))

    def child_by_label(self, label: str) -> Optional["Node"]:
        """Return the first direct child with the given label, if any."""
        for child in self.children:
            if child.label == label:
                return child
        return None

    def signature(self) -> Tuple[str, Any]:
        """Return the ``(label, value)`` pair identifying this node's head."""
        return (self.label, self.value)


# ---------------------------------------------------------------------------
# Constructors.  These tiny helpers make building ASTs in tests and data
# generators readable and enforce canonical shapes.
# ---------------------------------------------------------------------------


def select(
    *,
    project: Node,
    from_: Node,
    top: Optional[Node] = None,
    where: Optional[Node] = None,
    group_by: Optional[Node] = None,
    order_by: Optional[Node] = None,
    limit: Optional[Node] = None,
) -> Node:
    """Build a ``Select`` node with clauses in canonical order."""
    clauses = [top, project, from_, where, group_by, order_by, limit]
    children = [c for c in clauses if c is not None]
    return Node(SELECT, None, children)


def top(n: int) -> Node:
    return Node(TOP, int(n))


def project(*exprs: Node) -> Node:
    return Node(PROJECT, None, exprs)


def col(name: str) -> Node:
    return Node(COLEXPR, name)


def star() -> Node:
    return Node(STAR)


def func(name: str, arg: Node) -> Node:
    return Node(FUNC, name.lower(), (arg,))


def alias(expr: Node, name: str) -> Node:
    return Node(ALIAS, name, (expr,))


def from_tables(*names: str) -> Node:
    return Node(FROM, None, tuple(Node(TABLE, n) for n in names))


def where(predicate: Node) -> Node:
    return Node(WHERE, None, (predicate,))


def and_(*preds: Node) -> Node:
    if len(preds) == 1:
        return preds[0]
    return Node(AND, None, preds)


def or_(*preds: Node) -> Node:
    if len(preds) == 1:
        return preds[0]
    return Node(OR, None, preds)


def not_(pred: Node) -> Node:
    return Node(NOT, None, (pred,))


def biexpr(op: str, left: Node, right: Node) -> Node:
    return Node(BIEXPR, op, (left, right))


def between(column: Node, lo: Node, hi: Node) -> Node:
    return Node(BETWEEN, None, (column, lo, hi))


def in_list(column: Node, *values: Node) -> Node:
    return Node(INLIST, None, (column,) + tuple(values))


def num(value: float) -> Node:
    if isinstance(value, bool):
        raise TypeError("boolean literals are not supported")
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return Node(NUMEXPR, value)


def lit(value: str) -> Node:
    return Node(STREXPR, value)


def group_by(*cols: Node) -> Node:
    return Node(GROUPBY, None, cols)


def order_by(*items: Node) -> Node:
    return Node(ORDERBY, None, items)


def order_item(column: Node, direction: str = "asc") -> Node:
    direction = direction.lower()
    if direction not in ("asc", "desc"):
        raise ValueError(f"invalid order direction: {direction!r}")
    return Node(ORDERITEM, direction, (column,))


def limit(n: int) -> Node:
    return Node(LIMIT, int(n))


def clause_rank(label: str) -> int:
    """Canonical ordering rank of a Select clause label (for sorting)."""
    return _CLAUSE_RANK.get(label, len(CLAUSE_ORDER))
