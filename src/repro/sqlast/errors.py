"""Errors raised by the SQL lexer and parser."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL front-end errors."""


class LexError(SqlError):
    """Raised when the lexer encounters an unrecognized character.

    Attributes:
        text: the full input text.
        pos: character offset where lexing failed.
    """

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at position {pos}: {_context(text, pos)}")
        self.text = text
        self.pos = pos


class ParseError(SqlError):
    """Raised when the parser cannot derive a valid query.

    Attributes:
        text: the full input text.
        pos: character offset of the offending token.
    """

    def __init__(self, message: str, text: str = "", pos: int = 0) -> None:
        if text:
            message = f"{message} at position {pos}: {_context(text, pos)}"
        super().__init__(message)
        self.text = text
        self.pos = pos


def _context(text: str, pos: int, width: int = 24) -> str:
    """Return a short excerpt of ``text`` around ``pos`` for error messages."""
    start = max(0, pos - width)
    end = min(len(text), pos + width)
    prefix = "..." if start > 0 else ""
    suffix = "..." if end < len(text) else ""
    return f"{prefix}{text[start:end]!r}{suffix}"
