"""Process-wide symbol interning: head tuples <-> dense integer ids.

The columnar difftree store (:mod:`repro.difftree.columnar`) encodes a
tree's per-node *head* — the ``(kind, label, value)`` triple of a difftree
node, or the ``(label, value)`` pair of an AST node — as one integer, so
structural comparisons that would otherwise build and compare tuples
become single int equality checks over parallel arrays.

:class:`SymbolTable` is the bidirectional interner behind those ids.  Ids
are dense (0, 1, 2, ...) in first-seen order and never recycled, which
makes them valid array indexes into side tables and stable for the
lifetime of the process.  Two symbols are equal iff their ids are equal —
the property every columnar pair-matching kernel relies on.

Ids are **process-local** (like ``DTNode.fingerprint``); the wire format
(:meth:`repro.difftree.columnar.ColumnarTree.to_payload`) therefore ships
the resolved symbols, not the ids, and re-interns on load.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, List, Tuple


class SymbolTable:
    """A thread-safe bidirectional ``symbol <-> dense int id`` interner.

    Symbols may be any hashable value (the columnar store uses tuples of
    strings/scalars).  Lookups of known symbols are lock-free dict reads;
    only first-sight insertion takes the lock.
    """

    __slots__ = ("_ids", "_symbols", "_lock", "__weakref__")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._symbols: List[Hashable] = []
        self._lock = threading.Lock()

    def id_of(self, symbol: Hashable) -> int:
        """The dense id of ``symbol``, interning it on first sight."""
        sid = self._ids.get(symbol)
        if sid is None:
            with self._lock:
                sid = self._ids.get(symbol)
                if sid is None:
                    sid = len(self._symbols)
                    self._symbols.append(symbol)
                    self._ids[symbol] = sid
        return sid

    def symbol_of(self, sid: int) -> Hashable:
        """The symbol behind a previously assigned id."""
        return self._symbols[sid]

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._ids

    def stats(self) -> Dict[str, int]:
        """Uniform snapshot for the observability registry."""
        return {"symbols": len(self._symbols)}


#: The process-wide interner every columnar encoding shares.  Sharing one
#: table across trees is what makes head ids comparable *between* trees
#: (anti-unify/graft pair-matching compares columns of different trees).
SYMBOLS = SymbolTable()

# Absorb the table size into the observability registry (appears as
# ``sqlast.symbols.symbols`` in snapshots / Prometheus scrapes).
from ..obs import REGISTRY as _OBS_REGISTRY  # noqa: E402  (after SYMBOLS exists)

_OBS_REGISTRY.register_source("sqlast.symbols", SYMBOLS.stats)


def head_symbol(kind: str, label: Any, value: Any) -> int:
    """Intern a difftree head triple (the columnar ``head`` column unit)."""
    return SYMBOLS.id_of((kind, label, value))
