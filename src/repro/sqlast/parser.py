"""Recursive-descent parser for the SQL subset.

Grammar (lower-case = nonterminal, UPPER = keyword)::

    query      := SELECT [DISTINCT] [TOP number] select_list
                  FROM table_list [WHERE pred]
                  [GROUP BY col_list] [ORDER BY order_list] [LIMIT number]
    select_list:= select_item (',' select_item)*
    select_item:= '*' | expr [AS ident]
    expr       := ident | number | string | ident '(' (expr | '*') ')'
    table_list := ident (',' ident)*
    pred       := or_pred
    or_pred    := and_pred (OR and_pred)*
    and_pred   := atom (AND atom)*
    atom       := NOT atom | '(' pred ')'
                | expr op expr
                | expr BETWEEN expr AND expr
                | expr IN '(' expr (',' expr)* ')'

This intentionally covers the query shapes in the paper's Figure 1 and
Listing 1 (projections, aggregates, TOP N, BETWEEN-heavy WHERE clauses)
plus GROUP BY / ORDER BY / LIMIT so the interaction runtime can express
richer logs.
"""

from __future__ import annotations

from typing import List

from .. import memo as _memo
from ..memo import INGEST
from . import nodes as N
from .errors import ParseError
from .lexer import EOF, IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING, Token, tokenize


class Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != EOF:
            self.index += 1
        return token

    def accept(self, kind: str, text: str = "") -> bool:
        if self.current.matches(kind, text):
            self.advance()
            return True
        return False

    def expect(self, kind: str, text: str = "") -> Token:
        if self.current.matches(kind, text):
            return self.advance()
        expected = text or kind
        raise ParseError(
            f"expected {expected!r}, found {self.current.text!r}",
            self.text,
            self.current.pos,
        )

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.current.pos)

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> N.Node:
        self.expect(KEYWORD, "select")
        # DISTINCT is accepted and normalized away: the interface layer does
        # not distinguish distinct/non-distinct projections.
        self.accept(KEYWORD, "distinct")
        top = None
        if self.accept(KEYWORD, "top"):
            top = N.top(self._int_literal("TOP"))
        proj = self._select_list()
        self.expect(KEYWORD, "from")
        from_ = self._table_list()
        where = None
        if self.accept(KEYWORD, "where"):
            where = N.where(self._pred())
        group = None
        if self.accept(KEYWORD, "group"):
            self.expect(KEYWORD, "by")
            group = N.group_by(*self._col_list())
        order = None
        if self.accept(KEYWORD, "order"):
            self.expect(KEYWORD, "by")
            order = self._order_list()
        lim = None
        if self.accept(KEYWORD, "limit"):
            lim = N.limit(self._int_literal("LIMIT"))
        if self.current.kind != EOF:
            raise self.error(f"unexpected trailing input {self.current.text!r}")
        return N.select(
            project=proj,
            from_=from_,
            top=top,
            where=where,
            group_by=group,
            order_by=order,
            limit=lim,
        )

    def _int_literal(self, clause: str) -> int:
        token = self.expect(NUMBER)
        value = float(token.text)
        if not value.is_integer():
            raise ParseError(
                f"{clause} requires an integer, found {token.text!r}",
                self.text,
                token.pos,
            )
        return int(value)

    def _select_list(self) -> N.Node:
        items = [self._select_item()]
        while self.accept(PUNCT, ","):
            items.append(self._select_item())
        return N.project(*items)

    def _select_item(self) -> N.Node:
        if self.accept(PUNCT, "*"):
            return N.star()
        expr = self._expr()
        if self.accept(KEYWORD, "as"):
            name = self.expect(IDENT).text
            return N.alias(expr, name)
        return expr

    def _expr(self) -> N.Node:
        token = self.current
        if token.kind == IDENT:
            self.advance()
            if self.accept(PUNCT, "("):
                # Function call, e.g. count(*), avg(u).
                if self.accept(PUNCT, "*"):
                    arg: N.Node = N.star()
                else:
                    arg = self._expr()
                self.expect(PUNCT, ")")
                return N.func(token.text, arg)
            if self.accept(PUNCT, "."):
                # Qualified column "t.col": keep the qualified name whole.
                column = self.expect(IDENT).text
                return N.col(f"{token.text}.{column}")
            return N.col(token.text)
        if token.kind == NUMBER:
            self.advance()
            return N.num(float(token.text))
        if token.kind == STRING:
            self.advance()
            return N.lit(token.text)
        raise self.error(f"expected expression, found {token.text!r}")

    def _table_list(self) -> N.Node:
        names = [self.expect(IDENT).text]
        while self.accept(PUNCT, ","):
            names.append(self.expect(IDENT).text)
        return N.from_tables(*names)

    def _col_list(self) -> List[N.Node]:
        cols = [N.col(self.expect(IDENT).text)]
        while self.accept(PUNCT, ","):
            cols.append(N.col(self.expect(IDENT).text))
        return cols

    def _order_list(self) -> N.Node:
        items = [self._order_item()]
        while self.accept(PUNCT, ","):
            items.append(self._order_item())
        return N.order_by(*items)

    def _order_item(self) -> N.Node:
        column = N.col(self.expect(IDENT).text)
        direction = "asc"
        if self.accept(KEYWORD, "asc"):
            direction = "asc"
        elif self.accept(KEYWORD, "desc"):
            direction = "desc"
        return N.order_item(column, direction)

    # -- predicates ----------------------------------------------------------

    def _pred(self) -> N.Node:
        return self._or_pred()

    def _or_pred(self) -> N.Node:
        parts = [self._and_pred()]
        while self.accept(KEYWORD, "or"):
            parts.append(self._and_pred())
        return N.or_(*parts)

    def _and_pred(self) -> N.Node:
        parts = [self._atom()]
        while self.accept(KEYWORD, "and"):
            parts.append(self._atom())
        return N.and_(*parts)

    def _atom(self) -> N.Node:
        if self.accept(KEYWORD, "not"):
            return N.not_(self._atom())
        if self.accept(PUNCT, "("):
            pred = self._pred()
            self.expect(PUNCT, ")")
            return pred
        left = self._expr()
        if self.accept(KEYWORD, "between"):
            lo = self._expr()
            self.expect(KEYWORD, "and")
            hi = self._expr()
            return N.between(left, lo, hi)
        if self.accept(KEYWORD, "in"):
            self.expect(PUNCT, "(")
            values = [self._expr()]
            while self.accept(PUNCT, ","):
                values.append(self._expr())
            self.expect(PUNCT, ")")
            return N.in_list(left, *values)
        if self.current.kind == OP:
            op = self.advance().text
            if op == "!=":
                op = "<>"
            right = self._expr()
            return N.biexpr(op, left, right)
        raise self.error(
            f"expected comparison operator, found {self.current.text!r}"
        )


#: ``sql text -> AST`` for exact repeats (interning makes the cached AST
#: shared structure, not a private copy).  Only successful parses are
#: cached; malformed input re-raises from a fresh parser run.
_PARSE_MEMO = _memo.memo_table(4096, name="sqlast.parse")


def parse(sql: str) -> N.Node:
    """Parse a single SQL query into its AST (memoized on exact text).

    Raises:
        ParseError or LexError on malformed input.
    """
    if _memo.fast_paths_enabled():
        cached = _PARSE_MEMO.get(sql)
        if cached is not None:
            INGEST.parse_memo_hits += 1
            return cached
        INGEST.parses += 1
        ast = Parser(sql).parse_query()
        _PARSE_MEMO[sql] = ast
        return ast
    INGEST.parses += 1
    return Parser(sql).parse_query()


def parse_many(sqls) -> List[N.Node]:
    """Parse a sequence of SQL strings into ASTs, in order."""
    return [parse(sql) for sql in sqls]
