"""Tokenizer for the SQL subset.

Produces a flat list of :class:`Token` objects consumed by the
recursive-descent parser in :mod:`repro.sqlast.parser`.

The token table is one combined regular expression compiled at module
load (one alternation with a named group per token class), so tokenizing
is a single ``match``/dispatch loop instead of a chain of per-character
Python conditionals — a measurable constant-factor win on the
parse-heavy ingest path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .errors import LexError

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "select",
        "top",
        "from",
        "where",
        "and",
        "or",
        "not",
        "between",
        "in",
        "as",
        "group",
        "order",
        "by",
        "asc",
        "desc",
        "limit",
        "distinct",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),*."

#: The whole token table as one precompiled alternation.  Order matters:
#: numbers before punctuation (so ``.5`` lexes as a float while ``t.col``
#: still yields IDENT PUNCT IDENT — the leading-dot branch requires a
#: digit), multi-char operators before their single-char prefixes.
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>--[^\n]*\n?)
    | (?P<word>[^\W\d]\w*)
    | (?P<number>\d+\.\d+|\d+|\.\d+)
    | (?P<string>'(?:''|[^'])*'|"(?:""|[^"])*")
    | (?P<op><=|>=|<>|!=|=|<|>)
    | (?P<punct>[(),*.])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of the module-level token-kind constants.
        text: the token text; keywords are lower-cased.
        pos: character offset of the token start in the input.
    """

    kind: str
    text: str
    pos: int

    def matches(self, kind: str, text: str = "") -> bool:
        """Return True if this token has the given kind (and text, if set)."""
        if self.kind != kind:
            return False
        return not text or self.text == text


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list of tokens ending with an EOF token.

    Raises:
        LexError: on any unrecognized character or unterminated string.
    """
    tokens: List[Token] = []
    append = tokens.append
    match = _TOKEN_RE.match
    i = 0
    n = len(text)
    while i < n:
        m = match(text, i)
        if m is None:
            ch = text[i]
            if ch in ("'", '"'):
                raise LexError("unterminated string literal", text, i)
            raise LexError(f"unexpected character {ch!r}", text, i)
        kind = m.lastgroup
        start = i
        i = m.end()
        if kind == "ws" or kind == "comment":
            continue
        if kind == "word":
            word = m.group()
            lowered = word.lower()
            if lowered in KEYWORDS:
                append(Token(KEYWORD, lowered, start))
            else:
                append(Token(IDENT, word, start))
        elif kind == "number":
            append(Token(NUMBER, m.group(), start))
        elif kind == "string":
            raw = m.group()
            quote = raw[0]
            append(Token(STRING, raw[1:-1].replace(quote + quote, quote), start))
        elif kind == "op":
            append(Token(OP, m.group(), start))
        else:  # punct
            append(Token(PUNCT, m.group(), start))
    tokens.append(Token(EOF, "", n))
    return tokens
