"""Tokenizer for the SQL subset.

Produces a flat list of :class:`Token` objects consumed by the
recursive-descent parser in :mod:`repro.sqlast.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import LexError

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "select",
        "top",
        "from",
        "where",
        "and",
        "or",
        "not",
        "between",
        "in",
        "as",
        "group",
        "order",
        "by",
        "asc",
        "desc",
        "limit",
        "distinct",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),*."


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of the module-level token-kind constants.
        text: the token text; keywords are lower-cased.
        pos: character offset of the token start in the input.
    """

    kind: str
    text: str
    pos: int

    def matches(self, kind: str, text: str = "") -> bool:
        """Return True if this token has the given kind (and text, if set)."""
        if self.kind != kind:
            return False
        return not text or self.text == text


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list of tokens ending with an EOF token.

    Raises:
        LexError: on any unrecognized character or unterminated string.
    """
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # Line comment.
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # Only treat the dot as part of the number when followed
                    # by a digit (so "t.col" still lexes as IDENT PUNCT IDENT).
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            tokens.append(Token(NUMBER, text[start:i], start))
            continue
        if ch in ("'", '"'):
            start = i
            quote = ch
            i += 1
            chars: List[str] = []
            while i < n:
                if text[i] == quote:
                    if i + 1 < n and text[i + 1] == quote:
                        chars.append(quote)  # escaped quote ('' or "")
                        i += 2
                        continue
                    break
                chars.append(text[i])
                i += 1
            if i >= n:
                raise LexError("unterminated string literal", text, start)
            i += 1  # closing quote
            tokens.append(Token(STRING, "".join(chars), start))
            continue
        matched_op = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(OP, op, i))
                i += len(op)
                matched_op = True
                break
        if matched_op:
            continue
        if ch in _PUNCT:
            tokens.append(Token(PUNCT, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", text, i)
    tokens.append(Token(EOF, "", n))
    return tokens
