"""Interface artifacts: rendering and the interaction runtime."""

from .render import render_ascii, render_html
from .runtime import InteractionError, InterfaceSession, instantiate

__all__ = [
    "render_ascii",
    "render_html",
    "InterfaceSession",
    "InteractionError",
    "instantiate",
]
