"""The interaction runtime: widgets as functions ``w(q, u) → q'``.

A :class:`InterfaceSession` holds a generated interface's difftree and
widget tree plus the *current choice assignment* (= current query).  Every
widget interaction updates one choice, re-instantiates the query from the
difftree, re-executes it against the database, and refreshes the
visualization — the full loop the paper describes for its interfaces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..database import Database, ResultSet, execute
from ..difftree import (
    ALL,
    ANY,
    Assignment,
    DTNode,
    EMPTY,
    MULTI,
    OPT,
    Path,
    assignment_for,
    unwrap_ast,
)
from ..sqlast import Node, to_sql
from ..vis import ChartSpec, recommend_chart
from ..widgets.tree import WidgetNode


class InteractionError(Exception):
    """Raised for interactions that the interface cannot express."""


def instantiate(tree: DTNode, assignment: Assignment, path: Path = ()) -> Node:
    """Resolve every choice in ``tree`` using ``assignment`` into an AST.

    Choices missing from the assignment default to the first alternative
    (``ANY``), absent (``OPT``), and one repetition (``MULTI``) — the
    defaults a freshly rendered widget would show.
    """
    nodes = _instantiate_seq(tree, assignment, path)
    if len(nodes) != 1:
        raise InteractionError(
            f"difftree root resolved to {len(nodes)} nodes (expected 1)"
        )
    return nodes[0]


def _instantiate_seq(
    node: DTNode, assignment: Assignment, path: Path
) -> Tuple[Node, ...]:
    kind = node.kind
    if kind == EMPTY:
        return ()
    if kind == ALL:
        children: List[Node] = []
        for i, child in enumerate(node.children):
            children.extend(_instantiate_seq(child, assignment, path + (i,)))
        return (Node(node.label, node.value, tuple(children)),)
    if kind == ANY:
        index = assignment.get(path, 0)
        if not isinstance(index, int) or not (0 <= index < len(node.children)):
            raise InteractionError(f"invalid ANY choice {index!r} at {path}")
        return _instantiate_seq(node.children[index], assignment, path + (index,))
    if kind == OPT:
        present = assignment.get(path, False)
        if present:
            return _instantiate_seq(node.children[0], assignment, path + (0,))
        return ()
    if kind == MULTI:
        reps = assignment.get(path, None)
        template = node.children[0]
        if reps is None:
            return _instantiate_seq(template, {}, path + (0,))
        out: List[Node] = []
        for rep in reps:
            sub_assignment = {
                path + (0,) + rel: value for rel, value in dict(rep).items()
            }
            out.extend(_instantiate_seq(template, sub_assignment, path + (0,)))
        return tuple(out)
    raise AssertionError(kind)


class InterfaceSession:
    """A live, scriptable instance of a generated interface.

    Args:
        tree: the difftree behind the interface.
        widget_tree: the rendered widget tree.
        db: database the current query executes against (optional; without
            it the session still tracks the current query, it just cannot
            produce results/charts).
        initial_query: starting query; defaults to the difftree's default
            choices.
    """

    def __init__(
        self,
        tree: DTNode,
        widget_tree: WidgetNode,
        db: Optional[Database] = None,
        initial_query: Optional[Node] = None,
    ) -> None:
        self.tree = tree
        self.widget_tree = widget_tree
        self.db = db
        self._widgets_by_path: Dict[Path, WidgetNode] = {
            n.choice_path: n
            for n in widget_tree.walk()
            if n.choice_path is not None
        }
        if initial_query is not None:
            assignment = assignment_for(tree, initial_query)
            if assignment is None:
                raise InteractionError(
                    f"interface cannot express {to_sql(initial_query)!r}"
                )
            self.assignment: Assignment = assignment
        else:
            self.assignment = {}
        self.interaction_log: List[Tuple[Path, Any]] = []

    # -- state -----------------------------------------------------------------

    @property
    def current_query(self) -> Node:
        return instantiate(self.tree, self.assignment)

    @property
    def current_sql(self) -> str:
        return to_sql(self.current_query)

    def widget_at(self, path: Path) -> WidgetNode:
        try:
            return self._widgets_by_path[path]
        except KeyError:
            raise InteractionError(f"no widget controls choice {path}") from None

    def widgets(self) -> List[WidgetNode]:
        """All interaction widgets, stable order (by choice path)."""
        return [self._widgets_by_path[p] for p in sorted(self._widgets_by_path)]

    # -- interactions ------------------------------------------------------------

    def set_choice(self, path: Path, value: Any) -> Node:
        """Set a choice directly (ANY index / OPT bool / MULTI reps)."""
        widget = self.widget_at(path)
        node = self.tree.at(path)
        if node.kind == ANY:
            if not isinstance(value, int) or not (0 <= value < len(node.children)):
                raise InteractionError(
                    f"widget {widget.widget!r} at {path} needs an option index "
                    f"in [0, {len(node.children)}), got {value!r}"
                )
        elif node.kind == OPT:
            value = bool(value)
        self.assignment = dict(self.assignment)
        self.assignment[path] = value
        self.interaction_log.append((path, value))
        return self.current_query

    def select_option(self, path: Path, label: str) -> Node:
        """Pick an option of an enumerating widget by its display label."""
        widget = self.widget_at(path)
        if widget.domain is None:
            raise InteractionError(f"widget at {path} has no option domain")
        try:
            index = widget.domain.labels.index(label)
        except ValueError:
            raise InteractionError(
                f"option {label!r} not in {widget.domain.labels}"
            ) from None
        return self.set_choice(path, index)

    def toggle(self, path: Path) -> Node:
        """Flip an OPT toggle/checkbox."""
        node = self.tree.at(path)
        if node.kind != OPT:
            raise InteractionError(f"node at {path} is {node.kind}, not OPT")
        current = bool(self.assignment.get(path, False))
        return self.set_choice(path, not current)

    def load_query(self, query: Node) -> Node:
        """Set every widget so the interface shows ``query``."""
        assignment = assignment_for(self.tree, query)
        if assignment is None:
            raise InteractionError(f"interface cannot express {to_sql(query)!r}")
        self.assignment = assignment
        self.interaction_log.append(((), "load"))
        return self.current_query

    def can_express(self, query: Node) -> bool:
        return assignment_for(self.tree, query) is not None

    # -- execution ----------------------------------------------------------------

    def run(self) -> ResultSet:
        """Execute the current query against the session database."""
        if self.db is None:
            raise InteractionError("session has no database attached")
        return execute(self.db, self.current_query)

    def chart(self) -> ChartSpec:
        """Visualization spec for the current result (Show-Me style)."""
        return recommend_chart(self.run(), self.current_query)
