"""Rendering widget trees: ASCII boxes and static HTML.

The ASCII renderer draws the layout hierarchy (the blue bounding boxes of
paper Figure 2) in monospace text; the HTML renderer emits a
self-contained page with real form controls, the offline substitute for
the paper's web front-end.
"""

from __future__ import annotations

import html
from typing import List

from ..widgets.tree import WidgetNode

_ICONS = {
    "dropdown": "▾",
    "slider": "◈",
    "range_slider": "◈◈",
    "toggle": "⊙",
    "checkbox": "☐",
    "textbox": "⌨",
    "buttons": "▭",
    "radio": "◉",
    "tabs": "⧉",
    "adder": "+",
    "label": "·",
}


def render_ascii(node: WidgetNode, width: int = 72) -> str:
    """Render the widget tree as nested ASCII boxes."""
    lines = _render_lines(node)
    return "\n".join(lines)


def _render_lines(node: WidgetNode) -> List[str]:
    name = node.widget
    if name in ("vertical", "horizontal"):
        child_blocks = [_render_lines(c) for c in node.children]
        if name == "vertical":
            inner: List[str] = []
            for i, block in enumerate(child_blocks):
                if i:
                    inner.append("")
                inner.extend(block)
        else:
            inner = _side_by_side(child_blocks)
        return _boxed(inner, title=node.title)
    if name == "tabs":
        header = " | ".join(
            f"[{c.title or f'tab{i}'}]" for i, c in enumerate(node.children)
        )
        inner = [header, "-" * max(8, len(header))]
        if node.children:
            inner.extend(_render_lines(node.children[0]))
            hidden = len(node.children) - 1
            if hidden:
                inner.append(f"(... {hidden} more tab{'s' if hidden > 1 else ''})")
        return _boxed(inner, title=node.title or "tabs")
    if name == "adder":
        inner = ["[+ add] [- remove]"]
        for child in node.children:
            inner.extend(_render_lines(child))
        return _boxed(inner, title=node.title or "repeat")
    # Interaction widget leaf.
    icon = _ICONS.get(name, "?")
    caption = f"{node.title}: " if node.title else ""
    if node.domain is not None and node.domain.labels and name != "adder":
        shown = list(node.domain.labels[:4])
        suffix = " …" if len(node.domain.labels) > 4 else ""
        options = " / ".join(shown) + suffix
        body = f"{icon} {caption}{name}<{options}>"
    else:
        body = f"{icon} {caption}{name}"
    size_tag = f" ({node.size_class})" if node.size_class != "M" else ""
    return [body + size_tag]


def _boxed(lines: List[str], title: str = "") -> List[str]:
    content_w = max([len(line) for line in lines] + [len(title) + 2, 4])
    top = f"+-{title}" + "-" * (content_w - len(title) - 1) + "+"
    out = [top]
    out.extend(f"| {line.ljust(content_w)}|" for line in lines)
    out.append("+" + "-" * (content_w + 1) + "+")
    return out


def _side_by_side(blocks: List[List[str]], gap: str = "  ") -> List[str]:
    if not blocks:
        return []
    heights = [len(b) for b in blocks]
    widths = [max((len(line) for line in b), default=0) for b in blocks]
    rows = max(heights)
    out = []
    for r in range(rows):
        cells = []
        for block, w in zip(blocks, widths):
            cell = block[r] if r < len(block) else ""
            cells.append(cell.ljust(w))
        out.append(gap.join(cells).rstrip())
    return out


# -- HTML ------------------------------------------------------------------------


def render_html(node: WidgetNode, title: str = "Generated interface") -> str:
    """Self-contained static HTML page for the widget tree."""
    body = _html_node(node)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font-family: sans-serif; margin: 16px; }}
.box {{ border: 1px solid #7aa5d2; border-radius: 4px; padding: 8px; margin: 4px; }}
.horizontal {{ display: flex; flex-direction: row; gap: 8px; align-items: flex-start; }}
.vertical {{ display: flex; flex-direction: column; gap: 8px; }}
.widget {{ margin: 2px; }}
.caption {{ font-size: 11px; color: #555; display: block; }}
.tabbar button {{ margin-right: 4px; }}
</style></head>
<body><h3>{html.escape(title)}</h3>
{body}
</body></html>"""


def _html_node(node: WidgetNode) -> str:
    name = node.widget
    caption = (
        f'<span class="caption">{html.escape(node.title)}</span>' if node.title else ""
    )
    if name in ("vertical", "horizontal"):
        inner = "\n".join(_html_node(c) for c in node.children)
        return f'<div class="box {name}">{caption}{inner}</div>'
    if name == "tabs":
        bar = "".join(
            f"<button>{html.escape(c.title or f'tab {i}')}</button>"
            for i, c in enumerate(node.children)
        )
        first = _html_node(node.children[0]) if node.children else ""
        return (
            f'<div class="box vertical">{caption}'
            f'<div class="tabbar">{bar}</div>{first}</div>'
        )
    if name == "adder":
        inner = "\n".join(_html_node(c) for c in node.children)
        return (
            f'<div class="box vertical">{caption}'
            f"<div><button>+ add</button><button>- remove</button></div>"
            f"{inner}</div>"
        )
    labels = list(node.domain.labels) if node.domain is not None else []
    if name == "dropdown":
        options = "".join(f"<option>{html.escape(l)}</option>" for l in labels)
        control = f"<select>{options}</select>"
    elif name == "radio":
        control = "<br>".join(
            f'<label><input type="radio" name="r{id(node)}"> {html.escape(l)}</label>'
            for l in labels
        )
    elif name == "buttons":
        control = "".join(f"<button>{html.escape(l)}</button>" for l in labels)
    elif name == "slider":
        control = '<input type="range">'
    elif name == "range_slider":
        control = '<input type="range"><input type="range">'
    elif name == "textbox":
        control = '<input type="text">'
    elif name in ("toggle", "checkbox"):
        control = '<label><input type="checkbox"> on/off</label>'
    else:
        control = html.escape(node.title or name)
    return f'<div class="widget">{caption}{control}</div>'
