"""Search baselines MCTS is compared against.

* :class:`RandomSearchTask` / :func:`random_search` — repeated random
  walks, keep the best state seen.  Same move set, no statistics:
  isolates the value of UCT guidance.
* :class:`GreedySearchTask` / :func:`greedy_search` — steepest-descent
  hill climbing on state cost with optional random restarts; gets stuck
  in local minima the paper's bidirectional rules are designed to escape.
* :class:`BeamSearchTask` / :func:`beam_search` — breadth-limited
  systematic search.
* :class:`ExhaustiveSearchTask` / :func:`exhaustive_search` — full BFS
  with state dedup up to a cap; the exact optimum within its horizon,
  tractable only for tiny logs (used to validate MCTS answer quality in
  tests).

Every baseline is a resumable :class:`~repro.search.common.SearchTask`
state machine — construct (open) → ``step()`` → ``result()`` — so the
multi-session scheduler can time-slice them exactly like MCTS.  The
module-level functions are the monolithic conveniences: one unbounded
step.  One unit of work per strategy: a full random walk, one
hill-climbing sweep (or restart hop), one beam level, one BFS expansion.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Set

from ..cost import CostModel
from ..difftree import DTNode
from ..rules import RuleEngine, default_engine
from .common import SearchResult, SearchTask, StateEvaluator


class RandomSearchTask(SearchTask):
    """Random walks from the initial state; evaluate every visited state."""

    strategy = "random"

    def __init__(
        self,
        model: CostModel,
        initial: DTNode,
        engine: Optional[RuleEngine] = None,
        time_budget_s: float = 5.0,
        max_walk_steps: int = 200,
        k_assignments: int = 5,
        seed: int = 0,
        final_cap: int = 4000,
    ) -> None:
        evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
        super().__init__(
            evaluator, time_budget_s=time_budget_s, final_cap=final_cap
        )
        self._engine = engine or default_engine()
        self._rng = random.Random(seed)
        self._initial = initial
        self._max_walk_steps = max_walk_steps
        evaluator.restart_clock()
        evaluator.evaluate(initial)
        evaluator.clock.pause()

    def _iterate(self) -> bool:
        current = self._initial
        for _ in range(self._max_walk_steps):
            if time.perf_counter() >= self._deadline:
                break
            move = self._engine.random_move(current, self._rng)
            if move is None:
                break
            current = self._engine.apply(current, move)
            self.evaluator.evaluate(current)
            self.evaluator.stats.walk_steps += 1
        self.evaluator.stats.iterations += 1
        return True  # fresh walks are always available


class GreedySearchTask(SearchTask):
    """Steepest-descent hill climbing with optional random restarts.

    Each restart first takes ``restart_walk`` random steps away from the
    initial state before descending again.  One unit of work is one
    neighbor sweep (move or detect the local minimum) or one restart hop.
    """

    strategy = "greedy"

    def __init__(
        self,
        model: CostModel,
        initial: DTNode,
        engine: Optional[RuleEngine] = None,
        time_budget_s: float = 5.0,
        k_assignments: int = 5,
        restarts: int = 0,
        restart_walk: int = 4,
        seed: int = 0,
        final_cap: int = 4000,
    ) -> None:
        evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
        super().__init__(
            evaluator, time_budget_s=time_budget_s, final_cap=final_cap
        )
        self._engine = engine or default_engine()
        self._rng = random.Random(seed)
        self._initial = initial
        self._restarts_left = restarts
        self._restart_walk = restart_walk
        evaluator.restart_clock()
        #: Current descent position (None = at a local minimum, awaiting
        #: a restart or termination).
        self._current: Optional[DTNode] = initial
        self._current_cost = evaluator.evaluate(initial).cost
        evaluator.clock.pause()

    def _iterate(self) -> bool:
        evaluator = self.evaluator
        if self._current is None:
            if self._restarts_left <= 0:
                return False
            self._restarts_left -= 1
            state = self._initial
            for _ in range(self._restart_walk):
                moves = self._engine.moves(state)
                if not moves:
                    break
                state = self._engine.apply(state, self._rng.choice(moves))
            self._current = state
            self._current_cost = evaluator.evaluate(state).cost
            return True
        neighbors = self._engine.neighbors(self._current)
        evaluator.stats.max_fanout = max(
            evaluator.stats.max_fanout, len(neighbors)
        )
        best_state = None
        best_cost = self._current_cost
        for _, successor in neighbors:
            cost = evaluator.evaluate(successor).cost
            if cost < best_cost:
                best_cost = cost
                best_state = successor
        if best_state is None:
            # Local minimum: restart on the next unit, or finish.
            self._current = None
            return self._restarts_left > 0
        self._current, self._current_cost = best_state, best_cost
        evaluator.stats.iterations += 1
        return True


class BeamSearchTask(SearchTask):
    """Keep the ``beam_width`` cheapest states at each depth."""

    strategy = "beam"

    def __init__(
        self,
        model: CostModel,
        initial: DTNode,
        engine: Optional[RuleEngine] = None,
        beam_width: int = 8,
        max_depth: int = 30,
        time_budget_s: float = 10.0,
        k_assignments: int = 5,
        seed: int = 0,
        final_cap: int = 4000,
    ) -> None:
        evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
        super().__init__(
            evaluator, time_budget_s=time_budget_s, final_cap=final_cap
        )
        self._engine = engine or default_engine()
        self._beam_width = beam_width
        self._max_depth = max_depth
        self._depth = 0
        evaluator.restart_clock()
        self._beam: List[DTNode] = [initial]
        self._seen: Set[str] = {initial.canonical_key}
        evaluator.evaluate(initial)
        evaluator.clock.pause()

    def _iterate(self) -> bool:
        if self._depth >= self._max_depth:
            return False
        evaluator = self.evaluator
        # Collect the level's unseen successors first, then score them as
        # one cohort: discovery order is evaluation order, so results are
        # bit-identical to the interleaved loop while each uncached state
        # batches its sampled assignments through the kernel.
        frontier: List[DTNode] = []
        keys: List[str] = []
        for state in self._beam:
            for _, successor in self._engine.neighbors(state):
                key = successor.canonical_key
                if key in self._seen:
                    continue
                self._seen.add(key)
                frontier.append(successor)
                keys.append(key)
        evaluated = evaluator.evaluate_many(frontier)
        candidates = [
            (item.cost, key, state)
            for item, key, state in zip(evaluated, keys, frontier)
        ]
        if not candidates:
            return False
        candidates.sort(key=lambda item: (item[0], item[1]))
        self._beam = [state for _, _, state in candidates[: self._beam_width]]
        evaluator.stats.iterations += 1
        self._depth += 1
        evaluator.stats.max_depth = self._depth
        return True


class ExhaustiveSearchTask(SearchTask):
    """BFS over the whole (deduplicated) state space, up to ``max_states``.

    Exact within its horizon; used on tiny logs to validate that MCTS
    finds the true optimum.  Terminates on its own (no time budget).
    """

    strategy = "exhaustive"

    def __init__(
        self,
        model: CostModel,
        initial: DTNode,
        engine: Optional[RuleEngine] = None,
        max_states: int = 2000,
        k_assignments: int = 5,
        seed: int = 0,
        final_cap: int = 4000,
    ) -> None:
        evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
        super().__init__(evaluator, time_budget_s=None, final_cap=final_cap)
        self._engine = engine or default_engine()
        self._max_states = max_states
        evaluator.restart_clock()
        self._queue: List[DTNode] = [initial]
        self._seen: Set[str] = {initial.canonical_key}
        self._index = 0
        evaluator.evaluate(initial)
        evaluator.clock.pause()

    def _iterate(self) -> bool:
        if self._index >= len(self._queue) or len(self._seen) >= self._max_states:
            return False
        evaluator = self.evaluator
        state = self._queue[self._index]
        self._index += 1
        neighbors = self._engine.neighbors(state)
        evaluator.stats.max_fanout = max(
            evaluator.stats.max_fanout, len(neighbors)
        )
        # Dedupe the expansion first, then score it as one cohort (same
        # order ⇒ same results; see BeamSearchTask._iterate).
        unseen: List[DTNode] = []
        for _, successor in neighbors:
            key = successor.canonical_key
            if key in self._seen:
                continue
            self._seen.add(key)
            unseen.append(successor)
        evaluator.evaluate_many(unseen)
        self._queue.extend(unseen)
        evaluator.stats.iterations += 1
        return True


# -- monolithic conveniences ---------------------------------------------------


def random_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    time_budget_s: float = 5.0,
    max_walk_steps: int = 200,
    k_assignments: int = 5,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """Random walks from the initial state; evaluate every visited state."""
    return RandomSearchTask(
        model,
        initial,
        engine=engine,
        time_budget_s=time_budget_s,
        max_walk_steps=max_walk_steps,
        k_assignments=k_assignments,
        seed=seed,
        final_cap=final_cap,
    ).run()


def greedy_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    time_budget_s: float = 5.0,
    k_assignments: int = 5,
    restarts: int = 0,
    restart_walk: int = 4,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """Steepest-descent hill climbing with optional random restarts."""
    return GreedySearchTask(
        model,
        initial,
        engine=engine,
        time_budget_s=time_budget_s,
        k_assignments=k_assignments,
        restarts=restarts,
        restart_walk=restart_walk,
        seed=seed,
        final_cap=final_cap,
    ).run()


def beam_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    beam_width: int = 8,
    max_depth: int = 30,
    time_budget_s: float = 10.0,
    k_assignments: int = 5,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """Keep the ``beam_width`` cheapest states at each depth."""
    return BeamSearchTask(
        model,
        initial,
        engine=engine,
        beam_width=beam_width,
        max_depth=max_depth,
        time_budget_s=time_budget_s,
        k_assignments=k_assignments,
        seed=seed,
        final_cap=final_cap,
    ).run()


def exhaustive_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    max_states: int = 2000,
    k_assignments: int = 5,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """BFS over the whole (deduplicated) state space, up to ``max_states``."""
    return ExhaustiveSearchTask(
        model,
        initial,
        engine=engine,
        max_states=max_states,
        k_assignments=k_assignments,
        seed=seed,
        final_cap=final_cap,
    ).run()
