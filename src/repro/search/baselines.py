"""Search baselines MCTS is compared against.

* :func:`random_search` — repeated random walks, keep the best state seen.
  Same move set, no statistics: isolates the value of UCT guidance.
* :func:`greedy_search` — steepest-descent hill climbing on state cost
  with optional random restarts; gets stuck in local minima the paper's
  bidirectional rules are designed to escape.
* :func:`beam_search` — breadth-limited systematic search.
* :func:`exhaustive_search` — full BFS with state dedup up to a cap; the
  exact optimum within its horizon, tractable only for tiny logs (used to
  validate MCTS answer quality in tests).
"""

from __future__ import annotations

import random
import time
from typing import Optional

from ..cost import CostModel
from ..difftree import DTNode
from ..rules import RuleEngine, default_engine
from .common import SearchResult, StateEvaluator, finish_search


def random_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    time_budget_s: float = 5.0,
    max_walk_steps: int = 200,
    k_assignments: int = 5,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """Random walks from the initial state; evaluate every visited state."""
    engine = engine or default_engine()
    rng = random.Random(seed)
    evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
    evaluator.restart_clock()
    start = time.perf_counter()
    evaluator.evaluate(initial)
    while time.perf_counter() - start < time_budget_s:
        current = initial
        for _ in range(max_walk_steps):
            if time.perf_counter() - start >= time_budget_s:
                break
            move = engine.random_move(current, rng)
            if move is None:
                break
            current = engine.apply(current, move)
            evaluator.evaluate(current)
            evaluator.stats.walk_steps += 1
        evaluator.stats.iterations += 1
    return finish_search(evaluator, "random", final_cap=final_cap)


def greedy_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    time_budget_s: float = 5.0,
    k_assignments: int = 5,
    restarts: int = 0,
    restart_walk: int = 4,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """Steepest-descent hill climbing with optional random restarts.

    Each restart first takes ``restart_walk`` random steps away from the
    initial state before descending again.
    """
    engine = engine or default_engine()
    rng = random.Random(seed)
    evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
    evaluator.restart_clock()
    start = time.perf_counter()

    def descend(state: DTNode) -> None:
        current = state
        current_cost = evaluator.evaluate(current).cost
        while time.perf_counter() - start < time_budget_s:
            neighbors = engine.neighbors(current)
            evaluator.stats.max_fanout = max(
                evaluator.stats.max_fanout, len(neighbors)
            )
            best_state = None
            best_cost = current_cost
            for _, successor in neighbors:
                cost = evaluator.evaluate(successor).cost
                if cost < best_cost:
                    best_cost = cost
                    best_state = successor
            if best_state is None:
                return
            current, current_cost = best_state, best_cost
            evaluator.stats.iterations += 1

    descend(initial)
    for _ in range(restarts):
        if time.perf_counter() - start >= time_budget_s:
            break
        state = initial
        for _ in range(restart_walk):
            moves = engine.moves(state)
            if not moves:
                break
            state = engine.apply(state, rng.choice(moves))
        descend(state)
    return finish_search(evaluator, "greedy", final_cap=final_cap)


def beam_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    beam_width: int = 8,
    max_depth: int = 30,
    time_budget_s: float = 10.0,
    k_assignments: int = 5,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """Keep the ``beam_width`` cheapest states at each depth."""
    engine = engine or default_engine()
    evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
    evaluator.restart_clock()
    start = time.perf_counter()
    beam = [initial]
    seen = {initial.canonical_key}
    evaluator.evaluate(initial)
    for depth in range(max_depth):
        if time.perf_counter() - start >= time_budget_s:
            break
        candidates = []
        for state in beam:
            for _, successor in engine.neighbors(state):
                key = successor.canonical_key
                if key in seen:
                    continue
                seen.add(key)
                cost = evaluator.evaluate(successor).cost
                candidates.append((cost, key, successor))
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        beam = [state for _, _, state in candidates[:beam_width]]
        evaluator.stats.iterations += 1
        evaluator.stats.max_depth = depth + 1
    return finish_search(evaluator, "beam", final_cap=final_cap)


def exhaustive_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    max_states: int = 2000,
    k_assignments: int = 5,
    seed: int = 0,
    final_cap: int = 4000,
) -> SearchResult:
    """BFS over the whole (deduplicated) state space, up to ``max_states``.

    Exact within its horizon; used on tiny logs to validate that MCTS
    finds the true optimum.
    """
    engine = engine or default_engine()
    evaluator = StateEvaluator(model, k_assignments=k_assignments, seed=seed)
    evaluator.restart_clock()
    queue = [initial]
    seen = {initial.canonical_key}
    evaluator.evaluate(initial)
    index = 0
    while index < len(queue) and len(seen) < max_states:
        state = queue[index]
        index += 1
        neighbors = engine.neighbors(state)
        evaluator.stats.max_fanout = max(evaluator.stats.max_fanout, len(neighbors))
        for _, successor in neighbors:
            key = successor.canonical_key
            if key in seen:
                continue
            seen.add(key)
            evaluator.evaluate(successor)
            queue.append(successor)
        evaluator.stats.iterations += 1
    return finish_search(evaluator, "exhaustive", final_cap=final_cap)
