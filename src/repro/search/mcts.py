"""Monte Carlo Tree Search over difftree states (the paper's search).

Faithful to the paper's description:

* UCT score per visited state: ``w/n + c·sqrt(ln N_parent / n)``.
* Each iteration picks the frontier state with the highest UCT, expands
  *all* of its immediate neighbor states, and performs one random walk of
  up to ``max_walk_steps`` (paper: 200) from each neighbor.
* The reward of a walk is the negated cost of its final state — we map
  costs onto [0, 1] with adaptive normalization so the exploration term
  stays on a comparable scale — and is backpropagated to every state on
  the path to the root.
* State costs are estimated by the best of ``k`` random widget
  assignments (greedy-seeded).
* The search stops on a wall-clock budget (paper: ~1 minute) or an
  iteration cap; the best difftree then receives an exhaustive widget
  enumeration pass.

States are deduplicated by canonical key (a transposition table), so the
UCT statistics of a state reached along two rewrite orders are shared.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cost import CostModel
from ..difftree import DTNode
from ..rules import RuleEngine, default_engine
from .common import SearchResult, StateEvaluator, normalized_reward

#: The compressing (forward) rules used by the biased rollout policy.
_FORWARD_RULES = ("Lift", "Any2All", "Optional", "Multi")


@dataclass(frozen=True)
class MCTSConfig:
    """Tunables of the MCTS search (paper defaults where stated).

    Attributes:
        exploration_c: UCT exploration constant ``c``.
        max_walk_steps: random-walk cap per simulation (paper: 200).
        k_assignments: widget-assignment samples per state reward
            (the paper's ``k``).
        time_budget_s: wall-clock stop (paper: ~60 s; benches use less).
        max_iterations: hard iteration cap (0 = unlimited).
        walk_stop_prob: per-step probability of ending a walk early —
            keeps expected walk length well below the cap on states whose
            neighborhoods never dry up (bidirectional rules).
        max_children: expansion samples at most this many neighbors when
            a state's fanout explodes (mid-space fanouts reach the
            hundreds); the rest remain reachable via later re-expansion
            of their siblings.
        rollouts_per_expansion: at most this many of the new children get
            a random-walk simulation per iteration (every child is still
            directly evaluated).  The paper simulates from *all*
            neighbors with a ~60 s budget; capping keeps iterations
            cheap enough for second-scale budgets.
        rollout_forward_bias: probability that a rollout step samples
            only the *compressing* rules (Lift/Any2All/Optional/Multi).
            With the bidirectional rule set, unbiased walks are dominated
            by Distribute moves (hundreds per state) and rarely visit the
            well-factored region; biasing the rollout policy — a standard
            informed-rollout technique — restores signal while keeping
            inverse moves available for escaping local structure.
        walk_eval_prob: probability of also evaluating an *intermediate*
            walk state (the paper scores only the final state; sampling a
            few interior states lets the incumbent catch good states a
            walk merely passes through).
        seed: RNG seed; fixed seed ⇒ reproducible searches.
        final_cap: widget-enumeration cap for the final phase.
    """

    exploration_c: float = 1.4
    max_walk_steps: int = 200
    k_assignments: int = 5
    time_budget_s: float = 5.0
    max_iterations: int = 0
    walk_stop_prob: float = 0.03
    rollout_forward_bias: float = 0.75
    walk_eval_prob: float = 0.3
    max_children: int = 24
    rollouts_per_expansion: int = 6
    seed: int = 0
    final_cap: int = 4000


@dataclass
class _TreeNode:
    state: DTNode
    parent_key: Optional[str]
    visits: int = 0
    reward_sum: float = 0.0
    expanded: bool = False
    depth: int = 0

    def mean_reward(self) -> float:
        return self.reward_sum / self.visits if self.visits else 0.0


class MCTS:
    """One reusable search instance (per query log / screen / config)."""

    def __init__(
        self,
        model: CostModel,
        engine: Optional[RuleEngine] = None,
        config: MCTSConfig = MCTSConfig(),
    ) -> None:
        self.model = model
        self.engine = engine or default_engine()
        self.config = config
        self.rng = random.Random(config.seed)
        self.evaluator = StateEvaluator(
            model, k_assignments=config.k_assignments, seed=config.seed
        )
        self.nodes: Dict[str, _TreeNode] = {}
        self.frontier: List[str] = []
        self._best_seen_cost = math.inf
        self._worst_seen_cost = -math.inf
        self._deadline = math.inf

    # -- public API ---------------------------------------------------------

    def search(self, initial: DTNode) -> SearchResult:
        """Run the search from ``initial`` and return the optimized result."""
        config = self.config
        self.evaluator.restart_clock()
        root = _TreeNode(state=initial, parent_key=None, depth=0)
        root_key = initial.canonical_key
        self.nodes[root_key] = root
        self.frontier = [root_key]
        self._observe_cost(self.evaluator.evaluate(initial).cost)
        self._backpropagate(root_key, self._reward_of(initial))

        self._deadline = time.perf_counter() + config.time_budget_s
        while True:
            if config.max_iterations and self.evaluator.stats.iterations >= config.max_iterations:
                break
            if time.perf_counter() >= self._deadline:
                break
            if not self.frontier:
                break
            self._iterate()
            self.evaluator.stats.iterations += 1

        best = self.evaluator.finalize(final_cap=config.final_cap)
        return SearchResult(
            best=best,
            best_state=best.tree,
            history=list(self.evaluator.history),
            stats=self.evaluator.stats,
            elapsed=self.evaluator.elapsed,
            strategy="mcts",
        )

    # -- internals -----------------------------------------------------------

    def _iterate(self) -> None:
        key = self._select()
        node = self.nodes[key]
        node.expanded = True
        self.frontier.remove(key)
        self.evaluator.stats.states_expanded += 1

        neighbors = self.engine.neighbors(node.state)
        self.evaluator.stats.max_fanout = max(
            self.evaluator.stats.max_fanout, len(neighbors)
        )
        if len(neighbors) > self.config.max_children:
            neighbors = self.rng.sample(neighbors, self.config.max_children)
        simulations_left = self.config.rollouts_per_expansion
        for _, successor in neighbors:
            child_key = successor.canonical_key
            child = self.nodes.get(child_key)
            if child is None:
                child = _TreeNode(
                    state=successor, parent_key=key, depth=node.depth + 1
                )
                self.nodes[child_key] = child
                self.frontier.append(child_key)
                self.evaluator.stats.max_depth = max(
                    self.evaluator.stats.max_depth, child.depth
                )
            # Evaluate the neighbor itself (keeps the incumbent exact for
            # states one move away), then one simulation from it (paper:
            # "a random walk ... from all of its immediate neighbor
            # states" — capped by rollouts_per_expansion for small
            # budgets; direct evaluation still seeds the child's reward).
            direct = self._reward_of(successor)
            if simulations_left > 0:
                simulations_left -= 1
                reward = self._simulate(successor)
            else:
                reward = direct
            self._backpropagate(child_key, reward)
            if time.perf_counter() >= self._deadline:
                break

    def _select(self) -> str:
        """Frontier state with the highest UCT."""
        config = self.config
        best_key = self.frontier[0]
        best_score = -math.inf
        for key in self.frontier:
            node = self.nodes[key]
            if node.visits == 0:
                return key
            parent = self.nodes.get(node.parent_key) if node.parent_key else None
            parent_visits = parent.visits if parent else node.visits
            explore = config.exploration_c * math.sqrt(
                math.log(max(parent_visits, 1) + 1) / node.visits
            )
            score = node.mean_reward() + explore
            if score > best_score:
                best_score = score
                best_key = key
        return best_key

    def _simulate(self, state: DTNode) -> float:
        """Random walk of up to ``max_walk_steps``; reward of final state."""
        config = self.config
        current = state
        for _ in range(config.max_walk_steps):
            if config.walk_stop_prob and self.rng.random() < config.walk_stop_prob:
                break
            if time.perf_counter() >= self._deadline:
                break
            if self.rng.random() < config.rollout_forward_bias:
                move = self.engine.random_move(
                    current, self.rng, rule_names=_FORWARD_RULES
                )
                if move is None:
                    move = self.engine.random_move(current, self.rng)
            else:
                move = self.engine.random_move(current, self.rng)
            if move is None:
                break
            current = self.engine.apply(current, move)
            self.evaluator.stats.walk_steps += 1
            if config.walk_eval_prob and self.rng.random() < config.walk_eval_prob:
                self._reward_of(current)
        return self._reward_of(current)

    def _reward_of(self, state: DTNode) -> float:
        cost = self.evaluator.evaluate(state).cost
        self._observe_cost(cost)
        return normalized_reward(cost, self._best_seen_cost, self._worst_seen_cost)

    def _observe_cost(self, cost: float) -> None:
        if math.isinf(cost):
            return
        self._best_seen_cost = min(self._best_seen_cost, cost)
        self._worst_seen_cost = max(self._worst_seen_cost, cost)

    def _backpropagate(self, key: str, reward: float) -> None:
        cursor: Optional[str] = key
        seen = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            node = self.nodes[cursor]
            node.visits += 1
            node.reward_sum += reward
            cursor = node.parent_key


def mcts_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    config: MCTSConfig = MCTSConfig(),
) -> SearchResult:
    """Convenience wrapper: run one MCTS search."""
    return MCTS(model, engine=engine, config=config).search(initial)
