"""Monte Carlo Tree Search over difftree states (the paper's search).

Faithful to the paper's description:

* UCT score per visited state: ``w/n + c·sqrt(ln N_parent / n)``.
* Each iteration picks the frontier state with the highest UCT, expands
  *all* of its immediate neighbor states, and performs one random walk of
  up to ``max_walk_steps`` (paper: 200) from each neighbor.
* The reward of a walk is the negated cost of its final state — we map
  costs onto [0, 1] with adaptive normalization so the exploration term
  stays on a comparable scale — and is backpropagated to every state on
  the path to the root.
* State costs are estimated by the best of ``k`` random widget
  assignments (greedy-seeded), scored through the compiled cost kernel
  (:mod:`repro.cost.kernel`): samples are decision vectors evaluated
  against per-state flat arrays, so a rollout step costs table lookups
  rather than widget-tree derivations and walks.
* The search stops on a wall-clock budget (paper: ~1 minute) or an
  iteration cap; the best difftree then receives an exhaustive widget
  enumeration pass.

States are deduplicated by canonical key (a transposition table), so the
UCT statistics of a state reached along two rewrite orders are shared.

Frontier selection uses a *lazy* max-heap keyed by UCT: entries are
pushed with the score current at push time, and a popped entry whose
stored score no longer matches the node's current UCT is re-pushed with
the fresh score instead of being selected.  Scores drift only through
visit-count updates (slowly, via the ``sqrt(ln N / n)`` term), so almost
all pops are exact and selection is O(log n) amortized instead of the
O(frontier) linear scan.

The search can be *warm-started* for incremental serving
(:mod:`repro.serve`): a prior node table can be injected at construction
and known-good states (e.g. the previous run's best difftree extended to
newly appended queries) can seed the transposition table and the
incumbent before the first iteration.

The search is *resumable*: :meth:`MCTS.open` performs the setup (root,
frontier rebuild, warm seeding) and returns an :class:`MCTSTask` whose
``step(n_iterations=..., slice_s=...)`` runs bounded slices of the
iteration loop — the unit the multi-session scheduler time-slices.
:meth:`MCTS.search` is now exactly ``open`` + one unbounded ``step`` +
``result``, so monolithic and sliced runs share every code path and are
bit-for-bit identical at equal iteration counts.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cost import CostModel
from ..difftree import DTNode
from ..rules import RuleEngine, default_engine
from .common import (
    SearchResult,
    SearchTask,
    StateEvaluator,
    normalized_reward,
)

#: The compressing (forward) rules used by the biased rollout policy.
_FORWARD_RULES = ("Lift", "Any2All", "Optional", "Multi")

#: Score drift below this is treated as exact when validating heap entries.
_SCORE_EPS = 1e-12


@dataclass(frozen=True)
class MCTSConfig:
    """Tunables of the MCTS search (paper defaults where stated).

    Attributes:
        exploration_c: UCT exploration constant ``c``.
        max_walk_steps: random-walk cap per simulation (paper: 200).
        k_assignments: widget-assignment samples per state reward
            (the paper's ``k``).
        time_budget_s: wall-clock stop (paper: ~60 s; benches use less).
        max_iterations: hard iteration cap (0 = unlimited).
        walk_stop_prob: per-step probability of ending a walk early —
            keeps expected walk length well below the cap on states whose
            neighborhoods never dry up (bidirectional rules).
        max_children: expansion samples at most this many neighbors when
            a state's fanout explodes (mid-space fanouts reach the
            hundreds); the rest remain reachable via later re-expansion
            of their siblings.
        rollouts_per_expansion: at most this many of the new children get
            a random-walk simulation per iteration (every child is still
            directly evaluated).  The paper simulates from *all*
            neighbors with a ~60 s budget; capping keeps iterations
            cheap enough for second-scale budgets.
        rollout_forward_bias: probability that a rollout step samples
            only the *compressing* rules (Lift/Any2All/Optional/Multi).
            With the bidirectional rule set, unbiased walks are dominated
            by Distribute moves (hundreds per state) and rarely visit the
            well-factored region; biasing the rollout policy — a standard
            informed-rollout technique — restores signal while keeping
            inverse moves available for escaping local structure.
        walk_eval_prob: probability of also evaluating an *intermediate*
            walk state (the paper scores only the final state; sampling a
            few interior states lets the incumbent catch good states a
            walk merely passes through).
        warm_seed_budget_frac: at most this fraction of the time budget
            may be spent evaluating warm-start states before the search
            loop — seeding many large states must not starve the search
            itself.
        seed: RNG seed; fixed seed ⇒ reproducible searches.
        final_cap: widget-enumeration cap for the final phase.
    """

    exploration_c: float = 1.4
    max_walk_steps: int = 200
    k_assignments: int = 5
    time_budget_s: float = 5.0
    max_iterations: int = 0
    walk_stop_prob: float = 0.03
    rollout_forward_bias: float = 0.75
    walk_eval_prob: float = 0.3
    max_children: int = 24
    rollouts_per_expansion: int = 6
    warm_seed_budget_frac: float = 0.5
    seed: int = 0
    final_cap: int = 4000


@dataclass
class _TreeNode:
    state: DTNode
    parent_key: Optional[str]
    visits: int = 0
    reward_sum: float = 0.0
    expanded: bool = False
    depth: int = 0

    def mean_reward(self) -> float:
        return self.reward_sum / self.visits if self.visits else 0.0


class MCTS:
    """One reusable search instance (per query log / screen / config).

    Args:
        model: cost model for the (full, current) query log.
        engine: rewrite-rule engine.
        config: search tunables.
        evaluator: optional pre-built state evaluator to reuse (its
            incumbent and history carry into this search).
        node_table: optional transposition table to start from; every
            unexpanded entry re-enters the selection frontier.  Entries
            must describe states valid for *this* search's query log —
            :mod:`repro.serve` extends prior states to appended queries
            before injecting them.
    """

    def __init__(
        self,
        model: CostModel,
        engine: Optional[RuleEngine] = None,
        config: MCTSConfig = MCTSConfig(),
        evaluator: Optional[StateEvaluator] = None,
        node_table: Optional[Dict[str, _TreeNode]] = None,
    ) -> None:
        self.model = model
        self.engine = engine or default_engine()
        self.config = config
        self.rng = random.Random(config.seed)
        self.evaluator = evaluator or StateEvaluator(
            model, k_assignments=config.k_assignments, seed=config.seed
        )
        self.nodes: Dict[str, _TreeNode] = node_table if node_table is not None else {}
        #: Unexpanded node keys eligible for selection.
        self.frontier: set = set()
        self._heap: List[Tuple[float, int, str]] = []
        self._heap_seq = 0
        self._best_seen_cost = math.inf
        self._worst_seen_cost = -math.inf
        self._deadline = math.inf

    # -- public API ---------------------------------------------------------

    def open(
        self, initial: DTNode, warm_states: Sequence[DTNode] = ()
    ) -> "MCTSTask":
        """Open a resumable search task from ``initial``.

        Performs the whole pre-loop setup — root node, frontier rebuild,
        initial evaluation, warm-state seeding — and returns the
        :class:`MCTSTask` whose ``step()`` runs the iteration loop in
        bounded slices.  Setup time counts against the task's budget
        (its clock runs during this call), exactly as in a monolithic
        run.  One MCTS instance drives one live task at a time: opening
        again rebuilds the frontier and restarts the clock.

        Args:
            initial: the root state (``ANY`` over the query log).
            warm_states: states expressing the full log that seed the
                transposition table and the incumbent before the first
                iteration (typically the previous run's best difftree
                extended to the appended queries).  Seeding costs budget
                like any other evaluation, so warm and cold runs at the
                same ``time_budget_s`` are directly comparable.
        """
        self.evaluator.restart_clock()
        self._deadline = math.inf

        root_key = initial.canonical_key
        root = self.nodes.get(root_key)
        if root is None:
            root = _TreeNode(state=initial, parent_key=None, depth=0)
            self.nodes[root_key] = root
        # Rebuild the frontier: every known-but-unexpanded state competes
        # for selection (covers both a fresh root and an injected table).
        self.frontier = set()
        self._heap = []
        for key, node in self.nodes.items():
            if not node.expanded:
                self._enter_frontier(key)
        self._observe_cost(self.evaluator.evaluate(initial).cost)
        self._backpropagate(root_key, self._reward_of(initial))

        self._seed_warm_states(root_key, warm_states)

        task = MCTSTask(self)
        # The task is idle until its first step(); budget accrues only
        # while it actively runs.
        self.evaluator.clock.pause()
        return task

    def search(
        self, initial: DTNode, warm_states: Sequence[DTNode] = ()
    ) -> SearchResult:
        """Monolithic convenience: ``open`` + step to completion + result."""
        return self.open(initial, warm_states=warm_states).run()

    # -- internals -----------------------------------------------------------

    def _seed_warm_states(
        self, root_key: str, warm_states: Sequence[DTNode]
    ) -> None:
        """Inject known-good states as direct children of the root.

        At most ``warm_seed_budget_frac`` of a finite time budget may be
        spent here (measured on the task clock, which is live during
        ``open``); an iteration-capped run without a time budget seeds
        every warm state — slicing must stay deterministic.
        """
        config = self.config
        seed_budget = (
            config.time_budget_s * config.warm_seed_budget_frac
            if config.time_budget_s > 0
            else math.inf
        )
        primary = True
        for state in warm_states:
            if self.evaluator.clock.elapsed >= seed_budget:
                break
            key = state.canonical_key
            if key == root_key:
                continue
            node = self.nodes.get(key)
            if node is None:
                node = _TreeNode(state=state, parent_key=root_key, depth=1)
                self.nodes[key] = node
                self._enter_frontier(key)
            if primary:
                # The first seed (the extended prior best) gets the
                # thorough widget pass: it is the incumbent *floor*, and
                # one unlucky sampled assignment must not let a weaker
                # state steal the incumbent from it.  Further seeds only
                # guide UCT — sampling is enough and far cheaper.
                primary = False
                evaluated = self.evaluator.seed_incumbent(
                    state, final_cap=config.final_cap
                )
                self._observe_cost(evaluated.cost)
                reward = normalized_reward(
                    evaluated.cost, self._best_seen_cost, self._worst_seen_cost
                )
            else:
                reward = self._reward_of(state)
            self._backpropagate(key, reward)
            self.evaluator.stats.warm_states_seeded += 1

    def _enter_frontier(self, key: str) -> None:
        self.frontier.add(key)
        self._push(key)
        self.evaluator.stats.frontier_peak = max(
            self.evaluator.stats.frontier_peak, len(self.frontier)
        )

    def _push(self, key: str) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (-self._uct(key), self._heap_seq, key))

    def _uct(self, key: str) -> float:
        node = self.nodes[key]
        if node.visits == 0:
            return math.inf
        parent = self.nodes.get(node.parent_key) if node.parent_key else None
        parent_visits = parent.visits if parent else node.visits
        explore = self.config.exploration_c * math.sqrt(
            math.log(max(parent_visits, 1) + 1) / node.visits
        )
        return node.mean_reward() + explore

    def _iterate(self) -> None:
        key = self._select()
        node = self.nodes[key]
        node.expanded = True
        self.frontier.discard(key)
        self.evaluator.stats.states_expanded += 1

        # Sample moves *before* materializing successors: applying a move
        # costs O(subtree), so building every neighbor of a large serving
        # state (fanouts reach the thousands) just to sample max_children
        # of them afterwards would dominate the iteration.
        moves = self.engine.moves(node.state)
        self.evaluator.stats.max_fanout = max(
            self.evaluator.stats.max_fanout, len(moves)
        )
        if len(moves) > self.config.max_children:
            moves = self.rng.sample(moves, self.config.max_children)
        # Phase 1 — materialize and dedupe the whole child cohort without
        # evaluating anything: applying moves is pure tree work, so the
        # expansion's evaluation demand is known up front.
        seen_children = {key}
        cohort: List[Tuple[str, DTNode]] = []
        for move in moves:
            successor = self.engine.apply(node.state, move)
            child_key = successor.canonical_key
            if child_key in seen_children:
                continue  # self-loop or duplicate under normalization
            seen_children.add(child_key)
            child = self.nodes.get(child_key)
            if child is None:
                child = _TreeNode(
                    state=successor, parent_key=key, depth=node.depth + 1
                )
                self.nodes[child_key] = child
                self._enter_frontier(child_key)
                self.evaluator.stats.max_depth = max(
                    self.evaluator.stats.max_depth, child.depth
                )
            cohort.append((child_key, successor))
        # Phase 2 — score the cohort: each uncached child's k sampled
        # assignments go through one batched kernel population instead of
        # k scalar loads (see StateEvaluator.evaluate_many).
        self.evaluator.evaluate_many([state for _, state in cohort])
        # Phase 3 — rewards, simulations, and backpropagation in cohort
        # order.  Direct evaluation keeps the incumbent exact for states
        # one move away; one simulation per child (paper: "a random walk
        # ... from all of its immediate neighbor states" — capped by
        # rollouts_per_expansion for small budgets).
        simulations_left = self.config.rollouts_per_expansion
        for child_key, successor in cohort:
            direct = self._reward_of(successor)
            if simulations_left > 0:
                simulations_left -= 1
                reward = self._simulate(successor)
            else:
                reward = direct
            self._backpropagate(child_key, reward)
            if time.perf_counter() >= self._deadline:
                break

    def _select(self) -> str:
        """Frontier state with the (approximately) highest UCT.

        Pops the best stored score; a stale entry (its node's UCT changed
        since the push, or the node already left the frontier) is
        discarded or re-pushed with the fresh score.  Within one call no
        statistics change, so each key is re-pushed at most once and the
        loop terminates.

        Laziness is one-sided: an entry whose current score *dropped* is
        always caught on pop, but one whose score *rose* (its parent's
        visit count grew through siblings) keeps its old, lower heap
        position until popped, so selection can briefly prefer another
        near-maximal node.  The rise is bounded by the slow-growing
        ``sqrt(ln N / n)`` term — and is identical for siblings sharing
        the parent, preserving their relative order — which is the
        trade accepted for O(log n) selection over the O(frontier) scan.
        """
        while self._heap:
            neg_score, _, key = heapq.heappop(self._heap)
            if key not in self.frontier:
                continue
            current = self._uct(key)
            if current == -neg_score or abs(current + neg_score) <= _SCORE_EPS:
                return key
            self.evaluator.stats.frontier_refreshes += 1
            self._push(key)
        # The heap only empties if the frontier did too; callers check
        # the frontier before iterating, so this is unreachable in the
        # search loop — kept as a hard failure for misuse.
        raise RuntimeError("selection on an empty frontier")

    def _simulate(self, state: DTNode) -> float:
        """Random walk of up to ``max_walk_steps``; reward of final state."""
        config = self.config
        current = state
        for _ in range(config.max_walk_steps):
            if config.walk_stop_prob and self.rng.random() < config.walk_stop_prob:
                break
            if time.perf_counter() >= self._deadline:
                break
            if self.rng.random() < config.rollout_forward_bias:
                move = self.engine.random_move(
                    current, self.rng, rule_names=_FORWARD_RULES
                )
                if move is None:
                    move = self.engine.random_move(current, self.rng)
            else:
                move = self.engine.random_move(current, self.rng)
            if move is None:
                break
            current = self.engine.apply(current, move)
            self.evaluator.stats.walk_steps += 1
            if config.walk_eval_prob and self.rng.random() < config.walk_eval_prob:
                self._reward_of(current)
        return self._reward_of(current)

    def _reward_of(self, state: DTNode) -> float:
        cost = self.evaluator.evaluate(state).cost
        self._observe_cost(cost)
        return normalized_reward(cost, self._best_seen_cost, self._worst_seen_cost)

    def _observe_cost(self, cost: float) -> None:
        if math.isinf(cost):
            return
        self._best_seen_cost = min(self._best_seen_cost, cost)
        self._worst_seen_cost = max(self._worst_seen_cost, cost)

    def _backpropagate(self, key: str, reward: float) -> None:
        cursor: Optional[str] = key
        seen = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            node = self.nodes[cursor]
            node.visits += 1
            node.reward_sum += reward
            cursor = node.parent_key


class MCTSTask(SearchTask):
    """The resumable slice-driver of one opened MCTS search.

    One unit of work is one full MCTS iteration (selection, expansion,
    simulations, backpropagation) — the granularity the scheduler
    preempts at.  All mutable search state lives on the owning
    :class:`MCTS` instance; the task adds only slicing and budget
    accounting (see :class:`~repro.search.common.SearchTask`), so
    ``step(3)`` + ``step(2)`` is bit-for-bit ``step(5)``.
    """

    strategy = "mcts"

    def __init__(self, search: MCTS) -> None:
        config = search.config
        super().__init__(
            search.evaluator,
            time_budget_s=config.time_budget_s,
            max_iterations=config.max_iterations,
            final_cap=config.final_cap,
        )
        self.search = search

    def _iterate(self) -> bool:
        mcts = self.search
        if not mcts.frontier:
            return False
        # Inner loops (move expansion, random walks) yield at the slice
        # deadline the base class computed for this unit.
        mcts._deadline = self._deadline
        mcts._iterate()
        self.evaluator.stats.iterations += 1
        return True


def mcts_search(
    model: CostModel,
    initial: DTNode,
    engine: Optional[RuleEngine] = None,
    config: MCTSConfig = MCTSConfig(),
    warm_states: Sequence[DTNode] = (),
) -> SearchResult:
    """Convenience wrapper: run one MCTS search (optionally warm-started)."""
    return MCTS(model, engine=engine, config=config).search(
        initial, warm_states=warm_states
    )
