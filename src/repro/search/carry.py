"""Cross-append carry of the MCTS search tree, with delta-scoped invalidation.

Warm start (:mod:`repro.serve.incremental`) reseeds each append's search
with the prior incumbent and elites, but the *search tree itself* — UCT
visit counts, mean rewards, the unexpanded frontier — was rebuilt from
scratch every run, so per-append search work grew with log size even
though :meth:`repro.cost.kernel.CompiledSequence.extend` already knows
exactly which choice-sets an append touches.

This module makes the session's search state maintainable in the
FO+MOD-under-updates sense (Berkholz et al.: maintain answers under
updates with bounded recompute instead of re-evaluating from scratch):

* :meth:`CarriedTree.harvest` — at the end of a run, keep the (capped,
  parent-closed) transposition table together with each kept state's
  *choice-path universe*: the set of choice paths its compiled query
  sequence exercises, peeked from the cost model's kernel cache.
* :meth:`CarriedTree.rebase` — at the next run, diff the appended
  queries' changed choice-paths *per carried state* (through the
  fingerprint-memoized matcher, so repeated query shapes re-walk
  nothing) and re-key the survivors onto the grown difftree:

  - the **root** always survives — it is re-keyed to the new run's
    initial state (the ``ANY`` over the grown log) but restarts
    *stat-free*: its carried visit count (one per backpropagation of
    the prior run) would crush the UCT exploration bonus and starve
    the root re-expansion the append makes necessary;
  - a non-root node survives iff its parent survived, its state already
    expresses every appended query (the difftree extension is an
    identity graft for it, so its canonical key — and hence its
    transposition identity — is unchanged), **and** the appended pairs'
    changed choice-paths fall inside its harvested universe (the append
    only re-weights decision territory its statistics already cover);
  - everything else is invalidated; a surviving parent that lost a
    child — and any survivor the append touched (non-empty delta, or
    the re-anchored root) — is reopened (``expanded`` cleared) so the
    search can re-derive the changed subtree under the new cost surface.

  Invalidation therefore propagates downward — the carried table stays
  parent-closed, which ``MCTS._backpropagate`` requires — and the
  surviving nodes re-enter :meth:`repro.search.mcts.MCTS.open`'s
  frontier rebuild with their mean rewards intact and their visit mass
  decayed by :data:`STAT_DECAY` (ranking survives, exploration
  pressure returns).

Retention windows (:meth:`repro.serve.stream.LogStream.retain` /
``remove``) use the same bounded-recompute story: the serve layer
retracts removed queries from the carried compiled sequences
(:meth:`repro.cost.kernel.CompiledSequence.without` re-diffs only the
rejoined boundary pairs) and shrinks the carried universes accordingly;
the counters here let the maintenance benchmark assert that only
choice-sets anchored in dropped queries were recomputed.

Everything is gated by :func:`repro.memo.carry_enabled` — disabling the
gate (or the master fast-path gate) restores the rebuild-from-scratch
reference path, which the maintenance benchmark uses as its parity
oracle, per the established gate idiom.

Rewards carried across an append were normalized against the *old* log's
cost range; they are heuristic guidance for UCT (like warm seeds), not
ground truth — state costs themselves are always re-evaluated against
the current log, so carrying never changes which interface a converged
search reports, only how fast it converges.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..difftree import DTNode, Path, assignment_for
from ..difftree.columnar import ColumnarTree
from ..difftree.express import changed_choices
from ..obs import REGISTRY as _OBS_REGISTRY
from ..sqlast import nodes as N
from .mcts import MCTS, _TreeNode

__all__ = ["CarriedTree", "CarryStats", "STATS", "STAT_DECAY"]


@dataclass
class CarryStats:
    """Process-wide carry/invalidation counters (see :data:`STATS`).

    Attributes:
        trees_harvested: finished runs whose table was carried.
        trees_rebased: carried tables re-keyed onto a grown difftree.
        nodes_harvested: nodes kept at harvest time (post-cap).
        nodes_capped: nodes dropped by the harvest size cap.
        nodes_carried: nodes that survived a rebase (mean rewards kept,
            visit mass decayed; the re-anchored root restarts stat-free).
        nodes_invalidated: nodes dropped by a rebase (parent gone, new
            query inexpressible, or delta outside the universe).
        nodes_rekeyed: survivors whose parent link was re-keyed (root
            re-anchoring included).
        nodes_reopened: survivors re-entered into the frontier — parents
            whose invalidated child left their subtree incomplete, and
            nodes the append touched (non-empty delta or the re-anchored
            root), whose move set may have gained actions.
        retention_removals: queries dropped by ``remove()``/``retain()``.
        retention_retracts: carried compiled sequences retracted in
            place after a removal (instead of a full recompile).
        retention_pairs_rediffed: rejoined boundary pairs re-diffed by
            those retractions — the *only* changed-choice recompute a
            retention window is allowed to pay.
    """

    trees_harvested: int = 0
    trees_rebased: int = 0
    nodes_harvested: int = 0
    nodes_capped: int = 0
    nodes_carried: int = 0
    nodes_invalidated: int = 0
    nodes_rekeyed: int = 0
    nodes_reopened: int = 0
    retention_removals: int = 0
    retention_retracts: int = 0
    retention_pairs_rediffed: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict snapshot (stable keys, JSON-native values)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


#: The process-wide counter instance; registered as ``search.carry.*``.
#: Plain unlocked ints, like :data:`repro.memo.INGEST` — monotone and
#: approximate under concurrency, exact in the single-threaded benches.
STATS = CarryStats()

_OBS_REGISTRY.register_source("search.carry", STATS.snapshot)


#: How much of a node's visit mass survives a rebase.  Carried rewards
#: were normalized against the *previous* run's cost range, so their
#: means still rank siblings usefully but their visit counts overstate
#: how much the statistics say about the *grown* log's cost surface.
#: Decaying visits (mean rewards preserved) restores UCT's exploration
#: pressure — without it the re-anchored root's huge carried visit count
#: starves the very re-expansion the append made necessary.
STAT_DECAY = 0.25


def _copy_node(
    node: _TreeNode, parent_key: Optional[str], decay: float = 1.0
) -> _TreeNode:
    """A detached copy of one tree node (carried tables own their nodes).

    ``decay`` < 1 shrinks the visit count (floor 1) while preserving the
    mean reward, so a rebased node keeps its ranking but regains an
    exploration bonus under UCT.
    """
    visits = node.visits
    reward_sum = node.reward_sum
    if decay < 1.0 and visits:
        mean = reward_sum / visits
        visits = max(1, int(visits * decay))
        reward_sum = mean * visits
    return _TreeNode(
        state=node.state,
        parent_key=parent_key,
        visits=visits,
        reward_sum=reward_sum,
        expanded=node.expanded,
        depth=node.depth,
    )


@dataclass
class CarriedTree:
    """One session's search tree, carried between runs.

    Attributes:
        nodes: canonical key -> node, in insertion order.  MCTS creates
            parents before children, so iteration order is topological —
            the invariant both :meth:`rebase` (parent-before-child
            survival) and determinism (the frontier heap's tie-breaking
            sequence numbers follow insertion order) rely on.
        universes: canonical key -> the choice-path set the state's
            compiled query sequence exercises, where the model's kernel
            cache still held it at harvest time (``None`` entries are
            treated as *unknown* and invalidated on any non-empty
            append delta).
        log_len: how many leading queries of the session's stream the
            carried statistics reflect.  Maintained by the serve layer
            across appends *and* retention removals.
    """

    nodes: Dict[str, _TreeNode]
    universes: Dict[str, Optional[FrozenSet[Path]]]
    log_len: int

    # -- harvest -------------------------------------------------------------

    @classmethod
    def harvest(
        cls,
        mcts: MCTS,
        model,
        log_len: int,
        max_nodes: int = 256,
    ) -> "CarriedTree":
        """Carry a finished run's transposition table.

        Keeps at most ``max_nodes`` nodes: the root plus the most-visited
        states, closed under parents (a kept node's whole ancestor chain
        is kept — backpropagation walks it), in original insertion order.
        Universes are *peeked* from the model's bounded kernel cache —
        harvesting compiles nothing.
        """
        source = mcts.nodes
        keep: set = set()
        if len(source) <= max_nodes:
            keep.update(source)
        else:
            ranked = sorted(
                source.items(), key=lambda item: item[1].visits, reverse=True
            )
            for key, node in ranked:
                if len(keep) >= max_nodes:
                    break
                chain = []
                cursor: Optional[str] = key
                while cursor is not None and cursor not in keep:
                    chain.append(cursor)
                    cursor = source[cursor].parent_key
                # All-or-nothing per ancestor chain: partial chains would
                # orphan the node under the cap.
                if len(keep) + len(chain) <= max_nodes:
                    keep.update(chain)
        nodes: Dict[str, _TreeNode] = {}
        universes: Dict[str, Optional[FrozenSet[Path]]] = {}
        for key, node in source.items():  # insertion order preserved
            if key not in keep:
                continue
            nodes[key] = _copy_node(node, node.parent_key)
            universes[key] = model.sequence_universe(node.state)
        STATS.trees_harvested += 1
        STATS.nodes_harvested += len(nodes)
        STATS.nodes_capped += len(source) - len(nodes)
        return cls(nodes=nodes, universes=universes, log_len=log_len)

    # -- rebase --------------------------------------------------------------

    def rebase(
        self,
        new_initial: DTNode,
        boundary: Optional[N.Node],
        appended: Sequence[N.Node],
        decay: float = STAT_DECAY,
    ) -> Tuple[Dict[str, _TreeNode], Dict[str, int]]:
        """Re-key the carried table onto the grown difftree.

        Args:
            new_initial: the next run's initial state (``ANY`` over the
                grown log) — the carried root is re-anchored to it.
            boundary: the last query the carried statistics covered
                (``None`` only for degenerate empty carries) — the
                append's first changed pair straddles it.
            appended: the queries appended since harvest.

        Returns ``(node_table, provenance)``: a fresh parent-closed
        table ready for ``MCTS(node_table=...)`` plus the per-run
        counters (also accumulated into :data:`STATS`).
        """
        table: Dict[str, _TreeNode] = {}
        survived: Dict[str, str] = {}  # old key -> key in the new table
        carried = invalidated = rekeyed = reopened = 0
        lost_child: set = set()  # new keys of parents with invalidated kids
        touched: set = set()  # new keys whose state the append extended
        appended = tuple(appended)
        new_root_key = new_initial.canonical_key

        for key, node in self.nodes.items():
            if node.parent_key is None:
                # The root: always survives, re-anchored to the grown
                # log's initial state — but with its statistics dropped.
                # Root visits count *every* backpropagation of the prior
                # run, normalized against the prior cost range; carrying
                # them would crush the root's UCT exploration bonus and
                # starve the re-expansion the append made necessary.  A
                # stat-free reopened root makes a root-only rebase
                # behave exactly like a from-scratch rebuild.
                root = _copy_node(node, None)
                root.state = new_initial
                root.visits = 0
                root.reward_sum = 0.0
                table[new_root_key] = root
                survived[key] = new_root_key
                carried += 1
                if key != new_root_key:
                    rekeyed += 1
                    touched.add(new_root_key)
                continue
            parent_key = survived.get(node.parent_key)
            if parent_key is None:
                invalidated += 1
                continue
            if key in table:
                # The new initial (or an earlier survivor) already owns
                # this canonical key — transpositions merge, never clash.
                invalidated += 1
                lost_child.add(parent_key)
                continue
            delta = self._append_delta(node.state, boundary, appended)
            if delta is None:
                # Some appended query is inexpressible: the extension
                # grafts new structure into this state, shifting its
                # choice paths — its statistics describe a tree that no
                # longer exists.
                invalidated += 1
                lost_child.add(parent_key)
                continue
            if delta:
                universe = self.universes.get(key)
                if universe is None or not delta <= universe:
                    # The append exercises decision territory this
                    # state's statistics never saw (or the universe is
                    # unknown): the carried reward mean is untrustworthy.
                    invalidated += 1
                    lost_child.add(parent_key)
                    continue
            table[key] = _copy_node(node, parent_key, decay)
            survived[key] = key
            carried += 1
            if delta:
                touched.add(key)
            if parent_key != node.parent_key:
                rekeyed += 1

        # Two kinds of survivors re-enter the frontier (MCTS only expands
        # frontier nodes): parents that lost a child, whose invalidated
        # subtree must be re-derivable under the new cost surface; and
        # nodes the append touched (non-empty delta, or the re-anchored
        # root), whose move set may have gained actions the closed node
        # would otherwise never enumerate.  Their statistics still carry,
        # so UCT keeps steering — only the "fully explored" mark resets.
        for key in lost_child | touched:
            node = table.get(key)
            if node is not None and node.expanded:
                node.expanded = False
                reopened += 1

        STATS.trees_rebased += 1
        STATS.nodes_carried += carried
        STATS.nodes_invalidated += invalidated
        STATS.nodes_rekeyed += rekeyed
        STATS.nodes_reopened += reopened
        return table, {
            "nodes_harvested": len(self.nodes),
            "nodes_carried": carried,
            "nodes_invalidated": invalidated,
            "nodes_rekeyed": rekeyed,
            "nodes_reopened": reopened,
            "appended": len(appended),
        }

    @staticmethod
    def _append_delta(
        state: DTNode,
        boundary: Optional[N.Node],
        appended: Tuple[N.Node, ...],
    ) -> Optional[set]:
        """Changed choice-paths the append induces under ``state``.

        ``None`` when some appended query is not expressible by the
        state (the caller must invalidate).  Matching goes through the
        fingerprint-memoized :func:`~repro.difftree.assignment_for`, so
        across the whole carried table a repeated (state, query) shape
        is matched once.
        """
        if not appended:
            return set()
        chain: List = []
        if boundary is not None:
            prev = assignment_for(state, boundary)
            if prev is not None:
                chain.append(prev)
        for query in appended:
            assignment = assignment_for(state, query)
            if assignment is None:
                return None
            chain.append(assignment)
        delta: set = set()
        for a, b in zip(chain, chain[1:]):
            delta.update(changed_choices(a, b))
        return delta

    # -- wire format (snapshot persistence) ----------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-native encoding (columnar states, parent links by index).

        Node order is preserved — the restore side must rebuild the
        table in the same insertion order or the frontier heap's
        deterministic tie-breaking drifts.
        """
        index_of = {key: i for i, key in enumerate(self.nodes)}
        encoded: List[Dict[str, Any]] = []
        for key, node in self.nodes.items():
            universe = self.universes.get(key)
            encoded.append(
                {
                    "state": ColumnarTree.from_node(node.state).to_payload(),
                    "parent": (
                        index_of[node.parent_key]
                        if node.parent_key is not None
                        else -1
                    ),
                    "visits": node.visits,
                    "reward_sum": node.reward_sum,
                    "expanded": node.expanded,
                    "depth": node.depth,
                    "universe": (
                        None
                        if universe is None
                        else sorted(list(path) for path in universe)
                    ),
                }
            )
        return {"log_len": self.log_len, "nodes": encoded}

    @classmethod
    def from_payload(cls, payload: Any) -> "CarriedTree":
        """Inverse of :meth:`to_payload` (raises ``ValueError`` on corruption)."""
        if not isinstance(payload, dict) or "nodes" not in payload:
            raise ValueError("carried-tree payload must be a dict with nodes")
        log_len = payload.get("log_len")
        if not isinstance(log_len, int) or log_len < 0:
            raise ValueError(f"carried-tree log_len {log_len!r} invalid")
        raw_nodes = payload["nodes"]
        if not isinstance(raw_nodes, list):
            raise ValueError("carried-tree nodes must be a list")
        keys: List[str] = []
        nodes: Dict[str, _TreeNode] = {}
        universes: Dict[str, Optional[FrozenSet[Path]]] = {}
        for i, raw in enumerate(raw_nodes):
            state = ColumnarTree.from_payload(raw["state"]).to_node()
            key = state.canonical_key
            parent = raw["parent"]
            if not isinstance(parent, int) or parent >= i or parent < -1:
                raise ValueError(
                    f"carried node {i} has out-of-order parent {parent!r}"
                )
            nodes[key] = _TreeNode(
                state=state,
                parent_key=None if parent < 0 else keys[parent],
                visits=int(raw["visits"]),
                reward_sum=float(raw["reward_sum"]),
                expanded=bool(raw["expanded"]),
                depth=int(raw["depth"]),
            )
            raw_universe = raw.get("universe")
            universes[key] = (
                None
                if raw_universe is None
                else frozenset(tuple(path) for path in raw_universe)
            )
            keys.append(key)
        return cls(nodes=nodes, universes=universes, log_len=log_len)
