"""Search strategies: MCTS (the paper's contribution) and baselines.

Every strategy is exposed two ways: a monolithic function (``*_search``)
and a resumable :class:`SearchTask` (``open`` → ``step`` → ``result``)
the multi-session scheduler time-slices.
"""

from .carry import CarriedTree, CarryStats
from .baselines import (
    BeamSearchTask,
    ExhaustiveSearchTask,
    GreedySearchTask,
    RandomSearchTask,
    beam_search,
    exhaustive_search,
    greedy_search,
    random_search,
)
from .common import (
    SearchResult,
    SearchStats,
    SearchTask,
    StateEvaluator,
    TaskClock,
    normalized_reward,
)
from .mcts import MCTS, MCTSConfig, MCTSTask, mcts_search

__all__ = [
    "CarriedTree",
    "CarryStats",
    "MCTS",
    "MCTSConfig",
    "MCTSTask",
    "mcts_search",
    "random_search",
    "greedy_search",
    "beam_search",
    "exhaustive_search",
    "RandomSearchTask",
    "GreedySearchTask",
    "BeamSearchTask",
    "ExhaustiveSearchTask",
    "SearchResult",
    "SearchStats",
    "SearchTask",
    "StateEvaluator",
    "TaskClock",
    "normalized_reward",
]
