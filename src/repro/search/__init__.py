"""Search strategies: MCTS (the paper's contribution) and baselines."""

from .baselines import beam_search, exhaustive_search, greedy_search, random_search
from .common import SearchResult, SearchStats, StateEvaluator, normalized_reward
from .mcts import MCTS, MCTSConfig, mcts_search

__all__ = [
    "MCTS",
    "MCTSConfig",
    "mcts_search",
    "random_search",
    "greedy_search",
    "beam_search",
    "exhaustive_search",
    "SearchResult",
    "SearchStats",
    "StateEvaluator",
    "normalized_reward",
]
