"""Shared search infrastructure: evaluation cache, results, and tasks.

Every search strategy (MCTS and the baselines) scores difftree states the
same way — best of ``k`` sampled widget assignments under the cost model —
so they are comparable head-to-head.  The :class:`StateEvaluator` caches
those scores by canonical state key, and a :class:`SearchResult` records
the winner plus a convergence history for the benchmark harness.

Strategies are *resumable*: each one is packaged as a :class:`SearchTask`
state machine (``open`` at construction → repeated :meth:`SearchTask.step`
→ :meth:`SearchTask.result`) instead of a blocking run-to-completion
function.  A task owns its RNG (through its evaluator) and its
:class:`TaskClock`, which accumulates only *active* stepping time — so a
task sliced across a multi-session scheduler consumes its ``time_budget_s``
at the same rate as a monolithic run, and iteration-sliced runs are
bit-for-bit identical to monolithic ones at equal totals.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cost import (
    BoundedLRU,
    CostModel,
    EvaluatedInterface,
    exhaustive_evaluation,
    sampled_evaluation,
)
from ..difftree import DTNode
from ..obs import REGISTRY as _OBS_REGISTRY
from ..obs import enabled as _obs_enabled
from ..obs import trace as _trace

#: Bound of the per-state evaluation cache (entries, LRU-evicted).
_STATE_CACHE_CAPACITY = 100_000


class TaskClock:
    """A pausable stopwatch measuring a task's *active* time.

    A monolithic search runs with the clock live from start to finish, so
    ``elapsed`` equals wall clock — the pre-task behavior.  A sliced task
    pauses between :meth:`SearchTask.step` calls: time another session
    spends on the hardware does not count against this task's
    ``time_budget_s``.
    """

    __slots__ = ("_accumulated", "_resumed_at")

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._resumed_at: Optional[float] = time.perf_counter()

    @property
    def running(self) -> bool:
        return self._resumed_at is not None

    @property
    def elapsed(self) -> float:
        """Total active seconds (live: includes the current slice)."""
        live = (
            time.perf_counter() - self._resumed_at
            if self._resumed_at is not None
            else 0.0
        )
        return self._accumulated + live

    def resume(self) -> None:
        if self._resumed_at is None:
            self._resumed_at = time.perf_counter()

    def pause(self) -> None:
        if self._resumed_at is not None:
            self._accumulated += time.perf_counter() - self._resumed_at
            self._resumed_at = None

    def restart(self) -> None:
        """Zero the accumulator and start running."""
        self._accumulated = 0.0
        self._resumed_at = time.perf_counter()


@dataclass
class SearchStats:
    """Counters shared by all strategies.

    ``frontier_peak`` / ``frontier_refreshes`` are MCTS-only: the largest
    unexpanded-frontier size seen, and how many stale heap entries the
    lazy UCT max-heap re-scored on pop (see ``MCTS._select``).
    ``warm_states_seeded`` counts warm-start states injected into the
    transposition table before the search loop (``repro.serve``).
    The ``kernel_*`` counters snapshot the cost model's compiled-kernel
    activity at the end of the run (see ``repro.cost.kernel``):
    candidate evaluations split into full vector loads and single-choice
    delta patches, plus how many widget trees had to fall back to the
    reference evaluator.
    """

    iterations: int = 0
    states_evaluated: int = 0
    states_expanded: int = 0
    walk_steps: int = 0
    max_fanout: int = 0
    max_depth: int = 0
    frontier_peak: int = 0
    frontier_refreshes: int = 0
    warm_states_seeded: int = 0
    kernel_compiles: int = 0
    # How candidates were *routed* (scalar full loads / delta patches vs
    # batched population columns) legitimately differs across memo gate
    # configurations while search results stay bit-identical, so the
    # routing split is excluded from equality: ``SearchStats ==`` asserts
    # search-outcome parity (the parity oracles in tests compare stats
    # across gate settings).  The total candidate count is conserved
    # either way: full + delta + batched is gate-invariant.
    kernel_full_evals: int = field(default=0, compare=False)
    kernel_delta_evals: int = field(default=0, compare=False)
    kernel_fallback_evals: int = 0
    kernel_sequences_extended: int = 0
    #: Candidate evaluations scored through the vectorized batch kernel
    #: (columns of population calls) vs. ones that wanted the batch path
    #: but fell back to scalar deltas (batch compile unavailable).
    kernel_batched_evals: int = field(default=0, compare=False)
    kernel_batch_fallbacks: int = field(default=0, compare=False)


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes:
        best: the final optimized interface (widget tree + cost).
        best_state: the winning difftree.
        history: ``(elapsed_seconds, best_cost_so_far)`` samples recorded
            every time the incumbent improves.
        stats: counters (iterations, evaluations, fanout, …).
        elapsed: total wall-clock seconds.
        strategy: name of the search strategy that produced this result.
    """

    best: EvaluatedInterface
    best_state: DTNode
    history: List[Tuple[float, float]]
    stats: SearchStats
    elapsed: float
    strategy: str

    @property
    def best_cost(self) -> float:
        return self.best.cost


class StateEvaluator:
    """Caches sampled state costs; tracks the global incumbent."""

    def __init__(
        self,
        model: CostModel,
        k_assignments: int = 5,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.k_assignments = k_assignments
        self.rng = random.Random(seed)
        #: state canonical key -> sampled evaluation.  Bounded LRU: long
        #: serving sessions evict cold states one at a time instead of the
        #: previous wholesale ``.clear()`` that also dropped the incumbent.
        self._cache: BoundedLRU = BoundedLRU(
            _STATE_CACHE_CAPACITY, name="search.states"
        )
        #: Canonical keys already given the exhaustive widget pass (at the
        #: cap they were evaluated with) — lets finalize skip a recompute.
        self._exhaustive: Dict[str, int] = {}
        self.best: Optional[EvaluatedInterface] = None
        self.history: List[Tuple[float, float]] = []
        #: Active-time stopwatch; a sliced task pauses it between steps
        #: so its ``time_budget_s`` only counts this task's own work.
        self.clock = TaskClock()
        self.stats = SearchStats()

    def restart_clock(self) -> None:
        self.clock.restart()
        self.history = []

    @property
    def elapsed(self) -> float:
        return self.clock.elapsed

    def evaluate(self, state: DTNode) -> EvaluatedInterface:
        """Sampled cost of a state (cached; updates the incumbent)."""
        key = state.canonical_key
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluated = sampled_evaluation(
            self.model, state, k=self.k_assignments, rng=self.rng
        )
        self._cache[key] = evaluated
        self.stats.states_evaluated += 1
        if self.best is None or evaluated.rank < self.best.rank:
            self.best = evaluated
            self.history.append((self.elapsed, evaluated.cost))
        return evaluated

    def evaluate_many(self, states: List[DTNode]) -> List[EvaluatedInterface]:
        """Evaluate a cohort of states in argument order (cache-aware).

        Cross-state batching is impossible — every state compiles its own
        kernel and decision schema — so the vectorization happens one
        level down: each uncached member's ``k`` sampled assignments are
        scored as one nodes × candidates population against its batch
        kernel (see :func:`repro.cost.sampled_evaluation`).  Cohort order
        fixes the shared-RNG consumption order, so callers submitting the
        same cohort get bit-identical results whether they step members
        one at a time or all at once.
        """
        return [self.evaluate(state) for state in states]

    def seed_incumbent(self, state: DTNode, final_cap: int = 4000) -> EvaluatedInterface:
        """Thoroughly evaluate a known-good state before a search starts.

        The warm-start path of :mod:`repro.serve` calls this with the
        previous run's best difftree (extended to the appended queries)
        so the incumbent — and the adaptive reward normalization of any
        strategy sharing this evaluator — starts from the prior optimum
        instead of from scratch.  Uses the exhaustive widget pass rather
        than ``k`` samples: a seed's incumbent entry must reflect its
        true quality, or one unlucky sampled assignment lets a weaker
        state steal the incumbent and the warm start loses its floor.
        """
        key = state.canonical_key
        evaluated = exhaustive_evaluation(self.model, state, cap=final_cap)
        self._cache[key] = evaluated
        self._exhaustive[key] = final_cap
        self.stats.states_evaluated += 1
        if self.best is None or evaluated.rank < self.best.rank:
            self.best = evaluated
            self.history.append((self.elapsed, evaluated.cost))
        return evaluated

    def finalize(self, final_cap: int = 4000) -> EvaluatedInterface:
        """Paper's final phase: thorough widget optimization of the winner."""
        if self.best is None:
            raise RuntimeError("no state was evaluated")
        key = self.best.tree.canonical_key
        if self._exhaustive.get(key, 0) >= final_cap:
            # Already exhaustively optimized (a warm-start seed that kept
            # the incumbent) — the most expensive pass of a serving run
            # must not be paid twice for the same tree.
            return self.best
        optimized = exhaustive_evaluation(self.model, self.best.tree, cap=final_cap)
        self._exhaustive[key] = final_cap
        if optimized.rank < self.best.rank:
            self.best = optimized
            self.history.append((self.elapsed, optimized.cost))
        return self.best

    def snapshot_kernel_stats(self) -> None:
        """Copy the model's compiled-kernel counters into the stats."""
        kernel = self.model.kernel_stats
        self.stats.kernel_compiles = kernel.kernels_compiled
        self.stats.kernel_full_evals = kernel.full_evals
        self.stats.kernel_delta_evals = kernel.delta_evals
        self.stats.kernel_fallback_evals = kernel.fallback_evals
        self.stats.kernel_sequences_extended = kernel.sequences_extended
        self.stats.kernel_batched_evals = kernel.batched_evals
        self.stats.kernel_batch_fallbacks = kernel.batch_fallback_evals


def _record_search_metrics(result: "SearchResult") -> None:
    """Absorb one finished run's :class:`SearchStats` into the registry.

    Called once per task (guarded by the task) when observability is
    enabled: the per-run dataclass counters stay exactly as they were —
    zero hot-path cost — and the process-wide ``search.*`` /
    ``cost.kernel.*`` dotted metrics accumulate across runs, which is
    what a dashboard (or the planned adaptive controller) wants.
    """
    reg = _OBS_REGISTRY
    stats = result.stats
    reg.counter("search.runs").inc()
    reg.counter("search.iterations").inc(stats.iterations)
    reg.counter("search.states_evaluated").inc(stats.states_evaluated)
    reg.counter("search.states_expanded").inc(stats.states_expanded)
    reg.counter("search.walk_steps").inc(stats.walk_steps)
    reg.counter("search.warm_states_seeded").inc(stats.warm_states_seeded)
    reg.counter("cost.kernel.compiles").inc(stats.kernel_compiles)
    reg.counter("cost.kernel.full_evals").inc(stats.kernel_full_evals)
    reg.counter("cost.kernel.delta_evals").inc(stats.kernel_delta_evals)
    reg.counter("cost.kernel.fallback_evals").inc(stats.kernel_fallback_evals)
    reg.counter("cost.kernel.sequences_extended").inc(
        stats.kernel_sequences_extended
    )
    reg.counter("cost.kernel.batched_evals").inc(stats.kernel_batched_evals)
    reg.counter("cost.kernel.batch_fallback_evals").inc(
        stats.kernel_batch_fallbacks
    )
    reg.histogram("search.elapsed_s").observe(result.elapsed)
    if math.isfinite(result.best_cost):
        reg.histogram("search.best_cost").observe(result.best_cost)


def finish_search(
    evaluator: StateEvaluator, strategy: str, final_cap: int = 4000
) -> SearchResult:
    """Shared end-of-search phase for every strategy.

    Runs the paper's thorough widget pass on the incumbent, snapshots
    the compiled-kernel counters, and packages the :class:`SearchResult`.
    """
    best = evaluator.finalize(final_cap=final_cap)
    evaluator.snapshot_kernel_stats()
    return SearchResult(
        best=best,
        best_state=best.tree,
        history=list(evaluator.history),
        stats=evaluator.stats,
        elapsed=evaluator.elapsed,
        strategy=strategy,
    )


class SearchTask:
    """A resumable search: construct (open) → :meth:`step` → :meth:`result`.

    Subclasses implement :meth:`_iterate` — one indivisible unit of work
    (an MCTS expansion, one random walk, one hill-climbing sweep, one
    beam level, one BFS expansion) — and the base class owns slicing,
    budget accounting, and termination:

    * ``step(n_iterations=...)`` runs at most that many units and
      returns how many ran.  Iteration-sliced stepping is bit-for-bit
      identical to a monolithic run at equal totals: all mutable state
      (RNG, evaluator cache, incumbent, frontier) lives in the task, and
      the task's :class:`TaskClock` is paused between slices so no
      wall-clock check fires differently.
    * ``step(slice_s=...)`` additionally bounds the slice by wall clock —
      the preemption knob of the multi-session scheduler.  The slice
      deadline also propagates into ``self._deadline`` so long inner
      loops (random walks) yield mid-unit.
    * The task is ``done`` when its strategy exhausts itself
      (:meth:`_iterate` returns False), its ``max_iterations`` cap is
      reached, or its active-time budget is spent.  A slice boundary
      never marks a task done — it is a preemption, not a stop.

    ``time_budget_s`` semantics: ``None`` means no time stop (strategies
    like exhaustive search that terminate on their own); ``<= 0`` means
    "iteration-capped only" when ``max_iterations > 0`` and "stop
    immediately" otherwise (matching the dispatcher's validation that a
    strategy must have *some* stop condition).

    :meth:`result` may be called at any time — before completion it
    packages the incumbent found so far (the scheduler's cancellation
    path still gets the best interface seen).
    """

    #: Name recorded on the :class:`SearchResult` (subclasses override).
    strategy = "task"

    def __init__(
        self,
        evaluator: StateEvaluator,
        time_budget_s: Optional[float] = None,
        max_iterations: int = 0,
        final_cap: int = 4000,
    ) -> None:
        self.evaluator = evaluator
        self.time_budget_s = time_budget_s
        self.max_iterations = max_iterations
        self.final_cap = final_cap
        #: Wall-clock deadline for the current slice's inner loops
        #: (min of slice end and budget end; ``inf`` when unconstrained).
        self._deadline = math.inf
        self._finished = False
        #: Units of work performed (== ``stats.iterations`` for MCTS).
        self.units = 0
        #: Step calls that performed at least one unit.
        self.slices = 0
        #: Whether this task's stats were absorbed into the metrics
        #: registry (once per task, on :meth:`result`).
        self._metrics_recorded = False

    # -- introspection ------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the task has terminated (stepping further is a no-op)."""
        return self._finished

    @property
    def iterations(self) -> int:
        """The strategy's iteration counter (drives ``max_iterations``)."""
        return self.evaluator.stats.iterations

    @property
    def elapsed(self) -> float:
        """Active seconds spent in this task (excludes paused gaps)."""
        return self.evaluator.clock.elapsed

    def _budget_left(self) -> float:
        if self.time_budget_s is None:
            return math.inf
        if self.time_budget_s <= 0:
            return math.inf if self.max_iterations > 0 else 0.0
        return self.time_budget_s - self.evaluator.clock.elapsed

    # -- the state machine --------------------------------------------------

    def step(
        self,
        n_iterations: Optional[int] = None,
        slice_s: Optional[float] = None,
    ) -> int:
        """Run up to ``n_iterations`` units / ``slice_s`` seconds.

        Returns the number of units performed (0 once ``done``).  With no
        arguments, runs until the task terminates on its own stop
        conditions — the monolithic path.
        """
        if self._finished:
            return 0
        clock = self.evaluator.clock
        # Manual span management keeps the pre-existing try/finally (and
        # its indentation-heavy body) untouched; when observability is
        # disabled this is a shared no-op context manager.
        span = _trace("search.step", strategy=self.strategy)
        span.__enter__()
        clock.resume()
        performed = 0
        try:
            slice_end = (
                time.perf_counter() + slice_s if slice_s is not None else math.inf
            )
            while True:
                if self.max_iterations and self.iterations >= self.max_iterations:
                    self._finished = True
                    break
                budget_left = self._budget_left()
                if budget_left <= 0:
                    self._finished = True
                    break
                if n_iterations is not None and performed >= n_iterations:
                    break
                now = time.perf_counter()
                # Minimum-progress guarantee: the slice deadline is only
                # honored once at least one unit ran, so an arbitrarily
                # small slice_s still advances the task (a scheduler
                # re-queuing zero-progress slices would otherwise spin).
                if performed and now >= slice_end:
                    break
                self._deadline = min(slice_end, now + budget_left)
                if not self._iterate():
                    self._finished = True
                    break
                performed += 1
                self.units += 1
        finally:
            # The task is idle between slices: another session's work on
            # this thread must not drain this task's time budget.
            clock.pause()
            span.__exit__(None, None, None)
        if performed:
            self.slices += 1
        return performed

    def run(self) -> "SearchResult":
        """Monolithic convenience: step to completion and package."""
        self.step()
        return self.result()

    def result(self) -> "SearchResult":
        """Package the incumbent (thorough final widget pass included)."""
        clock = self.evaluator.clock
        was_running = clock.running
        clock.resume()  # the final widget pass is active task work
        try:
            outcome = finish_search(
                self.evaluator, self.strategy, final_cap=self.final_cap
            )
        finally:
            if not was_running:
                clock.pause()
        if not self._metrics_recorded and _obs_enabled():
            self._metrics_recorded = True
            _record_search_metrics(outcome)
        return outcome

    # -- strategy body ------------------------------------------------------

    def _iterate(self) -> bool:
        """One unit of work; False when the strategy is exhausted.

        Implementations honor ``self._deadline`` in long inner loops and
        maintain their own :class:`SearchStats` exactly as the
        pre-refactor monolithic loops did.
        """
        raise NotImplementedError


def normalized_reward(cost: float, best: float, worst: float) -> float:
    """Map a cost onto [0, 1] rewards (1 = best seen, 0 = worst/infeasible)."""
    if math.isinf(cost):
        return 0.0
    if worst <= best:
        return 1.0
    return max(0.0, min(1.0, (worst - cost) / (worst - best)))
