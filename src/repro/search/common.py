"""Shared search infrastructure: state evaluation cache and results.

Every search strategy (MCTS and the baselines) scores difftree states the
same way — best of ``k`` sampled widget assignments under the cost model —
so they are comparable head-to-head.  The :class:`StateEvaluator` caches
those scores by canonical state key, and a :class:`SearchResult` records
the winner plus a convergence history for the benchmark harness.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cost import (
    BoundedLRU,
    CostModel,
    EvaluatedInterface,
    exhaustive_evaluation,
    sampled_evaluation,
)
from ..difftree import DTNode

#: Bound of the per-state evaluation cache (entries, LRU-evicted).
_STATE_CACHE_CAPACITY = 100_000


@dataclass
class SearchStats:
    """Counters shared by all strategies.

    ``frontier_peak`` / ``frontier_refreshes`` are MCTS-only: the largest
    unexpanded-frontier size seen, and how many stale heap entries the
    lazy UCT max-heap re-scored on pop (see ``MCTS._select``).
    ``warm_states_seeded`` counts warm-start states injected into the
    transposition table before the search loop (``repro.serve``).
    The ``kernel_*`` counters snapshot the cost model's compiled-kernel
    activity at the end of the run (see ``repro.cost.kernel``):
    candidate evaluations split into full vector loads and single-choice
    delta patches, plus how many widget trees had to fall back to the
    reference evaluator.
    """

    iterations: int = 0
    states_evaluated: int = 0
    states_expanded: int = 0
    walk_steps: int = 0
    max_fanout: int = 0
    max_depth: int = 0
    frontier_peak: int = 0
    frontier_refreshes: int = 0
    warm_states_seeded: int = 0
    kernel_compiles: int = 0
    kernel_full_evals: int = 0
    kernel_delta_evals: int = 0
    kernel_fallback_evals: int = 0
    kernel_sequences_extended: int = 0


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes:
        best: the final optimized interface (widget tree + cost).
        best_state: the winning difftree.
        history: ``(elapsed_seconds, best_cost_so_far)`` samples recorded
            every time the incumbent improves.
        stats: counters (iterations, evaluations, fanout, …).
        elapsed: total wall-clock seconds.
        strategy: name of the search strategy that produced this result.
    """

    best: EvaluatedInterface
    best_state: DTNode
    history: List[Tuple[float, float]]
    stats: SearchStats
    elapsed: float
    strategy: str

    @property
    def best_cost(self) -> float:
        return self.best.cost


class StateEvaluator:
    """Caches sampled state costs; tracks the global incumbent."""

    def __init__(
        self,
        model: CostModel,
        k_assignments: int = 5,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.k_assignments = k_assignments
        self.rng = random.Random(seed)
        #: state canonical key -> sampled evaluation.  Bounded LRU: long
        #: serving sessions evict cold states one at a time instead of the
        #: previous wholesale ``.clear()`` that also dropped the incumbent.
        self._cache: BoundedLRU = BoundedLRU(_STATE_CACHE_CAPACITY)
        #: Canonical keys already given the exhaustive widget pass (at the
        #: cap they were evaluated with) — lets finalize skip a recompute.
        self._exhaustive: Dict[str, int] = {}
        self.best: Optional[EvaluatedInterface] = None
        self.history: List[Tuple[float, float]] = []
        self._clock_start = time.perf_counter()
        self.stats = SearchStats()

    def restart_clock(self) -> None:
        self._clock_start = time.perf_counter()
        self.history = []

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._clock_start

    def evaluate(self, state: DTNode) -> EvaluatedInterface:
        """Sampled cost of a state (cached; updates the incumbent)."""
        key = state.canonical_key
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluated = sampled_evaluation(
            self.model, state, k=self.k_assignments, rng=self.rng
        )
        self._cache[key] = evaluated
        self.stats.states_evaluated += 1
        if self.best is None or evaluated.rank < self.best.rank:
            self.best = evaluated
            self.history.append((self.elapsed, evaluated.cost))
        return evaluated

    def seed_incumbent(self, state: DTNode, final_cap: int = 4000) -> EvaluatedInterface:
        """Thoroughly evaluate a known-good state before a search starts.

        The warm-start path of :mod:`repro.serve` calls this with the
        previous run's best difftree (extended to the appended queries)
        so the incumbent — and the adaptive reward normalization of any
        strategy sharing this evaluator — starts from the prior optimum
        instead of from scratch.  Uses the exhaustive widget pass rather
        than ``k`` samples: a seed's incumbent entry must reflect its
        true quality, or one unlucky sampled assignment lets a weaker
        state steal the incumbent and the warm start loses its floor.
        """
        key = state.canonical_key
        evaluated = exhaustive_evaluation(self.model, state, cap=final_cap)
        self._cache[key] = evaluated
        self._exhaustive[key] = final_cap
        self.stats.states_evaluated += 1
        if self.best is None or evaluated.rank < self.best.rank:
            self.best = evaluated
            self.history.append((self.elapsed, evaluated.cost))
        return evaluated

    def finalize(self, final_cap: int = 4000) -> EvaluatedInterface:
        """Paper's final phase: thorough widget optimization of the winner."""
        if self.best is None:
            raise RuntimeError("no state was evaluated")
        key = self.best.tree.canonical_key
        if self._exhaustive.get(key, 0) >= final_cap:
            # Already exhaustively optimized (a warm-start seed that kept
            # the incumbent) — the most expensive pass of a serving run
            # must not be paid twice for the same tree.
            return self.best
        optimized = exhaustive_evaluation(self.model, self.best.tree, cap=final_cap)
        self._exhaustive[key] = final_cap
        if optimized.rank < self.best.rank:
            self.best = optimized
            self.history.append((self.elapsed, optimized.cost))
        return self.best

    def snapshot_kernel_stats(self) -> None:
        """Copy the model's compiled-kernel counters into the stats."""
        kernel = self.model.kernel_stats
        self.stats.kernel_compiles = kernel.kernels_compiled
        self.stats.kernel_full_evals = kernel.full_evals
        self.stats.kernel_delta_evals = kernel.delta_evals
        self.stats.kernel_fallback_evals = kernel.fallback_evals
        self.stats.kernel_sequences_extended = kernel.sequences_extended


def finish_search(
    evaluator: StateEvaluator, strategy: str, final_cap: int = 4000
) -> SearchResult:
    """Shared end-of-search phase for every strategy.

    Runs the paper's thorough widget pass on the incumbent, snapshots
    the compiled-kernel counters, and packages the :class:`SearchResult`.
    """
    best = evaluator.finalize(final_cap=final_cap)
    evaluator.snapshot_kernel_stats()
    return SearchResult(
        best=best,
        best_state=best.tree,
        history=list(evaluator.history),
        stats=evaluator.stats,
        elapsed=evaluator.elapsed,
        strategy=strategy,
    )


def normalized_reward(cost: float, best: float, worst: float) -> float:
    """Map a cost onto [0, 1] rewards (1 = best seen, 0 = worst/infeasible)."""
    if math.isinf(cost):
        return 0.0
    if worst <= best:
        return 1.0
    return max(0.0, min(1.0, (worst - cost) / (worst - best)))
