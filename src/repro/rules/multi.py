"""``Multi`` rule (paper Figure 5, top middle) — merge repeated siblings.

When an ``ALL`` node has a run of adjacent children with the same root
structure (e.g. the four ``BETWEEN`` conjuncts ``u BETWEEN …``,
``g BETWEEN …``, … in the SDSS log), the run collapses into a single
``MULTI`` whose template is the anti-unification of the run members.
The template's widgets render inside an *adder* widget, letting the user
instantiate as many copies as needed (e.g. to add predicates).

This is the one rule the paper marks as unidirectional: splitting a
``MULTI`` back into a fixed number of copies would have to invent a count.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..difftree import DTNode, Path, anti_unify_all, multi_node
from ..difftree.dtnodes import ALL, MULTI
from ..sqlast import nodes as N
from .base import Move, Rule

#: Grammar labels whose children genuinely repeat (Kleene positions).
#: Merging runs anywhere else (e.g. a BETWEEN's lo/hi bounds) would
#: produce difftrees that express structurally invalid SQL.
VARIADIC_LABELS = frozenset(
    {N.AND, N.OR, N.PROJECT, N.FROM, N.GROUPBY, N.ORDERBY, N.INLIST}
)


def _mergeable_runs(node: DTNode) -> List[Tuple[int, int]]:
    """Maximal runs ``[start, end)`` of ≥2 adjacent same-head ``ALL`` children.

    Only concrete (``ALL``) siblings merge: choice nodes all share the
    same degenerate align key, and merging e.g. a Select's Top/Project/
    From slots into one MULTI would be structurally valid but semantic
    nonsense.  Repetition in query logs happens at concrete nodes
    (predicate conjuncts, projection items), which is what this captures.
    """
    runs: List[Tuple[int, int]] = []
    children = node.children
    i = 0
    while i < len(children):
        if children[i].kind != ALL:
            i += 1
            continue
        j = i + 1
        key = children[i].align_key()
        while (
            j < len(children)
            and children[j].kind == ALL
            and children[j].align_key() == key
        ):
            j += 1
        if j - i >= 2:
            runs.append((i, j))
        i = j
    return runs


class MultiMergeRule(Rule):
    """Collapse a run of similar siblings into ``MULTI[template]``."""

    name = "Multi"

    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        if node.kind != ALL or node.label not in VARIADIC_LABELS:
            return
        for start, end in _mergeable_runs(node):
            yield Move(self.name, path, (("start", start), ("end", end)))

    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        start = move.param("start")
        end = move.param("end")
        run = node.children[start:end]
        template = anti_unify_all(list(run))
        merged = multi_node(template)
        children = node.children[:start] + (merged,) + node.children[end:]
        return DTNode(ALL, node.label, node.value, children)
