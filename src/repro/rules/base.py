"""Rule engine: transformation rules over difftrees (paper Figure 5).

A :class:`Rule` pattern-matches difftree nodes and produces rewritten
subtrees.  A :class:`Move` is one concrete application (rule + path +
parameters).  The :class:`RuleEngine` enumerates every applicable move of
a state — the state's *fanout* in the search graph — and applies moves,
normalizing the result so trivially-equivalent states coincide.

Every rule preserves expressibility of the input queries: the set of
queries a difftree expresses never loses a member under any move.  This
invariant is what lets MCTS roam the space freely; it is checked by the
property tests in ``tests/test_rules_properties.py``.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..difftree import DTNode, Path, normalize
from ..difftree.normalize import normalize_shallow


@dataclass(frozen=True)
class Move:
    """One concrete rule application.

    Attributes:
        rule_name: the rule's identifier.
        path: difftree path of the node the rule rewrites.
        params: rule-specific parameters (e.g. which slot to distribute,
            which run of siblings to merge), as a hashable tuple of pairs.
    """

    rule_name: str
    path: Path
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        suffix = f" [{params}]" if params else ""
        return f"{self.rule_name}@{'/'.join(map(str, self.path)) or 'root'}{suffix}"


class Rule(abc.ABC):
    """A difftree transformation rule."""

    #: Unique rule identifier (class attribute).
    name: str = ""

    @abc.abstractmethod
    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        """Yield every application of this rule rooted at ``node``."""

    @abc.abstractmethod
    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        """Return the rewritten subtree for a move this rule produced."""


def _replace_normalized(tree: DTNode, path: Path, new: DTNode) -> DTNode:
    """Replace the subtree at ``path`` and renormalize the spine."""
    if not path:
        return new
    index = path[0]
    child = _replace_normalized(tree.children[index], path[1:], new)
    children = tree.children[:index] + (child,) + tree.children[index + 1 :]
    return normalize_shallow(tree, children)


class RuleEngine:
    """Enumerates and applies moves over whole difftrees."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._by_name: Dict[str, Rule] = {rule.name: rule for rule in rules}

    def rule(self, name: str) -> Rule:
        return self._by_name[name]

    def moves(self, tree: DTNode) -> List[Move]:
        """Every applicable move anywhere in ``tree`` (the state fanout)."""
        out: List[Move] = []
        for path, node in tree.walk_paths():
            for rule in self.rules:
                out.extend(rule.moves_at(node, path))
        return out

    def apply(self, tree: DTNode, move: Move) -> DTNode:
        """Apply ``move`` to ``tree`` and return the normalized result.

        Only the rewritten subtree is fully normalized; the spine from the
        rewrite site to the root is renormalized shallowly (everything off
        the spine was already normalized), so an application costs
        O(subtree + depth) instead of O(tree).
        """
        rule = self._by_name[move.rule_name]
        target = tree.at(move.path)
        rewritten = normalize(rule.rewrite(target, move))
        return _replace_normalized(tree, move.path, rewritten)

    def neighbors(self, tree: DTNode) -> List[Tuple[Move, DTNode]]:
        """All (move, successor-state) pairs, deduplicated by state.

        Self-loops (moves that normalize back to the same state) are
        dropped.
        """
        seen = {tree.canonical_key}
        out: List[Tuple[Move, DTNode]] = []
        for move in self.moves(tree):
            successor = self.apply(tree, move)
            key = successor.canonical_key
            if key in seen:
                continue
            seen.add(key)
            out.append((move, successor))
        return out

    def fanout(self, tree: DTNode) -> int:
        """Number of applicable moves (the paper's fanout statistic)."""
        return len(self.moves(tree))

    def random_move(
        self,
        tree: DTNode,
        rng: random.Random,
        rule_names: Optional[Sequence[str]] = None,
    ) -> Optional[Move]:
        """Sample one applicable move without enumerating all of them.

        Random-walk simulations take hundreds of steps; enumerating the
        full move set (O(nodes × rules)) at every step dominates the
        search runtime.  Sampling a node first and then a rule keeps a
        walk step near-constant-time.  The distribution is uniform over
        nodes rather than over moves — fine for rollouts, which only need
        diversity, not exactness.  Falls back to full enumeration when
        sampling keeps missing (sparsely applicable states).
        """
        paths = [path for path, _ in tree.walk_paths()]
        if rule_names is None:
            rules = list(self.rules)
        else:
            rules = [r for r in self.rules if r.name in set(rule_names)]
            if not rules:
                return None
        for _ in range(4 * len(paths)):
            path = rng.choice(paths)
            node = tree.at(path)
            rule = rng.choice(rules)
            moves = list(rule.moves_at(node, path))
            if moves:
                return rng.choice(moves)
        moves = [
            m
            for m in self.moves(tree)
            if rule_names is None or m.rule_name in set(rule_names)
        ]
        if not moves:
            return None
        return rng.choice(moves)
