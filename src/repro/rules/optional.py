"""``Optional`` rule and its inverse (paper Figure 5, right column).

``ANY[∅, z, …]`` and ``OPT[…]`` express the same queries but render as
different widgets: the former is e.g. a dropdown with a "(none)" entry,
the latter a toggle/checkbox guarding the inner widgets.  Keeping both
directions as explicit moves lets the search trade those interfaces off
under the cost model.
"""

from __future__ import annotations

from typing import Iterator

from ..difftree import ANY, EMPTY, OPT, DTNode, Path, any_node, opt_node
from ..difftree.dtnodes import EMPTY_NODE
from .base import Move, Rule


class OptionalRule(Rule):
    """``ANY[∅, z] → OPT[z]``; ``ANY[∅, a, b] → OPT[ANY[a, b]]``."""

    name = "Optional"

    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        if node.kind != ANY:
            return
        if any(alt.kind == EMPTY for alt in node.children):
            yield Move(self.name, path)

    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        rest = [alt for alt in node.children if alt.kind != EMPTY]
        if not rest:  # pragma: no cover - normalization removes ANY[∅]
            return EMPTY_NODE
        inner = rest[0] if len(rest) == 1 else any_node(rest)
        return opt_node(inner)


class UnOptionalRule(Rule):
    """``OPT[z] → ANY[∅, z]`` (inverse direction)."""

    name = "UnOptional"

    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        if node.kind == OPT:
            yield Move(self.name, path)

    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        return any_node([EMPTY_NODE, node.children[0]])
