"""``Distribute`` — the inverse direction of ``Any2All``/``Lift``.

The paper's factoring rules are bidirectional; this rule is the downward
arrow.  Given an ``ALL`` node with a choice child, it pushes the ``ALL``
inside the choice, enumerating one concrete ``ALL`` variant per
alternative::

    ALL_h(a, ANY[x, y], b)  →  ANY[ALL_h(a, x, b), ALL_h(a, y, b)]
    ALL_h(a, OPT[x],  b)  →  ANY[ALL_h(a, b), ALL_h(a, x, b)]

An ``EMPTY`` alternative simply drops the slot in its variant.  Distribute
lets the search *undo* an over-eager factoring — e.g. to regroup
differences at a coarser granularity (whole-query buttons instead of
per-literal widgets).
"""

from __future__ import annotations

from typing import Iterator, List

from ..difftree import ANY, EMPTY, OPT, DTNode, Path, any_node
from ..difftree.dtnodes import ALL, EMPTY_NODE
from .base import Move, Rule


class DistributeRule(Rule):
    """Push an ``ALL`` head into one chosen choice-child."""

    name = "Distribute"

    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        if node.kind != ALL:
            return
        for index, child in enumerate(node.children):
            if child.kind in (ANY, OPT):
                yield Move(self.name, path, (("slot", index),))

    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        index = move.param("slot")
        child = node.children[index]
        if child.kind == ANY:
            alternatives = child.children
        elif child.kind == OPT:
            alternatives = (EMPTY_NODE, child.children[0])
        else:  # pragma: no cover - guarded by moves_at
            raise ValueError(f"cannot distribute over {child.kind}")
        variants: List[DTNode] = []
        for alt in alternatives:
            if alt.kind == EMPTY:
                new_children = node.children[:index] + node.children[index + 1 :]
            else:
                new_children = (
                    node.children[:index] + (alt,) + node.children[index + 1 :]
                )
            variants.append(DTNode(ALL, node.label, node.value, new_children))
        return any_node(variants)
