"""Factoring rules: ``Any2All`` and ``Lift`` (paper Figure 5, left column).

Both rules act on an ``ANY`` node whose alternatives share the same root
head.  They pull the shared structure above the choice, shrinking the
choice to just the parts that actually differ:

* ``Lift`` handles the chain case — every alternative is an ``ALL`` with
  exactly one child: ``ANY[h(x), h(y)] → h(ANY[x, y])``.
* ``Any2All`` handles the general case — alternatives have multiple
  children which are aligned into columns:
  ``ANY[ALL_h(x,y,z), ALL_h(x',y')] → ALL_h(ANY[x,x'], ANY[y,y'], ANY[z,∅])``.
  A column missing in some alternative gains an ``EMPTY`` choice, which
  the ``Optional`` rule can later turn into an ``OPT``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..difftree import ANY, EMPTY_NODE, DTNode, Path, all_node, any_node
from ..difftree.dtnodes import ALL
from .base import Move, Rule


def _common_head(node: DTNode) -> Optional[Tuple[str, Any]]:
    """The shared ``(label, value)`` head of an ANY's alternatives, if any."""
    if node.kind != ANY:
        return None
    heads = set()
    for alt in node.children:
        if alt.kind != ALL:
            return None
        heads.add(alt.head)
    if len(heads) != 1:
        return None
    return heads.pop()


def align_alternative_children(
    alternatives: Tuple[DTNode, ...],
) -> Optional[List[List[Optional[DTNode]]]]:
    """Align the child lists of several same-head ``ALL`` alternatives.

    Children are keyed by :meth:`DTNode.align_key`; the per-alternative key
    orders are merged into one global order.  When key-based alignment
    fails (keys repeat within an alternative — e.g. the four ``BETWEEN``
    conjuncts of the SDSS log's WHERE clauses — or appear in conflicting
    orders) but every alternative has the same number of children, falls
    back to *positional* alignment, which is always
    expressibility-preserving: choosing column ``i`` of row ``r`` for
    every slot reproduces row ``r``.  Returns ``None`` when neither
    strategy applies.
    """
    arities = {len(alt.children) for alt in alternatives}
    keyed = _key_alignment(alternatives)
    if keyed is not None:
        return keyed
    if len(arities) == 1:
        arity = arities.pop()
        if arity == 0:
            return None
        return [
            [alt.children[i] for alt in alternatives] for i in range(arity)
        ]
    return None


def _key_alignment(
    alternatives: Tuple[DTNode, ...],
) -> Optional[List[List[Optional[DTNode]]]]:
    keyed_rows = []
    for alt in alternatives:
        keyed = [(child.align_key(), child) for child in alt.children]
        keys = [k for k, _ in keyed]
        if len(set(keys)) != len(keys):
            return None
        keyed_rows.append(keyed)

    order: List[Tuple[str, Any]] = []
    for keyed in keyed_rows:
        position = 0
        for key, _ in keyed:
            if key in order:
                existing = order.index(key)
                if existing < position:
                    return None
                position = existing + 1
            else:
                order.insert(position, key)
                position += 1

    columns: List[List[Optional[DTNode]]] = []
    for key in order:
        column = []
        for keyed in keyed_rows:
            column.append(next((c for k, c in keyed if k == key), None))
        columns.append(column)
    return columns


class LiftRule(Rule):
    """``ANY[h(x), h(y), …] → h(ANY[x, y, …])`` for single-child heads."""

    name = "Lift"

    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        head = _common_head(node)
        if head is None:
            return
        if all(len(alt.children) == 1 for alt in node.children):
            yield Move(self.name, path)

    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        label, value = _common_head(node)
        inner = any_node([alt.children[0] for alt in node.children])
        return all_node(label, value, (inner,))


class Any2AllRule(Rule):
    """General factoring of an ``ANY`` of same-head ``ALL`` alternatives.

    Skips the all-single-child case (that is exactly ``Lift``) and leafy
    alternatives with no children at all (nothing to factor).
    """

    name = "Any2All"

    def moves_at(self, node: DTNode, path: Path) -> Iterator[Move]:
        head = _common_head(node)
        if head is None:
            return
        arities = {len(alt.children) for alt in node.children}
        if arities == {1} or arities == {0}:
            return
        if align_alternative_children(node.children) is None:
            return
        yield Move(self.name, path)

    def rewrite(self, node: DTNode, move: Move) -> DTNode:
        label, value = _common_head(node)
        columns = align_alternative_children(node.children)
        if columns is None:  # pragma: no cover - guarded by moves_at
            raise ValueError("Any2All applied to unalignable alternatives")
        slots = []
        for column in columns:
            alternatives = [c if c is not None else EMPTY_NODE for c in column]
            slots.append(any_node(alternatives))
        return all_node(label, value, tuple(slots))
