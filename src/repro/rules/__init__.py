"""Difftree transformation rules (paper Figure 5) and the rule engine."""

from typing import Optional, Sequence

from .base import Move, Rule, RuleEngine
from .distribute import DistributeRule
from .factor import Any2AllRule, LiftRule, align_alternative_children
from .multi import MultiMergeRule
from .optional import OptionalRule, UnOptionalRule

#: Rule names in the default engine, in application-priority order.
DEFAULT_RULE_NAMES = (
    "Lift",
    "Any2All",
    "Optional",
    "Multi",
    "UnOptional",
    "Distribute",
)


def default_engine(exclude: Optional[Sequence[str]] = None) -> RuleEngine:
    """The full rule set of the paper (both directions).

    Args:
        exclude: rule names to leave out (used by the rule-family ablation).
    """
    rules = [
        LiftRule(),
        Any2AllRule(),
        OptionalRule(),
        MultiMergeRule(),
        UnOptionalRule(),
        DistributeRule(),
    ]
    if exclude:
        missing = set(exclude) - {r.name for r in rules}
        if missing:
            raise ValueError(f"unknown rule names: {sorted(missing)}")
        rules = [r for r in rules if r.name not in set(exclude)]
    return RuleEngine(rules)


def forward_engine() -> RuleEngine:
    """Only the compressing (forward) rules — used by the greedy baseline."""
    return default_engine(exclude=("UnOptional", "Distribute"))


__all__ = [
    "Move",
    "Rule",
    "RuleEngine",
    "LiftRule",
    "Any2AllRule",
    "OptionalRule",
    "UnOptionalRule",
    "MultiMergeRule",
    "DistributeRule",
    "align_alternative_children",
    "default_engine",
    "forward_engine",
    "DEFAULT_RULE_NAMES",
]
