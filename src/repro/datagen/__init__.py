"""Synthetic data generators (offline substitutes for public datasets)."""

from .sdss import make_sdss_database

__all__ = ["make_sdss_database"]
