"""Synthetic Sloan Digital Sky Survey-like catalog.

The paper's experiments use a query log derived from the public SDSS
SkyServer.  We have no network access, so this module generates a
deterministic synthetic catalog with the same *shape* the log queries
expect: ``stars``, ``galaxies`` and ``quasars`` tables, each with an
``objid`` key, the five photometric magnitudes ``u, g, r, i, z``, sky
coordinates ``ra, dec`` and a redshift column.  The interface-generation
algorithm never looks at the data — only the interaction runtime and the
visualization demos do — so any catalog with this schema exercises the
same code paths (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..database import Database, Table

#: (table name, objid offset, magnitude mean, redshift range)
_TABLE_SPECS: Tuple[Tuple[str, int, float, Tuple[float, float]], ...] = (
    ("stars", 1_000_000, 14.0, (0.0, 0.001)),
    ("galaxies", 2_000_000, 17.5, (0.01, 0.8)),
    ("quasars", 3_000_000, 19.0, (0.5, 5.0)),
)

#: Color offsets (relative to the r magnitude) per band, loosely mimicking
#: real photometric colors so scatter plots look plausible.
_BAND_OFFSETS: Dict[str, float] = {"u": 1.8, "g": 0.6, "r": 0.0, "i": -0.3, "z": -0.5}


def make_sdss_database(rows_per_table: int = 500, seed: int = 42) -> Database:
    """Build the synthetic SDSS catalog.

    Args:
        rows_per_table: number of objects per table.
        seed: RNG seed; the same seed always yields the same catalog.

    Returns:
        A :class:`repro.database.Database` with ``stars``, ``galaxies``
        and ``quasars`` tables.
    """
    rng = random.Random(seed)
    db = Database()
    for name, offset, mean_mag, (z_lo, z_hi) in _TABLE_SPECS:
        db.add_table(_make_table(name, offset, mean_mag, z_lo, z_hi, rows_per_table, rng))
    return db


def _make_table(
    name: str,
    objid_offset: int,
    mean_mag: float,
    z_lo: float,
    z_hi: float,
    nrows: int,
    rng: random.Random,
) -> Table:
    objid: List[int] = []
    bands: Dict[str, List[float]] = {b: [] for b in _BAND_OFFSETS}
    ra: List[float] = []
    dec: List[float] = []
    redshift: List[float] = []
    for i in range(nrows):
        objid.append(objid_offset + i)
        base = rng.gauss(mean_mag, 2.0)
        base = min(max(base, 0.5), 29.5)
        for band, offset in _BAND_OFFSETS.items():
            mag = base + offset + rng.gauss(0.0, 0.4)
            bands[band].append(round(min(max(mag, 0.0), 30.0), 3))
        ra.append(round(rng.uniform(0.0, 360.0), 4))
        dec.append(round(rng.uniform(-90.0, 90.0), 4))
        redshift.append(round(rng.uniform(z_lo, z_hi), 4))
    columns: Dict[str, List] = {"objid": objid}
    columns.update(bands)
    columns["ra"] = ra
    columns["dec"] = dec
    columns["redshift"] = redshift
    return Table(name, columns)
