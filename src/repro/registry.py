"""Pluggable registries for search strategies and evaluation workloads.

The library used to hard-wire its extension points: ``core/api.py`` kept
a private ``_RUNNERS`` dict of search strategies (each runner re-checking
"am I allowed warm states?" imperatively) and every benchmark kept its
own ``WORKLOADS`` dict of log generators.  This module replaces both
with declarative registries:

* :func:`register_strategy` — a search strategy registers its runner
  once, *declaring* its capabilities (``supports_warm_start``,
  ``needs_time_budget``).  Dispatch layers (:func:`repro.core.run_search`,
  :class:`repro.engine.Engine`, :class:`repro.serve.IncrementalGenerator`)
  enforce those capabilities generically instead of each strategy
  hand-rolling ``_require_cold`` checks.
* :func:`register_workload` — a query-log generator registers itself
  with descriptive tags (``"growing"`` for session generators usable by
  the serving benches, ``"synthetic"`` for the parameterized pattern
  logs, …) so benchmarks and the :class:`~repro.engine.Engine` resolve
  workloads by name uniformly across ``workloads/{sdss,tpch,synthetic}``.

This module is import-light on purpose (standard library only): it is
imported by ``repro.core``, ``repro.workloads``, and ``repro.engine``
without creating cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

__all__ = [
    "StrategySpec",
    "WorkloadSpec",
    "register_strategy",
    "strategy_spec",
    "strategy_names",
    "register_workload",
    "workload_spec",
    "get_workload",
    "workload_names",
]


class RegistryError(ValueError):
    """Raised on duplicate registration or unknown lookup."""


@dataclass(frozen=True)
class StrategySpec:
    """One registered search strategy and its declared capabilities.

    Attributes:
        name: registry key (the ``GenerationConfig.strategy`` value).
        runner: ``runner(model, initial, engine, config, warm_states)``
            returning a :class:`~repro.search.SearchResult`.
        supports_warm_start: whether the strategy can consume seed states
            (a transposition table / incumbent).  Dispatchers reject
            ``warm_states`` for strategies without this capability, and
            the serving layer only warm-starts strategies that have it.
        needs_time_budget: whether the strategy's stop condition depends
            on ``time_budget_s`` (exhaustive search, for example,
            terminates on its own).  Dispatchers require a positive
            budget — or, for strategies that also declare
            ``supports_iteration_cap``, a positive iteration cap —
            when this is set.
        supports_iteration_cap: whether the strategy consumes
            ``max_iterations`` as an alternative stop condition (MCTS
            does; the walk/beam baselines ignore it).
        supports_stepping: whether the strategy can run as a resumable
            :class:`~repro.search.common.SearchTask` (open → ``step`` →
            ``result``) — the capability the multi-session scheduler
            requires.  Implies ``task_factory`` is set.
        task_factory: ``factory(model, initial, engine, config,
            warm_states)`` returning an *opened* ``SearchTask``.  When
            present, dispatchers prefer it over ``runner`` (a monolithic
            run is one unbounded step of the task).
        description: one-liner for ``strategy_names`` listings.
    """

    name: str
    runner: Callable[..., object]
    supports_warm_start: bool = False
    needs_time_budget: bool = True
    supports_iteration_cap: bool = False
    supports_stepping: bool = False
    task_factory: Optional[Callable[..., object]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.supports_stepping and self.task_factory is None:
            raise RegistryError(
                f"strategy {self.name!r} declares supports_stepping "
                f"but registered no task_factory"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered query-log generator.

    Attributes:
        name: registry key (e.g. ``"sdss"``, ``"synthetic.value_drift"``).
        factory: the generator callable.  Growing-log generators take
            ``(num_queries, seed=...)`` and return SQL strings; synthetic
            generators return parsed ASTs — the ``tags`` say which.
        tags: descriptive capability tags (``"growing"``, ``"sql"``,
            ``"synthetic"``, ``"ast"``).
        description: one-liner for listings.
    """

    name: str
    factory: Callable[..., object]
    tags: Tuple[str, ...] = ()
    description: str = ""

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


_STRATEGIES: Dict[str, StrategySpec] = {}
_WORKLOADS: Dict[str, WorkloadSpec] = {}


def _register(table: Dict, spec, kind: str) -> None:
    if spec.name in table:
        raise RegistryError(
            f"{kind} {spec.name!r} is already registered; "
            f"unregister it first or pick a different name"
        )
    table[spec.name] = spec


def _lookup(table: Dict, name: str, kind: str):
    spec = table.get(name)
    if spec is None:
        known = ", ".join(sorted(table)) or "<none>"
        raise RegistryError(f"unknown {kind} {name!r} (registered: {known})")
    return spec


# -- strategies ----------------------------------------------------------------


def register_strategy(
    name: str,
    *,
    supports_warm_start: bool = False,
    needs_time_budget: bool = True,
    supports_iteration_cap: bool = False,
    task_factory: Optional[Callable[..., object]] = None,
    description: str = "",
) -> Callable:
    """Decorator registering a search-strategy runner under ``name``.

    Usage::

        @register_strategy("mcts", supports_warm_start=True,
                           task_factory=_open_mcts_task)
        def _run_mcts(model, initial, engine, config, warm_states): ...

    A strategy registered with a ``task_factory`` is *steppable*: the
    factory returns an opened :class:`~repro.search.common.SearchTask`,
    dispatchers prefer it over the runner, and the multi-session
    scheduler can time-slice it.

    Raises:
        RegistryError: if ``name`` is already registered.
    """

    def decorate(runner: Callable) -> Callable:
        _register(
            _STRATEGIES,
            StrategySpec(
                name=name,
                runner=runner,
                supports_warm_start=supports_warm_start,
                needs_time_budget=needs_time_budget,
                supports_iteration_cap=supports_iteration_cap,
                supports_stepping=task_factory is not None,
                task_factory=task_factory,
                description=description or (runner.__doc__ or "").strip(),
            ),
            "strategy",
        )
        return runner

    return decorate


def strategy_spec(name: str) -> StrategySpec:
    """The registered spec of ``name``; raises listing known strategies."""
    return _lookup(_STRATEGIES, name, "strategy")


def strategy_names() -> Tuple[str, ...]:
    """All registered strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


# -- workloads -----------------------------------------------------------------


def register_workload(
    name: str,
    *,
    tags: Iterable[str] = (),
    description: str = "",
) -> Callable:
    """Decorator registering a query-log generator under ``name``.

    Usage::

        @register_workload("sdss", tags=("growing", "sql"))
        def sdss_session_sql(num_queries, seed=0): ...

    Raises:
        RegistryError: if ``name`` is already registered.
    """

    def decorate(factory: Callable) -> Callable:
        _register(
            _WORKLOADS,
            WorkloadSpec(
                name=name,
                factory=factory,
                tags=tuple(tags),
                description=description or (factory.__doc__ or "").strip(),
            ),
            "workload",
        )
        return factory

    return decorate


def workload_spec(name: str) -> WorkloadSpec:
    """The registered spec of ``name``; raises listing known workloads."""
    return _lookup(_WORKLOADS, name, "workload")


def get_workload(name: str) -> Callable[..., object]:
    """The generator callable registered under ``name``."""
    return workload_spec(name).factory


def workload_names(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Registered workload names (optionally only those carrying ``tag``)."""
    return tuple(
        sorted(
            name
            for name, spec in _WORKLOADS.items()
            if tag is None or spec.has_tag(tag)
        )
    )
