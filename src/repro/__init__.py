"""repro — reproduction of *Monte Carlo Tree Search for Generating
Interactive Data Analysis Interfaces* (Chen & Wu, 2020).

Given a SQL query log, synthesize an interactive analysis interface:
a hierarchical layout of widgets (dropdowns, sliders, buttons, toggles,
tabs, adders) that can express every query in the log, selected by MCTS
over *difftree* states under a usability cost model.

The primary entry point is the session-oriented :class:`Engine`
(:mod:`repro.engine`)::

    from repro import Engine

    engine = Engine()
    session = engine.session()
    session.append(
        "select top 10 objid from stars where u between 0 and 30",
        "select top 100 objid from stars where u between 5 and 25",
    )
    report = session.interface()      # cold search
    print(report.ascii_art)

    session.append("select top 10 objid from galaxies where g between 1 and 9")
    report = session.interface()      # warm-started incremental search
    print(report.to_dict()["provenance"])

The one-shot :func:`generate_interface` and the :mod:`repro.serve`
classes remain as stable shims over the same machinery.
"""

from . import obs
from .core import (
    STRATEGIES,
    GeneratedInterface,
    GenerationConfig,
    generate_interface,
)
from .engine import Engine, GenerationReport, LogSession
from .layout import Screen
from .serve import (
    IncrementalGenerator,
    InterfaceCache,
    LogStream,
    SessionRouter,
    generate_interfaces_batch,
)

__version__ = "1.2.0"

__all__ = [
    "Engine",
    "LogSession",
    "GenerationReport",
    "generate_interface",
    "GenerationConfig",
    "GeneratedInterface",
    "STRATEGIES",
    "Screen",
    "IncrementalGenerator",
    "InterfaceCache",
    "LogStream",
    "SessionRouter",
    "generate_interfaces_batch",
    "obs",
    "__version__",
]
