"""repro — reproduction of *Monte Carlo Tree Search for Generating
Interactive Data Analysis Interfaces* (Chen & Wu, 2020).

Given a SQL query log, synthesize an interactive analysis interface:
a hierarchical layout of widgets (dropdowns, sliders, buttons, toggles,
tabs, adders) that can express every query in the log, selected by MCTS
over *difftree* states under a usability cost model.

Quick start::

    from repro import generate_interface, Screen

    log = [
        "select top 10 objid from stars where u between 0 and 30",
        "select top 100 objid from stars where u between 5 and 25",
    ]
    result = generate_interface(log, screen=Screen.wide())
    print(result.ascii_art)
"""

from .core import GeneratedInterface, GenerationConfig, generate_interface
from .layout import Screen

__version__ = "1.0.0"

__all__ = [
    "generate_interface",
    "GenerationConfig",
    "GeneratedInterface",
    "Screen",
    "__version__",
]
