"""repro — reproduction of *Monte Carlo Tree Search for Generating
Interactive Data Analysis Interfaces* (Chen & Wu, 2020).

Given a SQL query log, synthesize an interactive analysis interface:
a hierarchical layout of widgets (dropdowns, sliders, buttons, toggles,
tabs, adders) that can express every query in the log, selected by MCTS
over *difftree* states under a usability cost model.

Quick start::

    from repro import generate_interface, Screen

    log = [
        "select top 10 objid from stars where u between 0 and 30",
        "select top 100 objid from stars where u between 5 and 25",
    ]
    result = generate_interface(log, screen=Screen.wide())
    print(result.ascii_art)

For serving growing logs (incremental regeneration, caching, batch
fan-out), see :mod:`repro.serve`::

    from repro import IncrementalGenerator

    service = IncrementalGenerator()
    service.append(*log)
    print(service.generate().ascii_art)   # cold search
    service.append("select top 10 objid from galaxies where g between 1 and 9")
    print(service.generate().ascii_art)   # warm-started incremental search
"""

from .core import (
    STRATEGIES,
    GeneratedInterface,
    GenerationConfig,
    generate_interface,
)
from .layout import Screen
from .serve import (
    IncrementalGenerator,
    InterfaceCache,
    LogStream,
    SessionRouter,
    generate_interfaces_batch,
)

__version__ = "1.1.0"

__all__ = [
    "generate_interface",
    "GenerationConfig",
    "GeneratedInterface",
    "STRATEGIES",
    "Screen",
    "IncrementalGenerator",
    "InterfaceCache",
    "LogStream",
    "SessionRouter",
    "generate_interfaces_batch",
    "__version__",
]
