"""Widget trees: the renderable interface derived from a difftree.

The derivation follows the paper ("Creating Widget Trees"): each choice
node maps to one interaction widget, and each ``ALL`` node with ≥2 visible
children maps to a layout widget (vertical or horizontal box).  ``ANY``
nodes whose alternatives contain nested choices map to *tabs* — one tab
per alternative, each holding that alternative's sub-interface.  ``OPT``
maps to a toggle/checkbox grouped with the widgets of its optional body
(the toggle-and-dropdown grouping of paper Figure 2(b)), and ``MULTI``
maps to an *adder* wrapping its template's widgets.

Deriving a widget tree requires decisions — which widget type and size
class for each choice node, which orientation for each layout box.  A
:class:`Chooser` supplies them; random, greedy and replay choosers cover
the search's needs (random assignments during MCTS rollouts, exhaustive
or coordinate-descent optimization at the end).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple, Union

from ..difftree import ANY, EMPTY, MULTI, OPT, DTNode, Path
from ..difftree.dtnodes import ALL
from ..sqlast import nodes as N
from .domain import BOOLEAN, ChoiceDomain, domain_of, option_label
from .library import (
    INTERACTION_WIDGETS,
    SIZE_CLASSES,
    WidgetType,
    candidates_for,
    widget_type,
)

ORIENTATIONS = ("vertical", "horizontal")


@dataclass(frozen=True)
class WidgetNode:
    """One node of the widget tree.

    Attributes:
        widget: widget type name (see :mod:`repro.widgets.library`).
        size_class: ``"S"``/``"M"``/``"L"`` template.
        choice_path: path of the controlled difftree choice node, or
            ``None`` for pure layout boxes.
        domain: the controlled choice's domain (``None`` for layout).
        children: nested widget nodes (tab pages, grouped widgets, the
            adder's content, a layout box's members).
        title: short caption giving AST context (e.g. ``"cty ="``).
        orientation_path: for layout boxes whose orientation is a free
            derivation decision, the decision point's path (the argument
            passed to ``Chooser.choose_orientation``); ``None`` for fixed
            boxes and non-layout widgets.  Provenance recorded so the
            compiled cost kernel can map box nodes back to decisions.
    """

    widget: str
    size_class: str = "M"
    choice_path: Optional[Path] = None
    domain: Optional[ChoiceDomain] = None
    children: Tuple["WidgetNode", ...] = ()
    title: str = ""
    orientation_path: Optional[Path] = None

    @property
    def wtype(self) -> WidgetType:
        return widget_type(self.widget)

    def walk(self) -> Iterator["WidgetNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def interaction_nodes(self) -> List["WidgetNode"]:
        return [n for n in self.walk() if n.choice_path is not None]

    def widget_count(self) -> int:
        return sum(1 for _ in self.walk())


# -- choosers -------------------------------------------------------------------


class Chooser(Protocol):
    """Supplies the free decisions of widget-tree derivation."""

    def choose_widget(
        self, path: Path, domain: ChoiceDomain, candidates: Sequence[WidgetType]
    ) -> Tuple[str, str]:
        """Return ``(widget_name, size_class)`` for a choice node."""
        ...

    def choose_orientation(self, path: Path, num_children: int) -> str:
        """Return ``"vertical"`` or ``"horizontal"`` for a layout box."""
        ...


class GreedyChooser:
    """Minimum-``M`` widget, medium size, vertical boxes (a strong default)."""

    def choose_widget(self, path, domain, candidates):
        return (candidates[0].name, "M")

    def choose_orientation(self, path, num_children):
        return "vertical"


class RandomChooser:
    """Uniformly random decisions — the paper's random widget assignment."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose_widget(self, path, domain, candidates):
        widget = self.rng.choice(list(candidates))
        return (widget.name, self.rng.choice(SIZE_CLASSES))

    def choose_orientation(self, path, num_children):
        return self.rng.choice(ORIENTATIONS)


class ReplayChooser:
    """Replays a recorded decision table (used by enumeration/optimizers).

    Missing entries fall back to the greedy decision, so a partial table
    is valid.
    """

    def __init__(
        self,
        widgets: Optional[Dict[Path, Tuple[str, str]]] = None,
        orientations: Optional[Dict[Path, str]] = None,
    ) -> None:
        self.widgets = dict(widgets or {})
        self.orientations = dict(orientations or {})

    def choose_widget(self, path, domain, candidates):
        if path in self.widgets:
            name, size_class = self.widgets[path]
            allowed = {c.name for c in candidates}
            if name in allowed:
                return (name, size_class)
        return (candidates[0].name, "M")

    def choose_orientation(self, path, num_children):
        return self.orientations.get(path, "vertical")


class RecordingChooser:
    """Greedy decisions that also record every decision point and its options."""

    def __init__(self) -> None:
        self.widget_options: Dict[Path, Tuple[str, ...]] = {}
        self.orientation_points: List[Path] = []

    def choose_widget(self, path, domain, candidates):
        self.widget_options[path] = tuple(c.name for c in candidates)
        return (candidates[0].name, "M")

    def choose_orientation(self, path, num_children):
        self.orientation_points.append(path)
        return "vertical"


# -- derivation -------------------------------------------------------------------


def derive_widget_tree(tree: DTNode, chooser: Chooser) -> WidgetNode:
    """Derive a widget tree for a difftree under the given decisions.

    Returns a single root widget node.  A fully-concrete difftree (no
    choices — a one-query log) yields a bare label widget.
    """
    widgets = _build(tree, (), chooser, _context_for(tree, ""))
    if not widgets:
        return WidgetNode(widget="label", title="(static query)")
    if len(widgets) == 1:
        return widgets[0]
    orientation = chooser.choose_orientation((), len(widgets))
    return WidgetNode(widget=orientation, children=tuple(widgets), orientation_path=())


def _build(
    node: DTNode, path: Path, chooser: Chooser, context: str
) -> List[WidgetNode]:
    if node.kind == EMPTY:
        return []
    if node.kind == ALL:
        collected: List[WidgetNode] = []
        for i, child in enumerate(node.children):
            child_context = _child_context(node, i, context)
            collected.extend(_build(child, path + (i,), chooser, child_context))
        if len(collected) >= 2:
            orientation = chooser.choose_orientation(path, len(collected))
            return [
                WidgetNode(
                    widget=orientation,
                    children=tuple(collected),
                    title=_box_title(node),
                    orientation_path=path,
                )
            ]
        return collected
    if node.kind == ANY:
        domain = domain_of(node)
        if domain.complex_options:
            pages: List[WidgetNode] = []
            for i, alt in enumerate(node.children):
                inner = _build(alt, path + (i,), chooser, context)
                page_title = option_label(alt, limit=18)
                if not inner:
                    page = WidgetNode(widget="label", title=page_title)
                elif len(inner) == 1:
                    page = inner[0]
                else:
                    orientation = chooser.choose_orientation(path + (i,), len(inner))
                    page = WidgetNode(
                        widget=orientation,
                        children=tuple(inner),
                        orientation_path=path + (i,),
                    )
                pages.append(
                    WidgetNode(
                        widget="vertical",
                        children=(page,),
                        title=page_title,
                    )
                )
            return [
                WidgetNode(
                    widget="tabs",
                    choice_path=path,
                    domain=domain,
                    children=tuple(pages),
                    title=context,
                )
            ]
        candidates = candidates_for(domain)
        if not candidates:
            candidates = (INTERACTION_WIDGETS["dropdown"],)
        name, size_class = chooser.choose_widget(path, domain, candidates)
        return [
            WidgetNode(
                widget=name,
                size_class=size_class,
                choice_path=path,
                domain=domain,
                title=context,
            )
        ]
    if node.kind == OPT:
        domain = domain_of(node)
        candidates = candidates_for(domain)
        name, size_class = chooser.choose_widget(path, domain, candidates)
        toggle = WidgetNode(
            widget=name,
            size_class=size_class,
            choice_path=path,
            domain=domain,
            title=context,
        )
        body = _build(node.children[0], path + (0,), chooser, context)
        if not body:
            return [toggle]
        orientation = chooser.choose_orientation(path, 1 + len(body))
        return [
            WidgetNode(
                widget=orientation,
                children=(toggle,) + tuple(body),
                title=_box_title(node),
                orientation_path=path,
            )
        ]
    if node.kind == MULTI:
        domain = domain_of(node)
        body = _build(node.children[0], path + (0,), chooser, context)
        return [
            WidgetNode(
                widget="adder",
                choice_path=path,
                domain=domain,
                children=tuple(body),
                title=context,
            )
        ]
    raise AssertionError(f"unreachable kind {node.kind!r}")


def _context_for(node: DTNode, inherited: str) -> str:
    if node.kind == ALL and node.label == N.SELECT:
        return ""
    return inherited


_CLAUSE_TITLES = {
    N.TOP: "TOP",
    N.PROJECT: "SELECT",
    N.WHERE: "WHERE",
    N.FROM: "FROM",
    N.GROUPBY: "GROUP BY",
    N.ORDERBY: "ORDER BY",
    N.LIMIT: "LIMIT",
}


def _child_context(node: DTNode, index: int, inherited: str) -> str:
    """Best-effort caption for widgets appearing under ``node``."""
    if node.kind != ALL:
        return inherited
    if node.label == N.SELECT:
        child = node.children[index]
        if child.kind == ALL:
            return _CLAUSE_TITLES.get(child.label, inherited)
        return inherited
    if node.label in _CLAUSE_TITLES:
        return _CLAUSE_TITLES[node.label]
    if node.label == N.BIEXPR:
        left = node.children[0]
        if left.kind == ALL and left.label == N.COLEXPR and index != 0:
            return f"{left.value} {node.value}"
        return inherited
    if node.label == N.BETWEEN:
        column = node.children[0]
        if column.kind == ALL and column.label == N.COLEXPR and index != 0:
            return str(column.value)
        return inherited
    return inherited


def _box_title(node: DTNode) -> str:
    if node.kind == ALL and node.label in _CLAUSE_TITLES:
        return _CLAUSE_TITLES[node.label]
    return ""


# -- assignment enumeration ---------------------------------------------------------


@dataclass
class DecisionSpace:
    """All free decisions of a difftree's widget derivation."""

    widget_options: Dict[Path, Tuple[str, ...]] = field(default_factory=dict)
    orientation_points: Tuple[Path, ...] = ()

    @property
    def num_assignments(self) -> int:
        total = 1
        for options in self.widget_options.values():
            total *= len(options) * len(SIZE_CLASSES)
        total *= len(ORIENTATIONS) ** len(self.orientation_points)
        return total


def decision_space(tree: DTNode) -> DecisionSpace:
    """Discover the decision points of ``tree`` via a recording dry run."""
    recorder = RecordingChooser()
    derive_widget_tree(tree, recorder)
    return DecisionSpace(
        widget_options=recorder.widget_options,
        orientation_points=tuple(recorder.orientation_points),
    )


# -- the decision schema (compiled derivation) -----------------------------------


@dataclass(frozen=True)
class WidgetDecision:
    """One free widget choice: which ``(name, size_class)`` at ``path``."""

    path: Path
    candidates: Tuple[str, ...]


@dataclass(frozen=True)
class OrientationDecision:
    """One free layout choice: box orientation at ``path``."""

    path: Path
    num_children: int


Decision = Union[WidgetDecision, OrientationDecision]


@dataclass(frozen=True)
class DecisionDelta:
    """One decision change between consecutive candidate widget trees.

    Emitted by :func:`enumerate_decision_vectors` (and the ``_with_deltas``
    tree enumerator) so a compiled evaluator can patch only the widgets a
    single choice change touched instead of re-scoring the whole tree.
    """

    index: int
    path: Path
    kind: str  # "widget" | "orientation"
    value: object  # (name, size_class) for widgets, orientation name else


class SchemaChooser:
    """Greedy decisions that record the *interleaved* decision sequence.

    Unlike :class:`RecordingChooser` (which keeps widget and orientation
    points in separate containers), this preserves the exact derivation
    call order — required to replay :class:`RandomChooser`'s RNG
    consumption decision-for-decision.
    """

    def __init__(self) -> None:
        self.decisions: List[Decision] = []

    def choose_widget(self, path, domain, candidates):
        self.decisions.append(
            WidgetDecision(path=path, candidates=tuple(c.name for c in candidates))
        )
        return (candidates[0].name, "M")

    def choose_orientation(self, path, num_children):
        self.decisions.append(
            OrientationDecision(path=path, num_children=num_children)
        )
        return "vertical"


@dataclass(frozen=True)
class DecisionSchema:
    """All free decisions of a difftree's derivation, in derivation order.

    A *decision vector* is a list parallel to :attr:`decisions`:
    ``(name, size_class)`` tuples at widget positions and orientation
    names at orientation positions.  The schema is the compile-once
    artifact the cost kernel scores vectors against without ever
    materializing the intermediate widget trees.
    """

    decisions: Tuple[Decision, ...]

    @cached_property
    def widget_indices(self) -> Tuple[int, ...]:
        """Widget-decision positions, sorted by choice path.

        This is the canonical optimizer visit order (the outer loops of
        the legacy enumerator and of coordinate descent) — keep every
        consumer on this single definition so candidate orders and
        tie-breaks never drift apart.
        """
        return tuple(
            sorted(
                (
                    i
                    for i, d in enumerate(self.decisions)
                    if isinstance(d, WidgetDecision)
                ),
                key=lambda i: self.decisions[i].path,
            )
        )

    @cached_property
    def orientation_indices(self) -> Tuple[int, ...]:
        """Orientation-decision positions, in derivation order."""
        return tuple(
            i
            for i, d in enumerate(self.decisions)
            if isinstance(d, OrientationDecision)
        )

    @cached_property
    def enumeration_indices(self) -> Tuple[int, ...]:
        """Digit order of the legacy tree enumeration (rightmost fastest).

        Widget decisions sorted by path come first, then orientation
        decisions in derivation order — matching the loop nesting of the
        original recursive enumerator so winners and tie-breaks agree.
        """
        return self.widget_indices + self.orientation_indices

    @property
    def num_assignments(self) -> int:
        total = 1
        for decision in self.decisions:
            if isinstance(decision, WidgetDecision):
                total *= len(decision.candidates) * len(SIZE_CLASSES)
            else:
                total *= len(ORIENTATIONS)
        return total

    def options_for(self, index: int) -> Tuple[object, ...]:
        """All values of one decision, in legacy enumeration order."""
        decision = self.decisions[index]
        if isinstance(decision, WidgetDecision):
            return tuple(
                (name, size_class)
                for name in decision.candidates
                for size_class in SIZE_CLASSES
            )
        return ORIENTATIONS

    def greedy_vector(self) -> List[object]:
        """The decisions :class:`GreedyChooser` would make."""
        return [
            (d.candidates[0], "M") if isinstance(d, WidgetDecision) else "vertical"
            for d in self.decisions
        ]

    def random_vector(self, rng: random.Random) -> List[object]:
        """The decisions :class:`RandomChooser` would make.

        Consumes ``rng`` exactly like a :class:`RandomChooser`-driven
        derivation (same calls, same order), so sampling through the
        kernel reproduces legacy sampled evaluation bit-for-bit.
        """
        vector: List[object] = []
        for decision in self.decisions:
            if isinstance(decision, WidgetDecision):
                name = rng.choice(decision.candidates)
                vector.append((name, rng.choice(SIZE_CLASSES)))
            else:
                vector.append(rng.choice(ORIENTATIONS))
        return vector

    def tables(
        self, vector: Sequence[object]
    ) -> Tuple[Dict[Path, Tuple[str, str]], Dict[Path, str]]:
        """Split a decision vector into :class:`ReplayChooser` tables."""
        widgets: Dict[Path, Tuple[str, str]] = {}
        orientations: Dict[Path, str] = {}
        for decision, value in zip(self.decisions, vector):
            if isinstance(decision, WidgetDecision):
                widgets[decision.path] = value  # type: ignore[assignment]
            else:
                orientations[decision.path] = value  # type: ignore[assignment]
        return widgets, orientations

    def delta(self, index: int, value: object) -> DecisionDelta:
        decision = self.decisions[index]
        kind = "widget" if isinstance(decision, WidgetDecision) else "orientation"
        return DecisionDelta(index=index, path=decision.path, kind=kind, value=value)


def decision_schema(tree: DTNode) -> Tuple[WidgetNode, DecisionSchema]:
    """Record a difftree's decision schema (and its greedy skeleton tree).

    The skeleton is the greedy derivation: it fixes the topology every
    candidate of the decision space shares (decisions only swap widget
    types/sizes and box orientations; they never change the tree shape).
    """
    chooser = SchemaChooser()
    skeleton = derive_widget_tree(tree, chooser)
    return skeleton, DecisionSchema(decisions=tuple(chooser.decisions))


def enumerate_decision_vectors(
    schema: DecisionSchema, cap: int = 5000
) -> Iterator[Tuple[List[object], Optional[Tuple[DecisionDelta, ...]]]]:
    """Yield decision vectors over the full product, with change deltas.

    Candidates appear in exactly the legacy :func:`enumerate_widget_trees`
    order.  The first yield carries ``None`` deltas (a full assignment);
    every later yield carries the decisions that changed since the
    previous candidate (usually one — odometer rollovers change a few).
    The yielded vector is reused in place: snapshot it before storing.
    """
    order = schema.enumeration_indices
    options = [schema.options_for(i) for i in order]
    vector: List[object] = schema.greedy_vector()
    for pos, opts in zip(order, options):
        vector[pos] = opts[0]
    produced = 0
    if produced >= cap:
        return
    yield vector, None
    produced += 1
    digits = [0] * len(order)
    while produced < cap:
        changed: List[int] = []
        i = len(order) - 1
        while i >= 0:
            digits[i] += 1
            changed.append(i)
            if digits[i] < len(options[i]):
                break
            digits[i] = 0
            i -= 1
        else:
            return  # every digit rolled over: enumeration complete
        deltas = []
        for j in sorted(changed):
            pos = order[j]
            value = options[j][digits[j]]
            vector[pos] = value
            deltas.append(schema.delta(pos, value))
        yield vector, tuple(deltas)
        produced += 1


def enumerate_widget_trees_with_deltas(
    tree: DTNode, cap: int = 5000
) -> Iterator[Tuple[WidgetNode, Optional[Tuple[DecisionDelta, ...]]]]:
    """Yield ``(widget_tree, deltas)`` over the decision product.

    The deltas describe what changed relative to the previously yielded
    tree (``None`` for the first), letting delta-aware evaluators patch
    instead of recompute; plain consumers can ignore them.
    """
    _, schema = decision_schema(tree)
    for vector, deltas in enumerate_decision_vectors(schema, cap=cap):
        widgets, orientations = schema.tables(vector)
        yield derive_widget_tree(tree, ReplayChooser(widgets, orientations)), deltas


def enumerate_widget_trees(tree: DTNode, cap: int = 5000) -> Iterator[WidgetNode]:
    """Yield widget trees over the full decision product, up to ``cap``.

    The paper enumerates all widget trees of the final difftree; ``cap``
    guards against pathological products (callers fall back to
    coordinate descent via the search layer when the cap is hit).
    """
    for root, _ in enumerate_widget_trees_with_deltas(tree, cap=cap):
        yield root
