"""The widget library: interaction and layout widget types.

Interaction widgets (paper footnote 2): label, textbox, dropdown, slider,
range slider, checkboxes, radio buttons, buttons, toggle — plus *tabs*
when used to switch between alternative sub-interfaces.  Layout widgets
(footnote 1): horizontal, vertical, tabs, adder.

Each interaction widget type defines:

* ``can_express(domain)`` — hard applicability (a slider cannot express
  arbitrary subtrees);
* ``appropriateness(domain)`` — the ``M(w)`` cost term, borrowed in spirit
  from Zhang, Sellam & Wu (2017): lower is better, e.g. radio buttons are
  great for 2–5 options and increasingly bad beyond;
* ``base_size(domain)`` — (width, height) in abstract pixels for the
  medium size class;
* ``interaction_cost(domain)`` — effort of one user operation (clicks,
  drags, typing), used inside the sequence cost ``U``.

Per the paper, sizes are discretized: every widget comes in ``S``/``M``/``L``
templates.  Smaller templates save screen space but cost more effort to
operate (harder targets, per Fitts-style reasoning), which the cost model
reflects via ``SIZE_CLASS_EFFORT``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .domain import BOOLEAN, COUNT, NUMERIC, RANGE, STRING, SUBTREE, ChoiceDomain

# Size classes (paper: "we predefine small, medium and large ... templates").
SIZE_CLASSES = ("S", "M", "L")
SIZE_CLASS_SCALE: Dict[str, float] = {"S": 0.8, "M": 1.0, "L": 1.25}
SIZE_CLASS_EFFORT: Dict[str, float] = {"S": 1.25, "M": 1.0, "L": 0.9}

_CHAR_W = 7  # abstract px per character

#: Appropriateness penalty per option-label character for widgets that
#: enumerate their options (buttons, radio, dropdown, tabs).  Whole-SQL
#: labels make options hard to read and compare, so widgets over coarse
#: subtree domains (e.g. one button per query) pay for it — this is what
#: pushes the search toward factored, semantic widgets on realistic logs.
LABEL_CHAR_PENALTY = 0.05


def _label_penalty(domain: ChoiceDomain) -> float:
    return LABEL_CHAR_PENALTY * domain.total_label_chars


@dataclass(frozen=True)
class WidgetType:
    """Static description of one widget type.

    Attributes:
        name: unique identifier (e.g. ``"dropdown"``).
        is_layout: layout widgets organize children; interaction widgets
            control one choice node.
        can_express: predicate over :class:`ChoiceDomain`.
        appropriateness: the ``M(w)`` cost given a domain.
        base_size: (width, height) at size class ``M``.
        interaction_cost: effort of one operation on the widget.
    """

    name: str
    is_layout: bool
    can_express: Callable[[ChoiceDomain], bool]
    appropriateness: Callable[[ChoiceDomain], float]
    base_size: Callable[[ChoiceDomain], Tuple[float, float]]
    interaction_cost: Callable[[ChoiceDomain], float]

    def size(self, domain: Optional[ChoiceDomain], size_class: str = "M") -> Tuple[float, float]:
        scale = SIZE_CLASS_SCALE[size_class]
        width, height = self.base_size(domain)
        return (width * scale, height * scale)

    def effort(self, domain: Optional[ChoiceDomain], size_class: str = "M") -> float:
        return self.interaction_cost(domain) * SIZE_CLASS_EFFORT[size_class]


def _simple_options(domain: ChoiceDomain) -> bool:
    """Flat widgets can only enumerate concrete (choice-free) options."""
    return not domain.complex_options


def _is_enumerable(domain: ChoiceDomain) -> bool:
    return domain.kind in (NUMERIC, STRING, RANGE, SUBTREE) and _simple_options(domain)


def _numeric_irregularity(domain: ChoiceDomain) -> float:
    """0 for evenly spaced numeric options, growing with irregularity.

    Sliders assume an ordered, roughly uniform scale; ``10, 100, 1000`` is
    usable (log-ish) but worse than ``0, 10, 20``.
    """
    values = sorted(domain.numeric_values())
    if len(values) < 3:
        return 0.0
    gaps = [b - a for a, b in zip(values, values[1:])]
    mean = sum(gaps) / len(gaps)
    if mean <= 0:
        return 0.0
    variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    return min(2.0, math.sqrt(variance) / mean)


# -- interaction widget definitions ---------------------------------------------


def _dropdown() -> WidgetType:
    return WidgetType(
        name="dropdown",
        is_layout=False,
        can_express=lambda d: _is_enumerable(d) and d.size >= 2,
        appropriateness=lambda d: 2.0 + 0.02 * d.size + (1.0 if d.size == 2 else 0.0)
        + _label_penalty(d),
        base_size=lambda d: (
            min(240.0, max(90.0, 24 + _CHAR_W * d.max_label_len)),
            32.0,
        ),
        interaction_cost=lambda d: 2.0 + 0.01 * d.size,
    )


def _radio() -> WidgetType:
    return WidgetType(
        name="radio",
        is_layout=False,
        can_express=lambda d: _is_enumerable(d) and 2 <= d.size <= 12,
        appropriateness=lambda d: 1.0 + 0.5 * max(0, d.size - 5) + _label_penalty(d),
        base_size=lambda d: (
            min(260.0, 24 + _CHAR_W * d.max_label_len),
            26.0 * d.size,
        ),
        interaction_cost=lambda d: 1.0,
    )


def _buttons() -> WidgetType:
    return WidgetType(
        name="buttons",
        is_layout=False,
        can_express=lambda d: _is_enumerable(d) and 2 <= d.size <= 10,
        appropriateness=lambda d: 0.8 + 0.7 * max(0, d.size - 4) + _label_penalty(d),
        base_size=lambda d: (
            sum(20 + _CHAR_W * len(label) for label in d.labels) + 6.0 * (d.size - 1),
            34.0,
        ),
        interaction_cost=lambda d: 1.0,
    )


def _slider() -> WidgetType:
    return WidgetType(
        name="slider",
        is_layout=False,
        can_express=lambda d: d.kind == NUMERIC
        and _simple_options(d)
        and not d.has_empty
        and d.size >= 2,
        appropriateness=lambda d: 1.0 + 1.5 * _numeric_irregularity(d),
        base_size=lambda d: (170.0, 36.0),
        interaction_cost=lambda d: 1.5,
    )


def _range_slider() -> WidgetType:
    return WidgetType(
        name="range_slider",
        is_layout=False,
        can_express=lambda d: d.kind == RANGE and _simple_options(d) and not d.has_empty,
        appropriateness=lambda d: 1.2,
        base_size=lambda d: (190.0, 40.0),
        interaction_cost=lambda d: 2.5,
    )


def _textbox() -> WidgetType:
    return WidgetType(
        name="textbox",
        is_layout=False,
        can_express=lambda d: d.kind in (NUMERIC, STRING)
        and _simple_options(d)
        and not d.has_empty,
        appropriateness=lambda d: max(1.5, 4.5 - 0.05 * d.size),
        base_size=lambda d: (140.0, 32.0),
        interaction_cost=lambda d: 3.0,
    )


def _toggle() -> WidgetType:
    return WidgetType(
        name="toggle",
        is_layout=False,
        can_express=lambda d: d.kind == BOOLEAN
        or (_is_enumerable(d) and d.size == 2),
        appropriateness=lambda d: 0.5
        + (_label_penalty(d) if d.kind != BOOLEAN else 0.0),
        base_size=lambda d: (80.0, 28.0),
        interaction_cost=lambda d: 1.0,
    )


def _checkbox() -> WidgetType:
    return WidgetType(
        name="checkbox",
        is_layout=False,
        can_express=lambda d: d.kind == BOOLEAN,
        appropriateness=lambda d: 0.6,
        base_size=lambda d: (90.0, 24.0),
        interaction_cost=lambda d: 1.0,
    )


def _label() -> WidgetType:
    return WidgetType(
        name="label",
        is_layout=False,
        can_express=lambda d: False,  # never controls a choice; decoration only
        appropriateness=lambda d: 0.1,
        base_size=lambda d: (
            _CHAR_W * (d.max_label_len if d else 8),
            20.0,
        ),
        interaction_cost=lambda d: 0.0,
    )


def _tabs_choice() -> WidgetType:
    """Tabs used as an *interaction* widget over complex ANY alternatives."""
    return WidgetType(
        name="tabs",
        is_layout=False,
        can_express=lambda d: d.kind == SUBTREE and 2 <= d.size <= 8,
        appropriateness=lambda d: 1.5 + 0.5 * max(0, d.size - 4) + _label_penalty(d),
        base_size=lambda d: (
            sum(18 + _CHAR_W * len(label) for label in d.labels),
            30.0,
        ),
        interaction_cost=lambda d: 1.0,
    )


def _adder() -> WidgetType:
    return WidgetType(
        name="adder",
        is_layout=False,
        can_express=lambda d: d.kind == COUNT,
        appropriateness=lambda d: 1.0,
        base_size=lambda d: (70.0, 30.0),  # the +/- button row; content extra
        interaction_cost=lambda d: 1.5,
    )


# -- layout widget definitions ---------------------------------------------------


def _layout(name: str) -> WidgetType:
    return WidgetType(
        name=name,
        is_layout=True,
        can_express=lambda d: False,
        appropriateness=lambda d: 0.2,  # layout-complexity term (Comber/Maltby)
        base_size=lambda d: (0.0, 0.0),  # computed from children by layout solver
        interaction_cost=lambda d: 0.0,
    )


VERTICAL = _layout("vertical")
HORIZONTAL = _layout("horizontal")

#: All interaction widget types by name.
INTERACTION_WIDGETS: Dict[str, WidgetType] = {
    w.name: w
    for w in (
        _dropdown(),
        _radio(),
        _buttons(),
        _slider(),
        _range_slider(),
        _textbox(),
        _toggle(),
        _checkbox(),
        _label(),
        _tabs_choice(),
        _adder(),
    )
}

#: Layout widget types by name.
LAYOUT_WIDGETS: Dict[str, WidgetType] = {w.name: w for w in (VERTICAL, HORIZONTAL)}

ALL_WIDGETS: Dict[str, WidgetType] = {**INTERACTION_WIDGETS, **LAYOUT_WIDGETS}


def widget_type(name: str) -> WidgetType:
    try:
        return ALL_WIDGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown widget {name!r} (have: {', '.join(sorted(ALL_WIDGETS))})"
        ) from None


def candidates_for(domain: ChoiceDomain) -> Tuple[WidgetType, ...]:
    """Interaction widgets that can express ``domain``, best-``M`` first."""
    options = [
        w
        for w in INTERACTION_WIDGETS.values()
        if w.name != "label" and w.can_express(domain)
    ]
    options.sort(key=lambda w: (w.appropriateness(domain), w.name))
    return tuple(options)
