"""Choice-node domains: what a widget must let the user choose.

Each choice node in a difftree exposes a *domain*:

* ``ANY``   — one option per alternative (possibly including ∅),
* ``OPT``   — a boolean (present / absent),
* ``MULTI`` — a repetition count (the adder widget's +/-).

The domain also classifies its options (numeric literals, string literals,
numeric ranges, or arbitrary subtrees) — widget applicability and the
appropriateness cost ``M(w)`` depend on this classification (a slider can
express ``TOP 10/100/1000`` but not ``objid``-vs-``count(*)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..difftree import ANY, EMPTY, MULTI, OPT, DTNode
from ..difftree.dtnodes import ALL
from ..sqlast import nodes as N

#: Option kinds.
NUMERIC = "numeric"
STRING = "string"
RANGE = "range"  # (lo, hi) numeric pairs, e.g. whole BETWEEN subtrees
SUBTREE = "subtree"
BOOLEAN = "boolean"  # OPT domains
COUNT = "count"  # MULTI domains

#: AST labels whose scalar value is numeric.
_NUMERIC_LEAF_LABELS = frozenset({N.NUMEXPR, N.TOP, N.LIMIT})
#: AST labels whose scalar value is a string.
_STRING_LEAF_LABELS = frozenset({N.STREXPR, N.COLEXPR, N.TABLE})


@dataclass(frozen=True)
class ChoiceDomain:
    """The user-facing domain of one choice node.

    Attributes:
        kind: one of NUMERIC/STRING/RANGE/SUBTREE/BOOLEAN/COUNT.
        labels: display label per option, in alternative order.
        values: payload per option — numbers for NUMERIC, strings for
            STRING, (lo, hi) tuples for RANGE, None for SUBTREE options.
        has_empty: True when one option is the absent subtree ∅.
        complex_options: True when at least one option contains nested
            choice nodes (such an ANY needs a tabs-style widget).
        total_label_chars: sum of *uncapped* option-label lengths.  Long
            labels (whole SQL statements) are a usability cost: widgets
            that enumerate them are penalized in ``M`` even though the
            rendered labels are truncated.
    """

    kind: str
    labels: Tuple[str, ...]
    values: Tuple[object, ...] = ()
    has_empty: bool = False
    complex_options: bool = False
    total_label_chars: int = 0

    @property
    def size(self) -> int:
        return len(self.labels)

    @property
    def max_label_len(self) -> int:
        return max((len(label) for label in self.labels), default=0)

    def numeric_values(self) -> List[float]:
        if self.kind != NUMERIC:
            raise ValueError(f"domain is {self.kind}, not numeric")
        return [float(v) for v in self.values if v is not None]


def domain_of(node: DTNode) -> ChoiceDomain:
    """Extract the domain of a choice node.

    Raises:
        ValueError: for non-choice nodes.
    """
    if node.kind == OPT:
        return ChoiceDomain(kind=BOOLEAN, labels=("off", "on"), values=(False, True))
    if node.kind == MULTI:
        return ChoiceDomain(kind=COUNT, labels=("0", "1", "..."), values=(0, 1))
    if node.kind != ANY:
        raise ValueError(f"node kind {node.kind!r} has no domain")

    labels: List[str] = []
    values: List[object] = []
    has_empty = False
    complex_options = False
    total_chars = 0
    kinds: List[str] = []
    for alt in node.children:
        if alt.kind == EMPTY:
            has_empty = True
            labels.append("(none)")
            values.append(None)
            continue
        full_label = option_label(alt, limit=10_000)
        total_chars += len(full_label)
        if alt.has_choice_descendant() or alt.kind in (OPT, MULTI, ANY):
            complex_options = True
            labels.append(option_label(alt))
            values.append(None)
            kinds.append(SUBTREE)
            continue
        labels.append(option_label(alt))
        kind, value = _classify_concrete(alt)
        kinds.append(kind)
        values.append(value)

    if complex_options:
        overall = SUBTREE
    elif kinds and all(k == NUMERIC for k in kinds):
        overall = NUMERIC
    elif kinds and all(k == RANGE for k in kinds):
        overall = RANGE
    elif kinds and all(k == STRING for k in kinds):
        overall = STRING
    else:
        overall = SUBTREE
    return ChoiceDomain(
        kind=overall,
        labels=tuple(labels),
        values=tuple(values),
        has_empty=has_empty,
        complex_options=complex_options,
        total_label_chars=total_chars,
    )


def _classify_concrete(alt: DTNode) -> Tuple[str, object]:
    """Classify one concrete (choice-free) alternative."""
    if not alt.children and alt.label in _NUMERIC_LEAF_LABELS:
        return NUMERIC, alt.value
    if not alt.children and alt.label in _STRING_LEAF_LABELS:
        return STRING, alt.value
    pair = _between_pair(alt)
    if pair is not None:
        return RANGE, pair
    return SUBTREE, None


def _between_pair(alt: DTNode) -> Optional[Tuple[float, float]]:
    """``(lo, hi)`` when ``alt`` is a concrete BETWEEN with numeric bounds."""
    if alt.kind != ALL or alt.label != N.BETWEEN or len(alt.children) != 3:
        return None
    _, lo, hi = alt.children
    for bound in (lo, hi):
        if bound.children or bound.label != N.NUMEXPR:
            return None
    return (float(lo.value), float(hi.value))


# -- display labels -------------------------------------------------------------


def option_label(node: DTNode, limit: int = 40) -> str:
    """Short human-readable label for a difftree subtree (widget option)."""
    text = _label(node)
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def _label(node: DTNode) -> str:
    if node.kind == EMPTY:
        return "(none)"
    if node.kind == ANY:
        return " | ".join(_label(c) for c in node.children)
    if node.kind == OPT:
        return f"[{_label(node.children[0])}]"
    if node.kind == MULTI:
        return f"{_label(node.children[0])}*"
    label, value = node.label, node.value
    if label in (N.NUMEXPR, N.STREXPR, N.COLEXPR, N.TABLE):
        return str(value)
    if label in (N.TOP, N.LIMIT):
        return str(value)
    if label == N.STAR:
        return "*"
    if label == N.FUNC:
        return f"{value}({', '.join(_label(c) for c in node.children)})"
    if label == N.ALIAS:
        inner = " ".join(_label(c) for c in node.children)
        return f"{inner} AS {value}"
    if label == N.BIEXPR:
        # Rule rewrites can change slot arity; join whatever slots exist.
        return f" {value} ".join(_label(c) for c in node.children)
    if label == N.BETWEEN:
        parts = [_label(c) for c in node.children]
        if len(parts) == 3:
            return f"{parts[0]} BETWEEN {parts[1]} AND {parts[2]}"
        return f"BETWEEN({', '.join(parts)})"
    if label == N.INLIST:
        parts = [_label(c) for c in node.children]
        if len(parts) >= 2:
            return f"{parts[0]} IN ({', '.join(parts[1:])})"
        return f"IN({', '.join(parts)})"
    if label == N.AND:
        return " AND ".join(_label(c) for c in node.children)
    if label == N.OR:
        return " OR ".join(_label(c) for c in node.children)
    if label == N.NOT:
        return "NOT " + " ".join(_label(c) for c in node.children)
    if label == N.WHERE:
        return "WHERE " + " ".join(_label(c) for c in node.children)
    if label == N.PROJECT:
        return ", ".join(_label(c) for c in node.children)
    if label == N.FROM:
        return f"FROM {', '.join(_label(c) for c in node.children)}"
    if label == N.GROUPBY:
        return f"GROUP BY {', '.join(_label(c) for c in node.children)}"
    if label == N.ORDERBY:
        return f"ORDER BY {', '.join(_label(c) for c in node.children)}"
    if label == N.ORDERITEM:
        direction = " DESC" if value == "desc" else ""
        inner = " ".join(_label(c) for c in node.children)
        return f"{inner}{direction}"
    if label == N.SELECT:
        return "SELECT " + " ".join(_label(c) for c in node.children)
    if value is not None:
        return f"{label}={value}"
    return label
