"""Show-Me-style visualization recommendation (Mackinlay et al. 2007).

The paper "leverage[s] existing automatic visualization techniques that
recommend visualizations based on a dataset"; this module is that
substrate.  Given a query's result set (and the query itself for context),
it picks a chart type by simple, well-known rules:

* a single 1×1 aggregate            → big number
* one categorical + one numeric col → bar chart
* two numeric columns               → scatter plot
* one numeric column                → histogram
* anything else                     → table
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..database import ResultSet
from ..sqlast import Node
from ..sqlast import nodes as N

BIG_NUMBER = "big_number"
BAR = "bar"
SCATTER = "scatter"
HISTOGRAM = "histogram"
TABLE = "table"


@dataclass(frozen=True)
class ChartSpec:
    """A renderable chart recommendation.

    Attributes:
        kind: one of the module-level chart-kind constants.
        x: column mapped to the x encoding (None for big_number/table).
        y: column mapped to the y encoding.
        title: chart caption (usually the SQL text).
    """

    kind: str
    x: Optional[str] = None
    y: Optional[str] = None
    title: str = ""


def _column_kinds(result: ResultSet) -> List[Tuple[str, str]]:
    """Classify result columns as numeric or categorical."""
    kinds = []
    for name in result.columns:
        values = [v for v in result.column(name) if v is not None]
        numeric = bool(values) and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )
        kinds.append((name, "numeric" if numeric else "categorical"))
    return kinds


def recommend_chart(result: ResultSet, query: Optional[Node] = None) -> ChartSpec:
    """Pick a chart for ``result`` (optionally informed by ``query``)."""
    title = ""
    if query is not None:
        from ..sqlast import to_sql

        title = to_sql(query)
    kinds = _column_kinds(result)
    if result.num_rows == 1 and len(kinds) == 1 and kinds[0][1] == "numeric":
        return ChartSpec(kind=BIG_NUMBER, y=kinds[0][0], title=title)
    if query is not None and _is_grouped_aggregate(query) and len(kinds) >= 2:
        categorical = next((n for n, k in kinds if k == "categorical"), None)
        numeric = next((n for n, k in kinds if k == "numeric"), None)
        if categorical and numeric:
            return ChartSpec(kind=BAR, x=categorical, y=numeric, title=title)
    numeric_cols = [n for n, k in kinds if k == "numeric"]
    categorical_cols = [n for n, k in kinds if k == "categorical"]
    if len(kinds) == 2 and len(numeric_cols) == 2:
        return ChartSpec(kind=SCATTER, x=numeric_cols[0], y=numeric_cols[1], title=title)
    if len(kinds) == 2 and len(numeric_cols) == 1 and len(categorical_cols) == 1:
        return ChartSpec(kind=BAR, x=categorical_cols[0], y=numeric_cols[0], title=title)
    if len(kinds) == 1 and numeric_cols and result.num_rows > 1:
        return ChartSpec(kind=HISTOGRAM, x=numeric_cols[0], title=title)
    return ChartSpec(kind=TABLE, title=title)


def _is_grouped_aggregate(query: Node) -> bool:
    return query.child_by_label(N.GROUPBY) is not None
