"""ASCII chart rendering for recommended visualizations.

Offline substitute for the paper's plotly front-end: renders the
:class:`ChartSpec` kinds as monospace text so examples and tests can show
the full interaction loop end-to-end without a browser.
"""

from __future__ import annotations

import math
from typing import List

from ..database import ResultSet
from .recommend import BAR, BIG_NUMBER, HISTOGRAM, SCATTER, TABLE, ChartSpec


def render_chart(spec: ChartSpec, result: ResultSet, width: int = 60) -> str:
    """Render ``result`` under ``spec`` as multi-line ASCII art."""
    if spec.kind == BIG_NUMBER:
        return _render_big_number(spec, result)
    if spec.kind == BAR:
        return _render_bar(spec, result, width)
    if spec.kind == HISTOGRAM:
        return _render_histogram(spec, result, width)
    if spec.kind == SCATTER:
        return _render_scatter(spec, result, width)
    return _render_table(result, width)


def _render_big_number(spec: ChartSpec, result: ResultSet) -> str:
    value = result.rows[0][0] if result.rows else "-"
    label = spec.y or (result.columns[0] if result.columns else "")
    body = f"  {value}  "
    border = "+" + "-" * len(body) + "+"
    return "\n".join([spec.title, border, f"|{body}|", border, f" {label}"]).strip()

def _render_bar(spec: ChartSpec, result: ResultSet, width: int) -> str:
    labels = [str(v) for v in result.column(spec.x)] if spec.x else []
    values = [float(v or 0) for v in result.column(spec.y)] if spec.y else []
    if not values:
        return _render_table(result, width)
    label_w = max((len(s) for s in labels), default=1)
    max_value = max(values) or 1.0
    bar_w = max(4, width - label_w - 12)
    lines = [spec.title] if spec.title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(bar_w * value / max_value)))
        lines.append(f"{label:>{label_w}} | {bar} {value:g}")
    return "\n".join(lines)


def _render_histogram(spec: ChartSpec, result: ResultSet, width: int, bins: int = 8) -> str:
    values = [float(v) for v in result.column(spec.x) if v is not None]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - lo) / (hi - lo) * bins))
        counts[index] += 1
    max_count = max(counts) or 1
    bar_w = max(4, width - 22)
    lines = [spec.title] if spec.title else []
    for i, count in enumerate(counts):
        left = lo + (hi - lo) * i / bins
        right = lo + (hi - lo) * (i + 1) / bins
        bar = "#" * max(0, int(round(bar_w * count / max_count)))
        lines.append(f"[{left:7.2f},{right:7.2f}) | {bar} {count}")
    return "\n".join(lines)


def _render_scatter(
    spec: ChartSpec, result: ResultSet, width: int, height: int = 16
) -> str:
    xs = [float(v) for v in result.column(spec.x) if v is not None]
    ys = [float(v) for v in result.column(spec.y) if v is not None]
    if not xs or not ys:
        return "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = min(height - 1, int((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [spec.title] if spec.title else []
    lines.append(f"{spec.y} ^")
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width + f"> {spec.x}")
    return "\n".join(lines)


def _render_table(result: ResultSet, width: int, max_rows: int = 12) -> str:
    if not result.columns:
        return "(empty)"
    columns = result.columns
    rows = [tuple(str(v) for v in row) for row in result.rows[:max_rows]]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "-+-".join("-" * w for w in widths)
    lines = [header, sep]
    lines.extend(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    )
    if result.num_rows > max_rows:
        lines.append(f"... ({result.num_rows - max_rows} more rows)")
    return "\n".join(lines)
