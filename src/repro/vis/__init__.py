"""Visualization recommendation and ASCII rendering (Show-Me substrate)."""

from .recommend import (
    BAR,
    BIG_NUMBER,
    HISTOGRAM,
    SCATTER,
    TABLE,
    ChartSpec,
    recommend_chart,
)
from .render import render_chart

__all__ = [
    "ChartSpec",
    "recommend_chart",
    "render_chart",
    "BIG_NUMBER",
    "BAR",
    "SCATTER",
    "HISTOGRAM",
    "TABLE",
]
