"""BENCH-BATCH: vectorized batch cost kernel vs the scalar delta path.

Two claims (ISSUE 10 / `repro.cost.batch`):

1. **Throughput** — scoring whole candidate populations as nodes ×
   candidates numpy columns (`BatchCostKernel.evaluate_population`) is
   >= 3x faster, in candidate-evaluations/sec, than the scalar compiled
   kernel's per-candidate delta re-evaluation over the same enumeration
   order — with bit-identical per-candidate breakdowns.
2. **Equal-iteration search** — MCTS with the batch gate on converges to
   the *identical* cost and best-state fingerprint as with the gate off
   at the same iteration budget on the SDSS and TPC-H-style workloads
   (the batch kernel changes throughput, never results), in less wall
   clock.

Standalone script (also the CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_batch_kernel.py \
        --queries 8 --evals 1024 --iterations 10 --json BENCH_batch_kernel.json

With ``--strict`` the script exits non-zero unless both claims hold.
Requires numpy (the batch kernel is import-gated; without numpy this
bench has nothing to measure and exits non-zero).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import memo
from repro.cost import CostModel
from repro.cost.batch import BatchCostKernel, available as batch_available
from repro.difftree import DTNode, initial_difftree
from repro.layout import Screen
from repro.rules import forward_engine
from repro.search import MCTSConfig, mcts_search
from repro.sqlast import parse
from repro.widgets import enumerate_decision_vectors
from repro.registry import get_workload, workload_names
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> Dict[str, object]:
    """Registered growing-log generators by name (sdss, tpch, ...)."""
    return {name: get_workload(name) for name in workload_names(tag="growing")}


def factored_state(asts: List, max_steps: int = 200) -> DTNode:
    """A deterministic well-factored difftree (forward rules to fixpoint)."""
    engine = forward_engine()
    tree = initial_difftree(asts)
    for _ in range(max_steps):
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            break
        tree = engine.apply(tree, moves[0])
    return tree


# -- benchmark passes ------------------------------------------------------------


def throughput_pass(asts: List, screen: Screen, evals: int, chunk: int) -> Dict:
    """Candidate-evaluations/sec: scalar delta path vs batched populations.

    Both sides walk the same enumeration order and track the running
    best rank — the work the exhaustive widget pass actually performs.
    Parity is checked untimed afterwards: every per-candidate breakdown
    must be bit-identical between the two paths.
    """
    state = factored_state(asts)
    model = CostModel(asts, screen)
    kernel = model.kernel_for(state)
    candidates = min(evals, kernel.schema.num_assignments)
    batch = BatchCostKernel(kernel)

    t0 = time.perf_counter()
    best_rank = None
    for _, breakdown in kernel.iter_enumeration(cap=candidates):
        rank = breakdown.rank
        if best_rank is None or rank < best_rank:
            best_rank = rank
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, batch_breakdown = batch.enumerate_best(cap=candidates, chunk=chunk)
    batch_s = time.perf_counter() - t0
    batch_best = batch_breakdown.rank

    # Untimed parity sweep: bit-identical breakdowns, candidate by
    # candidate, over the full enumeration prefix.
    scalar_breakdowns = [
        b for _, b in kernel.iter_enumeration(cap=candidates)
    ]
    vectors = [
        tuple(v)
        for v, _ in enumerate_decision_vectors(kernel.schema, cap=candidates)
    ]
    mismatches = 0
    for lo in range(0, len(vectors), chunk):
        block = vectors[lo : lo + chunk]
        bb = batch.evaluate_population(block)
        for j in range(len(block)):
            if bb.breakdown(j) != scalar_breakdowns[lo + j]:
                mismatches += 1

    return {
        "candidates": candidates,
        "decision_product": kernel.schema.num_assignments,
        "chunk": chunk,
        "scalar_seconds": round(scalar_s, 4),
        "batch_seconds": round(batch_s, 4),
        "scalar_evals_per_s": round(candidates / scalar_s, 1) if scalar_s else None,
        "batch_evals_per_s": round(candidates / batch_s, 1) if batch_s else None,
        "speedup": round(scalar_s / batch_s, 2) if batch_s else None,
        "best_rank_equal": batch_best == best_rank,
        "parity_mismatches": mismatches,
    }


def mcts_pass(
    asts: List, screen: Screen, iterations: int, final_cap: int, seed: int
) -> Dict:
    """Equal-iteration MCTS: batch gate on vs off must converge identically."""
    config = MCTSConfig(
        time_budget_s=3600.0,  # iteration-capped: wall clock must not bite
        max_iterations=iterations,
        seed=seed,
        final_cap=final_cap,
    )

    def run(batch_on: bool) -> Dict:
        model = CostModel(asts, screen)
        initial = initial_difftree(asts)
        with memo.batch(batch_on):
            t0 = time.perf_counter()
            result = mcts_search(model, initial, config=config)
            seconds = time.perf_counter() - t0
        return {
            "cost": result.best_cost,
            "fingerprint": result.best_state.canonical_key,
            "seconds": round(seconds, 3),
            "states_evaluated": result.stats.states_evaluated,
            "batched_evals": result.stats.kernel_batched_evals,
            "batch_fallbacks": result.stats.kernel_batch_fallbacks,
        }

    scalar = run(batch_on=False)
    batched = run(batch_on=True)
    return {
        "iterations": iterations,
        "scalar_cost": scalar["cost"],
        "batch_cost": batched["cost"],
        "scalar_seconds": scalar["seconds"],
        "batch_seconds": batched["seconds"],
        "speedup": (
            round(scalar["seconds"] / batched["seconds"], 2)
            if batched["seconds"]
            else None
        ),
        "costs_equal": abs(batched["cost"] - scalar["cost"]) <= 1e-12,
        "fingerprints_equal": batched["fingerprint"] == scalar["fingerprint"],
        "states_evaluated": batched["states_evaluated"],
        "batched_evals": batched["batched_evals"],
        "batch_fallbacks": batched["batch_fallbacks"],
    }


def run(
    queries: int, evals: int, iterations: int, final_cap: int, seed: int, chunk: int
) -> Dict:
    screen = Screen.wide()
    workloads: Dict[str, Dict] = {}
    for name, generator in growing_workloads().items():
        asts = [parse(q) for q in generator(queries, seed=0)]
        workloads[name] = {
            "throughput": throughput_pass(asts, screen, evals, chunk),
            "mcts": mcts_pass(asts, screen, iterations, final_cap, seed),
        }
    speedups = [w["throughput"]["speedup"] for w in workloads.values()]
    return {
        "bench": "batch_kernel",
        "queries": queries,
        "evals": evals,
        "iterations": iterations,
        "final_cap": final_cap,
        "seed": seed,
        "chunk": chunk,
        "workloads": workloads,
        "min_throughput_speedup": min(speedups),
        "throughput_geq_3x": all(s >= 3.0 for s in speedups),
        "parity_clean": all(
            w["throughput"]["parity_mismatches"] == 0
            and w["throughput"]["best_rank_equal"]
            for w in workloads.values()
        ),
        "mcts_identical": all(
            w["mcts"]["costs_equal"] and w["mcts"]["fingerprints_equal"]
            for w in workloads.values()
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=8, help="session log size")
    parser.add_argument(
        "--evals", type=int, default=1024, help="candidates in the throughput pass"
    )
    parser.add_argument(
        "--iterations", type=int, default=10, help="MCTS iteration budget"
    )
    parser.add_argument(
        "--final-cap", type=int, default=400, help="final widget-pass cap"
    )
    parser.add_argument(
        "--chunk", type=int, default=256, help="batch population size per call"
    )
    parser.add_argument("--seed", type=int, default=0, help="search RNG seed")
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless >=3x throughput, zero parity mismatches, "
        "and identical MCTS convergence with the gate on vs off",
    )
    args = parser.parse_args(argv)
    if args.queries < 2 or args.evals < 2 or args.iterations < 1 or args.chunk < 2:
        parser.error("--queries/--evals/--chunk must be >= 2, --iterations >= 1")
    if not batch_available():
        print("numpy unavailable: the batch kernel cannot run", file=sys.stderr)
        return 1

    result = run(
        args.queries, args.evals, args.iterations, args.final_cap, args.seed, args.chunk
    )

    print("\n=== BENCH-BATCH — batched populations vs scalar delta path ===")
    for name, data in result["workloads"].items():
        tp, mc = data["throughput"], data["mcts"]
        print(
            f"[{name}] enumeration: {tp['candidates']} candidates  "
            f"scalar {tp['scalar_evals_per_s']:.0f}/s  "
            f"batch {tp['batch_evals_per_s']:.0f}/s  "
            f"speedup {tp['speedup']:.1f}x  "
            f"(mismatches: {tp['parity_mismatches']})"
        )
        print(
            f"[{name}] mcts x{mc['iterations']} iters: "
            f"scalar cost {mc['scalar_cost']:.3f} in {mc['scalar_seconds']:.2f}s, "
            f"batch cost {mc['batch_cost']:.3f} in {mc['batch_seconds']:.2f}s "
            f"({mc['speedup']}x, identical="
            f"{mc['costs_equal'] and mc['fingerprints_equal']})"
        )
    print(
        f"\nmin throughput speedup: {result['min_throughput_speedup']:.1f}x "
        f"(gate: >= 3x) | parity clean: {result['parity_clean']} | "
        f"mcts identical: {result['mcts_identical']}"
    )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")

    ok = (
        result["throughput_geq_3x"]
        and result["parity_clean"]
        and result["mcts_identical"]
    )
    if args.strict and not ok:
        print("STRICT: acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
