"""Figure 6 (a–e): generated interfaces for the SDSS log.

Regenerates every panel of the paper's Figure 6:

* (a) all 10 queries, wide screen  — enumerating widgets (radio/buttons)
* (b) all 10 queries, narrow screen — compact widgets (dropdowns/small)
* (c) queries 6–8 only — a much simpler interface (TOP picker)
* (d) a low-reward interface — poor widget choices are easily possible
* (e) the original SDSS search form, hand-specified, as a reference point

We match *shape*, not the authors' pixels: wide screens admit bigger
enumerating widgets; narrow screens force compact ones; the 6–8 subset
collapses to a tiny interface; random assignment is much worse than the
searched optimum; and the hand-built SDSS form scores in between.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import GenerationConfig, Screen, generate_interface
from repro.cost import CostModel, worst_sampled_evaluation
from repro.difftree import initial_difftree
from repro.interface import render_ascii
from repro.widgets import domain_of
from repro.widgets.tree import WidgetNode
from repro.workloads import listing1_queries, listing1_sql

BUDGET_S = 6.0
SEED = 11


def _widget_census(root) -> Counter:
    return Counter(n.widget for n in root.walk() if n.choice_path is not None)


def _report(table_printer, title, result):
    census = _widget_census(result.widget_tree)
    table_printer(
        title,
        ["metric", "value"],
        [
            ("total cost C(W,Q)", f"{result.cost:.2f}"),
            ("M (appropriateness)", f"{result.best.breakdown.m_cost:.2f}"),
            ("U (sequence)", f"{result.best.breakdown.u_cost:.2f}"),
            ("interface size", f"{result.best.breakdown.width:.0f} x {result.best.breakdown.height:.0f}"),
            ("interaction widgets", sum(census.values())),
            ("widget mix", dict(sorted(census.items()))),
        ],
    )
    table_printer.text(result.ascii_art)


@pytest.mark.parametrize("seed", [SEED])
def test_fig6a_wide_screen(benchmark, table_printer, seed):
    """Fig 6(a): full log on a wide screen prefers enumerating widgets."""
    result = benchmark.pedantic(
        lambda: generate_interface(
            listing1_sql(),
            screen=Screen.wide(),
            config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
        ),
        rounds=1,
        iterations=1,
    )
    _report(table_printer, "Figure 6(a) — all queries, wide screen", result)
    census = _widget_census(result.widget_tree)
    assert result.best.breakdown.feasible
    # Shape: wide screens admit spatially greedy enumerating widgets.
    enumerating = census["radio"] + census["buttons"] + census["slider"]
    assert enumerating >= 2
    assert result.best.breakdown.width <= Screen.wide().width


@pytest.mark.parametrize("seed", [SEED])
def test_fig6b_narrow_screen(benchmark, table_printer, seed):
    """Fig 6(b): the same log on a narrow screen needs compact widgets."""
    wide = generate_interface(
        listing1_sql(),
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
    )
    narrow = benchmark.pedantic(
        lambda: generate_interface(
            listing1_sql(),
            screen=Screen.narrow(),
            config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
        ),
        rounds=1,
        iterations=1,
    )
    _report(table_printer, "Figure 6(b) — all queries, narrow screen", narrow)
    assert narrow.best.breakdown.feasible
    assert narrow.best.breakdown.width <= Screen.narrow().width
    assert narrow.best.breakdown.height <= Screen.narrow().height
    # Shape: the narrow interface is spatially smaller and at least as
    # costly (screen constraints can only hurt the objective).
    assert narrow.best.breakdown.width <= wide.best.breakdown.width + 1e-9 or (
        narrow.best.breakdown.height <= wide.best.breakdown.height + 1e-9
    )
    assert narrow.cost >= wide.cost - 1e-6


@pytest.mark.parametrize("seed", [SEED])
def test_fig6c_queries_6_8(benchmark, table_printer, seed):
    """Fig 6(c): queries 6–8 share WHERE → a much simpler interface."""
    full = generate_interface(
        listing1_sql(),
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
    )
    subset = benchmark.pedantic(
        lambda: generate_interface(
            listing1_sql(6, 8),
            screen=Screen.wide(),
            config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
        ),
        rounds=1,
        iterations=1,
    )
    _report(table_printer, "Figure 6(c) — queries 6-8 only", subset)
    assert subset.best.breakdown.feasible
    full_widgets = sum(_widget_census(full.widget_tree).values())
    subset_widgets = sum(_widget_census(subset.widget_tree).values())
    # Shape: the subset interface is strictly simpler and cheaper.
    assert subset_widgets < full_widgets
    assert subset.cost < full.cost
    # The TOP 10/100/1000 chooser must be present.
    top_domains = [
        n.domain.labels
        for n in subset.widget_tree.walk()
        if n.domain is not None and set(n.domain.labels) >= {"10", "100", "1000"}
    ]
    assert top_domains


@pytest.mark.parametrize("seed", [SEED])
def test_fig6d_low_reward(benchmark, table_printer, seed):
    """Fig 6(d): poor widget choices are easily possible (and much worse)."""
    import random

    queries = listing1_queries()
    model = CostModel(queries, Screen.wide())
    searched = generate_interface(
        listing1_sql(),
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=seed),
    )
    low = benchmark.pedantic(
        lambda: worst_sampled_evaluation(
            model, searched.difftree, k=30, rng=random.Random(seed)
        ),
        rounds=1,
        iterations=1,
    )
    table_printer(
        "Figure 6(d) — low-reward interface on the same difftree",
        ["interface", "cost", "feasible"],
        [
            ("searched (MCTS + exhaustive widgets)", f"{searched.cost:.2f}", True),
            ("low-reward random assignment", f"{low.cost:.2f}", low.breakdown.feasible),
        ],
    )
    table_printer.text(render_ascii(low.widget_tree))
    assert low.cost > searched.cost * 1.15


def test_fig6e_sdss_reference(benchmark, table_printer):
    """Fig 6(e): the pre-existing SDSS search form as a reference point.

    We hand-build a widget tree mirroring the SkyServer form the paper
    screenshots: per-band bound widgets, a table chooser, and a TOP
    textbox, stacked vertically — then score it under the same cost model
    and difftree as the generated interfaces.
    """
    queries = listing1_queries()
    model = CostModel(queries, Screen.wide())
    tree = _factored_difftree()

    def build_reference():
        widgets = []
        for path, node in tree.choice_nodes():
            if any(tree.at(path[:k]).kind == "MULTI" for k in range(1, len(path))):
                continue
            domain = domain_of(node)
            if domain.kind == "numeric":
                widget = "textbox" if not domain.has_empty else "dropdown"
            elif domain.kind == "boolean":
                widget = "checkbox"
            else:
                widget = "dropdown"
            widgets.append(
                WidgetNode(widget=widget, choice_path=path, domain=domain)
            )
        return WidgetNode(widget="vertical", children=tuple(widgets))

    reference = benchmark.pedantic(build_reference, rounds=1, iterations=1)
    breakdown = model.evaluate(tree, reference)
    searched = generate_interface(
        listing1_sql(),
        screen=Screen.wide(),
        config=GenerationConfig(time_budget_s=BUDGET_S, seed=SEED),
    )
    table_printer(
        "Figure 6(e) — hand-built SDSS-form-style reference",
        ["interface", "cost", "M", "U"],
        [
            (
                "generated (MCTS)",
                f"{searched.cost:.2f}",
                f"{searched.best.breakdown.m_cost:.2f}",
                f"{searched.best.breakdown.u_cost:.2f}",
            ),
            (
                "SDSS-form reference",
                f"{breakdown.total:.2f}",
                f"{breakdown.m_cost:.2f}",
                f"{breakdown.u_cost:.2f}",
            ),
        ],
    )
    table_printer.text(render_ascii(reference))
    # Shape: the generic form is usable but not better than the searched
    # interface under the same objective.
    assert searched.cost <= breakdown.total + 1e-6


def _factored_difftree():
    from repro.rules import forward_engine

    engine = forward_engine()
    tree = initial_difftree(listing1_queries())
    while True:
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            return tree
        tree = engine.apply(tree, moves[0])
