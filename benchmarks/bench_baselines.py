"""T-CMP: MCTS versus search baselines and the bottom-up miner.

The paper's implicit comparison: top-down MCTS search under the full cost
model versus (a) naive search in the same space and (b) the bottom-up
Zhang/Sellam/Wu 2017 miner that ignores layout and query order.  Equal
wall-clock budgets for the search strategies; the miner is deterministic
and effectively instant.
"""

from __future__ import annotations

from repro.cost import CostModel, sampled_evaluation
from repro.difftree import initial_difftree
from repro.layout import Screen
from repro.mining import evaluate_mined, mine_interface
from repro.search import (
    MCTSConfig,
    beam_search,
    greedy_search,
    mcts_search,
    random_search,
)
from repro.workloads import listing1_queries

BUDGET_S = 5.0
SEED = 21


def test_strategies_on_sdss_log(benchmark, table_printer):
    queries = listing1_queries()
    initial = initial_difftree(queries)

    def run_all():
        results = {}
        results["mcts"] = mcts_search(
            CostModel(queries, Screen.wide()),
            initial,
            config=MCTSConfig(time_budget_s=BUDGET_S, seed=SEED),
        )
        results["random"] = random_search(
            CostModel(queries, Screen.wide()),
            initial,
            time_budget_s=BUDGET_S,
            seed=SEED,
        )
        results["greedy"] = greedy_search(
            CostModel(queries, Screen.wide()),
            initial,
            time_budget_s=BUDGET_S,
            restarts=2,
            seed=SEED,
        )
        results["beam"] = beam_search(
            CostModel(queries, Screen.wide()),
            initial,
            beam_width=6,
            max_depth=20,
            time_budget_s=BUDGET_S,
            seed=SEED,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    model = CostModel(queries, Screen.wide())
    mined = evaluate_mined(model, mine_interface(queries))
    initial_cost = sampled_evaluation(model, initial, k=5).cost

    rows = [("initial state (whole-query chooser)", f"{initial_cost:.2f}", "-", "-")]
    for name in ("mcts", "random", "greedy", "beam"):
        result = results[name]
        rows.append(
            (
                name,
                f"{result.best_cost:.2f}",
                result.stats.states_evaluated,
                f"{result.elapsed:.1f}s",
            )
        )
    mined_cost = (
        f"{mined.evaluation.cost:.2f}"
        if mined.evaluation.breakdown.feasible
        else f"inf (M={mined.evaluation.breakdown.m_cost:.1f})"
    )
    rows.append(
        (
            f"bottom-up miner (expr {mined.expressible_fraction:.0%})",
            mined_cost,
            "-",
            "<0.1s",
        )
    )
    table_printer(
        "T-CMP — final cost by strategy (Listing-1 log, equal budgets)",
        ["strategy", "best cost", "states evaluated", "elapsed"],
        rows,
    )

    mcts_cost = results["mcts"].best_cost
    # Shape: MCTS is at least as good as every naive baseline, and the
    # search-based interfaces beat the whole-query initial state.
    assert mcts_cost <= results["random"].best_cost + 1e-6
    assert mcts_cost <= results["greedy"].best_cost + 1e-6
    assert mcts_cost < initial_cost


def test_mcts_beats_miner_under_full_objective(benchmark, table_printer):
    queries = listing1_queries()
    model = CostModel(queries, Screen.wide())

    mined = benchmark.pedantic(
        lambda: evaluate_mined(model, mine_interface(queries)),
        rounds=1,
        iterations=1,
    )
    searched = mcts_search(
        CostModel(queries, Screen.wide()),
        initial_difftree(queries),
        config=MCTSConfig(time_budget_s=BUDGET_S, seed=SEED),
    )
    table_printer(
        "T-CMP — MCTS vs bottom-up miner",
        ["approach", "cost", "feasible", "expressible"],
        [
            (
                "MCTS (this paper)",
                f"{searched.best_cost:.2f}",
                searched.best.breakdown.feasible,
                "100%",
            ),
            (
                "Zhang et al. 2017 miner",
                f"{mined.evaluation.cost:.2f}",
                mined.evaluation.breakdown.feasible,
                f"{mined.expressible_fraction:.0%}",
            ),
        ],
    )
    if mined.evaluation.breakdown.feasible:
        assert searched.best_cost <= mined.evaluation.cost + 1e-6
