"""Shared benchmark helpers: table printing and common setups.

Each benchmark regenerates one artifact of the paper's evaluation
(EXPERIMENTS.md maps experiment ids to paper figures/tables).  Benches
print the same rows/series the paper reports; pytest-benchmark records
the wall-clock of the core operation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned results table (the bench's paper-style output)."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


class _Printer:
    """Table/text printer that bypasses pytest's output capture, so the
    paper-style result tables land in the terminal (and any tee'd log)
    even on passing runs."""

    def __init__(self, capsys) -> None:
        self._capsys = capsys

    def __call__(self, title, header, rows) -> None:
        with self._capsys.disabled():
            print_table(title, header, rows)

    def text(self, body: str) -> None:
        with self._capsys.disabled():
            print(body)


@pytest.fixture
def table_printer(capsys):
    return _Printer(capsys)
