"""BENCH-INC: incremental warm-started serving vs cold restarts.

The serving claim (ISSUE 1 / `repro.serve`, ISSUE 3 / `repro.engine`):
on a growing query log, extending the previous difftree and
warm-starting MCTS beats restarting the search from scratch at the same
per-step time budget, and an exact repeat of a served log is answered
from the interface cache without any search at all.

Both sides run through the session-oriented :class:`repro.engine.Engine`
API: the warm side is one long-lived session (`session.append()` +
`session.interface()`), the cold side a fresh engine per step (empty
cache, no warm-start state).

Unlike the other benches this is a standalone script (it is also the CI
smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --queries 20 --chunk 5 --budget 0.8 --json BENCH_incremental.json

The JSON artifact records per-step cold/warm cost and wall-clock so
future PRs can track the serving-performance trajectory.  With
``--strict`` the script exits non-zero unless warm's final cost is <=
cold's and the cache-repeat ran zero search iterations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List

from repro import Engine, GenerationConfig
from repro.engine import get_workload, workload_names
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> tuple:
    """Registered growing-log session generators (sdss, tpch, ...)."""
    return workload_names(tag="growing")


def run(
    num_queries: int,
    chunk: int,
    budget_s: float,
    seed: int,
    workload: str = "sdss",
) -> dict:
    """Grow the log chunk-by-chunk; generate warm and cold at each step."""
    log = get_workload(workload)(num_queries, seed=0)
    config = GenerationConfig(time_budget_s=budget_s, seed=seed)
    engine = Engine(config=config)
    session = engine.session("bench")

    steps: List[dict] = []
    warm = cold = None
    for start in range(0, num_queries, chunk):
        prefix = log[: start + chunk]
        session.append(*log[start : start + chunk])

        t0 = time.perf_counter()
        warm = session.interface()
        warm_s = time.perf_counter() - t0

        # Cold restart: a fresh engine has no cache entries and no
        # warm-start state to carry, so this is a from-scratch search.
        t0 = time.perf_counter()
        cold = Engine(config=config).generate(prefix)
        cold_s = time.perf_counter() - t0

        steps.append(
            {
                "log_size": len(prefix),
                "warm_cost": warm.cost,
                "warm_seconds": round(warm_s, 3),
                "warm_source": warm.source,
                "warm_iterations": warm.search.stats.iterations,
                "warm_states_seeded": warm.search.stats.warm_states_seeded,
                "cold_cost": cold.cost,
                "cold_seconds": round(cold_s, 3),
                "cold_iterations": cold.search.stats.iterations,
            }
        )

    # Exact repeat of the final log: must come from the cache, running
    # zero additional searches.
    searches_before = engine.searches_run
    t0 = time.perf_counter()
    repeat = session.interface()
    repeat_s = time.perf_counter() - t0
    cache_hit = (
        repeat.source == "cache"
        and repeat.result is warm.result
        and engine.searches_run == searches_before
    )

    return {
        "bench": "incremental",
        "api": "engine",
        "workload": workload,
        "queries": num_queries,
        "chunk": chunk,
        "budget_s": budget_s,
        "seed": seed,
        "steps": steps,
        "final_warm_cost": warm.cost,
        "final_cold_cost": cold.cost,
        "warm_beats_cold": warm.cost <= cold.cost + 1e-9,
        "cache_repeat": {
            "hit": cache_hit,
            "source": repeat.source,
            "seconds": round(repeat_s, 6),
            "new_searches": engine.searches_run - searches_before,
        },
        "cache_stats": engine.cache_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=20, help="total log size")
    parser.add_argument("--chunk", type=int, default=5, help="queries appended per step")
    parser.add_argument("--budget", type=float, default=0.8, help="per-step search budget (s)")
    parser.add_argument("--seed", type=int, default=0, help="search RNG seed")
    parser.add_argument(
        "--workload",
        choices=growing_workloads(),
        default="sdss",
        help="growing-log scenario (sdss range-drift or tpch analytic session)",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless warm <= cold and the cache repeat skipped search",
    )
    args = parser.parse_args(argv)
    if args.queries < 1 or args.chunk < 1 or args.budget <= 0:
        parser.error("--queries and --chunk must be >= 1, --budget > 0")

    result = run(args.queries, args.chunk, args.budget, args.seed, args.workload)

    header = f"{'log':>5}  {'warm cost':>10}  {'warm s':>7}  {'cold cost':>10}  {'cold s':>7}"
    print(
        f"\n=== BENCH-INC — warm-started incremental vs cold restart "
        f"[{args.workload}, engine API] ==="
    )
    print(header)
    print("-" * len(header))
    for step in result["steps"]:
        print(
            f"{step['log_size']:>5}  {step['warm_cost']:>10.2f}  {step['warm_seconds']:>7.2f}"
            f"  {step['cold_cost']:>10.2f}  {step['cold_seconds']:>7.2f}"
        )
    repeat = result["cache_repeat"]
    print(
        f"\nfinal: warm {result['final_warm_cost']:.2f} vs cold "
        f"{result['final_cold_cost']:.2f} -> "
        f"{'WARM <= COLD' if result['warm_beats_cold'] else 'COLD BETTER (!)'}"
    )
    print(
        f"cache repeat: {'HIT' if repeat['hit'] else 'MISS (!)'} in "
        f"{repeat['seconds'] * 1000:.1f} ms, {repeat['new_searches']} new searches"
    )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")

    if args.strict and not (result["warm_beats_cold"] and repeat["hit"]):
        print("STRICT: acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
