"""BENCH-OBS: the observability subsystem's overhead and replay gates.

The observability claim (PR 6): full tracing + metrics + durable JSONL
telemetry cost almost nothing when enabled and *nothing measurable* when
disabled — and instrumentation never changes what the engine computes.

Three gates, each checked per growing-log workload (sdss, tpch):

1. **Enabled overhead** — the same seed-fixed serving pipeline (append
   chunks to a session, serve an interface per chunk) runs with
   observability off and with it on (spans + metrics + JSONL sink).
   Min-of-repeats wall clock with tracing on must be within
   ``--overhead-tolerance`` (default 5%) of the disabled run.
2. **Parity** — both modes must deliver bit-for-bit identical results:
   same per-chunk interface costs, same final difftree canonical key.
3. **Replay** — every Engine verb (``generate``, ``session.interface``,
   ``generate_batch``, scheduler delivery) must emit exactly one JSONL
   ``report`` record whose payload equals ``report.to_dict()`` — the
   durable log replays the live envelopes.

Plus a **disabled micro-gate**: a ``with obs.trace(...)`` region while
disabled is one global check returning a shared no-op; its per-call cost
must stay under ``--noop-budget-us`` (default 2 microseconds).

The enabled runs append their telemetry to ``TELEMETRY_<workload>.jsonl``
(CI uploads these as artifacts — the training substrate for the
ROADMAP's adaptive search controller).

Standalone script (CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --queries 8 --iterations 24 --repeats 3 \
        --json BENCH_obs.json --strict

With ``--strict`` the script exits non-zero unless every gate holds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import Engine, GenerationConfig, obs
from repro.engine import get_workload
import repro.workloads  # noqa: F401  (registers the built-in workloads)

WORKLOADS = ("sdss", "tpch")


def chunked(queries: List[str], size: int) -> List[Tuple[str, ...]]:
    return [tuple(queries[i : i + size]) for i in range(0, len(queries), size)]


def serve_session(
    chunks: List[Tuple[str, ...]], config: GenerationConfig, session_id: str
) -> Tuple[float, List, object]:
    """One serving pipeline pass: append each chunk, serve each interface.

    Returns (elapsed_s, reports, final_report).  A fresh Engine per pass:
    both modes pay the same cold interface cache; the global memo tables
    are warmed identically by the warmup pass.
    """
    engine = Engine(config=config)
    session = engine.session(session_id)
    reports = []
    t0 = time.perf_counter()
    for chunk in chunks:
        session.append(*chunk)
        reports.append(session.interface())
    elapsed = time.perf_counter() - t0
    return elapsed, reports, reports[-1]


def timed_modes(
    chunks: List[Tuple[str, ...]],
    config: GenerationConfig,
    workload: str,
    repeats: int,
    telemetry: Optional[str],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Min-of-repeats timing of both modes, interleaved per repeat.

    Alternating disabled/enabled passes within each repeat keeps slow
    machine-level drift (thermal, noisy CI neighbours) from loading onto
    one mode; the min filters the remaining one-sided noise.

    Returns ``(disabled, enabled)`` summaries.
    """
    summaries = {}
    for enabled in (False, True):
        summaries[enabled] = {"elapsed_s": None, "reports": None}
    ratios = []
    for _ in range(repeats):
        pair = {}
        for enabled in (False, True):
            session_id = f"{workload}-{'on' if enabled else 'off'}"
            if enabled:
                with obs.observed(True, telemetry=telemetry):
                    elapsed, reports, _ = serve_session(chunks, config, session_id)
            else:
                elapsed, reports, _ = serve_session(chunks, config, session_id)
            pair[enabled] = elapsed
            summary = summaries[enabled]
            if summary["elapsed_s"] is None or elapsed < summary["elapsed_s"]:
                summary["elapsed_s"] = elapsed
            summary["reports"] = reports
        ratios.append(pair[True] / pair[False])
    for summary in summaries.values():
        reports = summary["reports"]
        summary["costs"] = [r.cost for r in reports]
        summary["final_key"] = reports[-1].difftree.canonical_key
    # The gated overhead estimate: min of the per-repeat pairwise ratios.
    # Each pair runs back-to-back so slow drift cancels within it; the
    # min over repeats filters the residual one-sided noise, giving a
    # stable upper bound on the instrumentation's real cost (a run where
    # every pair exceeds the tolerance is a genuine regression).
    summaries[True]["overhead"] = min(ratios) - 1.0
    return summaries[False], summaries[True]


def replayable(record_report: Dict, report) -> bool:
    """Does the JSONL record's payload replay the live envelope exactly?"""
    live = json.loads(json.dumps(report.to_dict(), sort_keys=True))
    return record_report == live


def check_verb_replay(
    workload: str, queries: List[str], config: GenerationConfig, path: str
) -> Dict[str, bool]:
    """Every Engine verb emits one replayable ``report`` JSONL record."""
    sink = obs.TelemetryLog(path, flush_every=1)
    produced = []  # (verb, report) in emission order
    with obs.observed(True, telemetry=sink):
        engine = Engine(config=config)
        produced.append(("generate", engine.generate(queries)))
        produced.append(("generate", engine.generate(queries)))  # cache hit
        session = engine.session(f"{workload}-verbs")
        session.append(*queries)
        produced.append(("session.interface", session.interface()))
        produced.append(
            ("generate_batch", engine.generate_batch([queries], executor="serial")[0])
        )
        scheduler = engine.scheduler(slice_iterations=4)
        scheduler.submit(f"{workload}-sched", [tuple(queries[:2])])
        (ticket,) = scheduler.run()
        produced.append(("scheduler", ticket.reports[0]))
        sink.flush()
        # The artifact file also holds the timed pipeline's records; the
        # verb records are the tail this block just appended.
        records = obs.read_telemetry(path, record_type="report")[-len(produced) :]
    ok_count = len(records) == len(produced)
    ok_verbs = ok_count and all(
        rec["verb"] == verb for rec, (verb, _) in zip(records, produced)
    )
    ok_payloads = ok_count and all(
        replayable(rec["report"], report)
        for rec, (_, report) in zip(records, produced)
    )
    return {
        "records": len(records),
        "expected": len(produced),
        "verbs_ok": ok_verbs,
        "payloads_ok": ok_payloads,
    }


def noop_trace_cost_us(calls: int) -> float:
    """Per-call cost (microseconds) of a disabled ``with trace(...)``."""
    obs.configure(enabled=False)
    trace = obs.trace
    t0 = time.perf_counter()
    for _ in range(calls):
        with trace("bench.noop"):
            pass
    return (time.perf_counter() - t0) / calls * 1e6


def run_workload(
    workload: str,
    queries: int,
    chunk_size: int,
    iterations: int,
    repeats: int,
    seed: int,
    telemetry_dir: str,
) -> Dict[str, object]:
    config = GenerationConfig(
        time_budget_s=0.0, max_iterations=iterations, seed=seed, final_cap=200
    )
    log = get_workload(workload)(queries, seed=seed)
    chunks = chunked(log, chunk_size)
    telemetry_path = os.path.join(telemetry_dir, f"TELEMETRY_{workload}.jsonl")
    if os.path.exists(telemetry_path):
        os.remove(telemetry_path)

    # Warm the global memo tables once so neither timed mode pays the
    # process-wide cold start the other skipped.
    serve_session(chunks, config, f"{workload}-warmup")
    obs.reset_metrics()

    disabled, enabled = timed_modes(
        chunks, config, workload, repeats, telemetry=telemetry_path
    )
    snap = obs.snapshot()

    # The pipeline's own replay check: the file's last pass recorded one
    # report per chunk, each equal to the delivered envelope.
    records = obs.read_telemetry(telemetry_path, record_type="report")
    tail = records[-len(chunks) :]
    pipeline_replay_ok = len(tail) == len(chunks) and all(
        replayable(rec["report"], report)
        for rec, report in zip(tail, enabled["reports"])
    )

    verb_replay = check_verb_replay(workload, log, config, telemetry_path)
    overhead = enabled["overhead"]
    return {
        "workload": workload,
        "chunks": len(chunks),
        "disabled_s": disabled["elapsed_s"],
        "enabled_s": enabled["elapsed_s"],
        "overhead": overhead,
        "cost_parity": enabled["costs"] == disabled["costs"],
        "tree_parity": enabled["final_key"] == disabled["final_key"],
        "pipeline_replay_ok": pipeline_replay_ok,
        "verb_replay": verb_replay,
        "telemetry_path": telemetry_path,
        "metrics_sample": {
            "search.runs": snap.get("search.runs", 0),
            "search.iterations": snap.get("search.iterations", 0),
            "span.serve.open_search.count": snap.get(
                "span.serve.open_search.count", 0
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--queries", type=int, default=8,
        help="session queries per workload (chunked into the script)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2,
        help="queries appended per serve step",
    )
    parser.add_argument(
        "--iterations", type=int, default=24,
        help="search iterations per serve (seed-fixed, no wall-clock stop)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per mode (min taken)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/search seed")
    parser.add_argument(
        "--overhead-tolerance", type=float, default=0.05,
        help="max allowed enabled-mode slowdown (0.05 = 5%%)",
    )
    parser.add_argument(
        "--noop-budget-us", type=float, default=2.0,
        help="max allowed per-call cost of a disabled trace (microseconds)",
    )
    parser.add_argument(
        "--noop-calls", type=int, default=200_000,
        help="disabled-trace calls in the micro-gate",
    )
    parser.add_argument(
        "--telemetry-dir", default=".",
        help="where TELEMETRY_<workload>.jsonl artifacts are written",
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, action="append",
        help="workload(s) to run; default: sdss and tpch",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless every overhead/parity/replay gate holds",
    )
    args = parser.parse_args(argv)
    if min(args.queries, args.chunk_size, args.iterations, args.repeats) < 1:
        parser.error("--queries/--chunk-size/--iterations/--repeats must be >= 1")

    prior = obs.configure()  # snapshot to restore on exit
    results = []
    try:
        for workload in args.workload or list(WORKLOADS):
            results.append(
                run_workload(
                    workload,
                    args.queries,
                    args.chunk_size,
                    args.iterations,
                    args.repeats,
                    args.seed,
                    args.telemetry_dir,
                )
            )
        noop_us = noop_trace_cost_us(args.noop_calls)
    finally:
        obs.configure(enabled=prior["enabled"], telemetry=prior["telemetry"])

    print(
        f"\n=== BENCH-OBS — observability overhead & replay, "
        f"{args.queries} queries x {args.iterations} iterations ==="
    )
    header = (
        f"{'workload':>10}  {'off s':>8}  {'on s':>8}  {'overhead':>8}  "
        f"{'cost':>5}  {'tree':>5}  {'replay':>6}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        replay_ok = (
            r["pipeline_replay_ok"]
            and r["verb_replay"]["verbs_ok"]
            and r["verb_replay"]["payloads_ok"]
        )
        print(
            f"{r['workload']:>10}  {r['disabled_s']:>8.3f}  {r['enabled_s']:>8.3f}  "
            f"{r['overhead']:>+7.1%}  "
            f"{'OK' if r['cost_parity'] else 'FAIL':>5}  "
            f"{'OK' if r['tree_parity'] else 'FAIL':>5}  "
            f"{'OK' if replay_ok else 'FAIL':>6}"
        )
    print(
        f"disabled trace(): {noop_us:.3f} us/call "
        f"(budget {args.noop_budget_us:.1f} us)"
    )

    payload = {
        "bench": "obs",
        "api": "repro.obs (trace/metrics/telemetry) over Engine verbs",
        "overhead_tolerance": args.overhead_tolerance,
        "noop_trace_us": noop_us,
        "noop_budget_us": args.noop_budget_us,
        "results": [
            {k: v for k, v in r.items() if k != "reports"} for r in results
        ],
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if args.strict:
        failures = []
        for r in results:
            if r["overhead"] > args.overhead_tolerance:
                failures.append(f"{r['workload']}: overhead {r['overhead']:+.1%}")
            if not r["cost_parity"] or not r["tree_parity"]:
                failures.append(f"{r['workload']}: enabled/disabled parity broken")
            if not r["pipeline_replay_ok"]:
                failures.append(f"{r['workload']}: pipeline telemetry not replayable")
            if not (r["verb_replay"]["verbs_ok"] and r["verb_replay"]["payloads_ok"]):
                failures.append(f"{r['workload']}: verb replay records wrong")
        if noop_us > args.noop_budget_us:
            failures.append(
                f"disabled trace() costs {noop_us:.3f} us/call "
                f"(> {args.noop_budget_us} us)"
            )
        if failures:
            print("STRICT: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
