"""BENCH-COLUMNAR: array-encoded structural kernels vs the object-walk reference.

The columnar claim (ISSUE 7): with trees encoded once as parallel int
arrays (pre/size/level/parent + interned head and graft-key columns —
see ``repro.difftree.columnar``), the hot structural kernels stop
walking Python object graphs: anti-unify/graft pair-matching becomes int
compares over columns with objects materialized only at merge points,
and canonical keys hash the whole tree in one bottom-up sweep that
digests each distinct subtree once.

Three configurations run the same operation streams:

* ``reference`` — memo and columnar gates off: the pure object-walk
  oracles (``anti_unify_reference`` / ``graft_reference`` /
  ``canonical_key_reference``), recomputing everything per call.
* ``memo_only`` — fast paths on, columnar off (the PR-5 production path).
* ``columnar`` — fast paths + columnar on (the production path).

Results must be interchangeable: identical result trees (canonical
keys) on every operation, and an identical seed-fixed interface cost
with columnar on and off.

Standalone script (CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_columnar.py \
        --distinct 14 --repeat-ops 30 --json BENCH_columnar.json --strict

With ``--strict`` the script exits non-zero unless, for every workload:
the columnar configuration is >= 3x the reference on the anti-unify,
graft, and canonical-key microbenches, every tree key matches across
configurations, and the seed-fixed costs match exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Sequence

from repro import Engine, GenerationConfig, memo
from repro.difftree import (
    ColumnarTree,
    anti_unify,
    anti_unify_reference,
    canonical_key_reference,
    graft,
    graft_reference,
    initial_difftree,
    wrap_ast,
)
from repro.difftree.columnar import STATS, Topology
from repro.engine import get_workload, workload_names
from repro.layout import Screen
from repro.sqlast import parse
import repro.workloads  # noqa: F401  (registers the built-in workloads)

#: Gate configurations: name -> (fast_paths, columnar).
CONFIGS = (
    ("reference", False, False),
    ("memo_only", True, False),
    ("columnar", True, True),
)


def bench_workloads() -> List[str]:
    """Growing-log generators plus the synthetic paired-query scenario."""
    return list(workload_names(tag="growing")) + ["synthetic"]


def workload_queries(workload: str, distinct: int, seed: int) -> List[str]:
    if workload != "synthetic":
        return get_workload(workload)(distinct, seed=seed)
    # Synthetic: template families with drifting literals and clause
    # sets, exercising deep grafts and OPT columns without the SDSS/TPCH
    # value palettes.
    queries = []
    for i in range(distinct):
        family = i % 3
        if family == 0:
            queries.append(
                f"SELECT c{i % 4}, c{(i + 1) % 4} FROM t{i % 2} "
                f"WHERE c{i % 4} < {10 + i} AND c{(i + 1) % 4} > {seed + i}"
            )
        elif family == 1:
            queries.append(
                f"SELECT TOP {5 + i} c0 FROM t{i % 2} "
                f"WHERE c1 BETWEEN {i} AND {i + 10} ORDER BY c0"
            )
        else:
            queries.append(
                f"SELECT COUNT(c2) FROM t{i % 2} "
                f"WHERE c3 IN ({i}, {i + 1}, {i + 2}) GROUP BY c2"
            )
    return queries


def timed(op: Callable[[], object], repeats: int) -> Dict[str, object]:
    """Run ``op`` ``repeats`` times cold-started; return timing + result."""
    memo.clear_memo_caches()
    result = None
    t0 = time.perf_counter()
    for _ in range(repeats):
        result = op()
    elapsed = time.perf_counter() - t0
    return {"elapsed_s": elapsed, "result": result}


def au_stream(trees: Sequence, reference: bool):
    """Pairwise anti-unify over consecutive distinct queries."""
    au = anti_unify_reference if reference else anti_unify

    def op():
        keys = []
        for a, b in zip(trees, trees[1:]):
            keys.append(au(a, b).canonical_key)
        return keys

    return op


def graft_stream(start, trees: Sequence, reference: bool):
    """Evolve a session tree by grafting each query in turn."""
    do_graft = graft_reference if reference else graft

    def op():
        tree = start
        for query in trees[1:]:
            tree = do_graft(tree, query)
        return tree.canonical_key

    return op


def key_stream(targets: Sequence, reference: bool, use_cache: bool = True):
    """Canonical-key every target tree bottom-up vs by recursion."""

    def op():
        if reference:
            return [canonical_key_reference(t) for t in targets]
        return [
            ColumnarTree.from_node(t).canonical_keys(use_cache=use_cache)[0]
            for t in targets
        ]

    return op


def run_micro(
    name: str, make_op: Callable[[bool], Callable[[], object]], repeats: int
) -> Dict[str, object]:
    """One microbench across the three gate configurations."""
    rows: Dict[str, Dict[str, object]] = {}
    results = {}
    for config, fast, columnar in CONFIGS:
        with memo.fast_paths(fast), memo.columnar(columnar):
            timing = timed(make_op(config == "reference"), repeats)
        results[config] = timing.pop("result")
        timing["ops_per_s"] = (
            repeats / timing["elapsed_s"] if timing["elapsed_s"] > 0 else float("inf")
        )
        rows[config] = {k: round(v, 6) for k, v in timing.items()}
    reference_elapsed = rows["reference"]["elapsed_s"]
    for config in rows:
        elapsed = rows[config]["elapsed_s"]
        rows[config]["speedup"] = (
            round(reference_elapsed / elapsed, 2) if elapsed > 0 else float("inf")
        )
    parity = all(results[c] == results["reference"] for c, _, _ in CONFIGS)
    return {"bench": name, "parity": parity, "configs": rows}


def run_steiner(trees: Sequence, repeats: int, seed: int) -> Dict[str, object]:
    """Topology (binary-lifting LCA) vs parent-chain walks — exactness + timing.

    Reported for visibility; the strict gate covers the three kernel
    microbenches (this precompute is a small slice of kernel compile).
    """
    import random

    encoded = [ColumnarTree.from_node(t) for t in trees]
    rng = random.Random(seed)
    parents: List[List[int]] = [ct.parent for ct in encoded]
    depths: List[List[int]] = [ct.level for ct in encoded]
    # One deep synthetic topology rides along: interface trees are
    # shallow (lifting is a wash there), a spine-heavy tree shows the
    # O(log) vs O(depth) separation the kernel inherits for free.
    deep_parent = list(range(-1, 1499))  # pure spine: depth = index
    deep_depth = [0] * len(deep_parent)
    for i in range(1, len(deep_parent)):
        deep_depth[i] = deep_depth[deep_parent[i]] + 1
    parents.append(deep_parent)
    depths.append(deep_depth)
    query_sets = []
    for parent in parents:
        query_sets.append(
            [
                tuple(rng.randrange(len(parent)) for _ in range(rng.randint(2, 6)))
                for _ in range(256)
            ]
        )

    def naive_steiner(parent: List[int], depth: List[int], touched) -> int:
        def dist(a: int, b: int) -> int:
            da, db, d = depth[a], depth[b], 0
            while da > db:
                a, da, d = parent[a], da - 1, d + 1
            while db > da:
                b, db, d = parent[b], db - 1, d + 1
            while a != b:
                a, b, d = parent[a], parent[b], d + 2
            return d

        order = sorted(touched)
        total = sum(dist(x, y) for x, y in zip(order, order[1:]))
        total += dist(order[-1], order[0])
        return total // 2 + 1

    t0 = time.perf_counter()
    naive: List[int] = []
    for _ in range(repeats):
        naive = [
            naive_steiner(parent, depth, touched)
            for parent, depth, sets in zip(parents, depths, query_sets)
            for touched in sets
        ]
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    lifted: List[int] = []
    for _ in range(repeats):
        topos = [Topology(parent) for parent in parents]
        lifted = [
            topo.steiner_size(touched)
            for topo, sets in zip(topos, query_sets)
            for touched in sets
        ]
    lifted_s = time.perf_counter() - t0

    return {
        "bench": "steiner",
        "queries": sum(len(s) for s in query_sets),
        "parity": naive == lifted,
        "naive_s": round(naive_s, 6),
        "topology_s": round(lifted_s, 6),
        "speedup": round(naive_s / lifted_s, 2) if lifted_s > 0 else float("inf"),
    }


def seed_fixed_costs(
    log: List[str], iterations: int, seed: int
) -> Dict[str, float]:
    """Seed-fixed interface cost per gate configuration (must be identical)."""
    screen = Screen.wide()
    config = GenerationConfig(
        time_budget_s=0.0, max_iterations=iterations, seed=seed, final_cap=200
    )
    costs = {}
    for name, fast, columnar in CONFIGS:
        with memo.fast_paths(fast), memo.columnar(columnar):
            memo.clear_memo_caches()
            costs[name] = Engine(screen=screen, config=config).generate(log).cost
    return costs


def run(workload: str, distinct: int, repeats: int, iterations: int, seed: int) -> dict:
    queries = workload_queries(workload, distinct, seed)
    asts = [parse(q) for q in queries]
    trees = [wrap_ast(a) for a in asts]
    # Key-bench targets: the evolving session trees (merged difftrees
    # with real internal sharing), not the raw per-query wraps.
    session = initial_difftree([asts[0]])
    targets = [session]
    for tree in trees[1:]:
        session = graft(session, tree)
        targets.append(session)

    start = initial_difftree([asts[0]])
    micro = [
        run_micro("anti_unify", lambda ref: au_stream(trees, ref), repeats),
        run_micro("graft", lambda ref: graft_stream(start, trees, ref), repeats),
        run_micro("canonical_key", lambda ref: key_stream(targets, ref), repeats),
    ]
    # Cache-free columnar keying (same digests, no ``_key`` reuse):
    # reported so the batch sweep's own win is visible next to the
    # production (cached) number.
    nocache = run_micro(
        "canonical_key_nocache",
        lambda ref: key_stream(targets, ref, use_cache=False),
        repeats,
    )
    steiner = run_steiner(targets, max(1, repeats // 10), seed)
    costs = seed_fixed_costs(queries, iterations, seed)

    return {
        "workload": workload,
        "distinct": distinct,
        "repeat_ops": repeats,
        "seed": seed,
        "micro": micro,
        "extra": [nocache, steiner],
        "costs": {k: round(v, 6) for k, v in costs.items()},
        "cost_parity": len(set(costs.values())) == 1,
        "columnar_stats": STATS.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--distinct", type=int, default=14,
        help="distinct session queries per workload",
    )
    parser.add_argument(
        "--repeat-ops", type=int, default=30,
        help="repetitions of each operation stream per configuration",
    )
    parser.add_argument(
        "--iterations", type=int, default=6,
        help="search iterations for the seed-fixed cost check",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/search seed")
    parser.add_argument(
        "--workload",
        choices=bench_workloads(),
        action="append",
        help="scenario(s); default: all",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless columnar >= 3x reference with full parity",
    )
    args = parser.parse_args(argv)
    if min(args.distinct, args.repeat_ops, args.iterations) < 1:
        parser.error("--distinct/--repeat-ops/--iterations must be >= 1")
    workloads = args.workload or bench_workloads()

    results = [
        run(w, args.distinct, args.repeat_ops, args.iterations, args.seed)
        for w in workloads
    ]

    print(
        f"\n=== BENCH-COLUMNAR — array kernels vs object walks, "
        f"{args.distinct} distinct x {args.repeat_ops} reps ==="
    )
    header = (
        f"{'workload':>10}  {'bench':>22}  {'ref s':>9}  {'memo s':>9}  "
        f"{'col s':>9}  {'col speedup':>11}  {'parity':>6}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        for row in result["micro"] + result["extra"][:1]:
            configs = row["configs"]
            print(
                f"{result['workload']:>10}  {row['bench']:>22}  "
                f"{configs['reference']['elapsed_s']:>9.4f}  "
                f"{configs['memo_only']['elapsed_s']:>9.4f}  "
                f"{configs['columnar']['elapsed_s']:>9.4f}  "
                f"{configs['columnar']['speedup']:>10.1f}x  "
                f"{'OK' if row['parity'] else 'FAIL':>6}"
            )
        steiner = result["extra"][1]
        print(
            f"{result['workload']:>10}  {'steiner (ungated)':>22}  "
            f"{steiner['naive_s']:>9.4f}  {'-':>9}  {steiner['topology_s']:>9.4f}  "
            f"{steiner['speedup']:>10.1f}x  "
            f"{'OK' if steiner['parity'] else 'FAIL':>6}"
        )
        print(
            f"{'':>10}  {'seed-fixed cost':>22}  "
            f"{'identical' if result['cost_parity'] else 'DIVERGED':>31}"
        )

    payload = {
        "bench": "columnar",
        "api": "difftree.ColumnarTree + columnar.au_nodes/graft_nodes + Topology",
        "results": results,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if args.strict:
        failed = []
        for result in results:
            for row in result["micro"]:
                speedup = row["configs"]["columnar"]["speedup"]
                if not row["parity"] or speedup < 3.0:
                    failed.append(f"{result['workload']}:{row['bench']}")
            if not result["cost_parity"]:
                failed.append(f"{result['workload']}:cost")
            if not result["extra"][1]["parity"]:
                failed.append(f"{result['workload']}:steiner")
        if failed:
            print(
                f"STRICT: acceptance criteria not met for {failed} "
                f"(need parity and >= 3x columnar speedup on every microbench)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
