"""BENCH-INGEST: hash-consed ingestion vs the un-interned reference path.

The ingest claim (ISSUE 5 / structural interning): real session logs are
highly repetitive — mostly template-equal queries differing in literals —
so ingestion cost should track *distinct structure*, not raw log length.
With hash-consed AST/difftree nodes, memoized ``parse`` / ``wrap_ast`` /
``expresses`` / ``anti_unify`` / ``graft``, and fingerprint-based cache
keys, re-ingesting a repeated query is a handful of dict lookups instead
of a parse + tree rebuild + matcher run + full-log re-key.

Both sides run the same per-append serving pipeline — append to a
:class:`LogStream`, extend the difftree, recompute the interface-cache
key — once with the memo fast paths enabled and once with them disabled
(:func:`repro.memo.fast_paths`), which recomputes everything from
scratch the way the pre-interning code did.  Results must be bit-for-bit
identical: same final difftree canonical key, and identical interface
cost from a seed-fixed search over the ingested log in both modes.

Standalone script (CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_ingest.py \
        --distinct 12 --repeat 25 --iterations 8 \
        --json BENCH_ingest.json --strict

With ``--strict`` the script exits non-zero unless, for every workload:
fast-path ingest throughput >= 5x the reference path, the final difftree
canonical keys match, and the seed-fixed interface costs match exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro import Engine, GenerationConfig
from repro import memo
from repro.difftree import extend_difftree, initial_difftree
from repro.engine import get_workload, workload_names
from repro.layout import Screen
from repro.serve import InterfaceCache, LogStream
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> tuple:
    """Registered growing-log session generators (sdss, tpch, ...)."""
    return workload_names(tag="growing")


def repetitive_log(workload: str, distinct: int, repeat: int, seed: int) -> List[str]:
    """A growing log that revisits ``distinct`` session queries ``repeat`` times.

    The session generators already revisit a small palette of values;
    cycling the generated block models the analyst re-running their
    recent history — the dominant pattern hash-consed ingestion targets.
    """
    base = get_workload(workload)(distinct, seed=seed)
    log: List[str] = []
    for _ in range(repeat):
        log.extend(base)
    return log


def ingest(
    log: List[str], screen: Screen, config: GenerationConfig, fast: bool
) -> Dict[str, object]:
    """Run the per-append serving ingest pipeline in one memo mode.

    Each append does exactly what a serving session does per query:
    ingest the text (parse/dedup tiers), extend the difftree to express
    it, and recompute the interface-cache key of the grown log.
    """
    with memo.fast_paths(fast):
        memo.clear_memo_caches()  # both modes start cold
        stream = LogStream()
        asts = []
        tree = None
        t0 = time.perf_counter()
        for sql in log:
            stream.append(sql)
            ast = stream.ast(-1)
            asts.append(ast)
            if tree is None:
                tree = initial_difftree([ast])
            else:
                tree = extend_difftree(tree, [ast])
            key = InterfaceCache.key_for(asts, screen, config)
        elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": elapsed,
        "qps": len(log) / elapsed if elapsed > 0 else float("inf"),
        "tree_key": tree.canonical_key,
        "cache_key": key,
        "parses": stream.parses,
        "parse_hits": stream.parse_hits,
    }


def interface_cost(
    log: List[str], screen: Screen, config: GenerationConfig, fast: bool
) -> float:
    """Seed-fixed interface cost over the ingested log in one memo mode."""
    with memo.fast_paths(fast):
        memo.clear_memo_caches()
        engine = Engine(screen=screen, config=config)
        return engine.generate(log).cost


def run(
    workload: str,
    distinct: int,
    repeat: int,
    iterations: int,
    final_cap: int,
    seed: int,
) -> dict:
    """Compare fast-path vs reference ingestion on one workload."""
    screen = Screen.wide()
    config = GenerationConfig(
        time_budget_s=0.0,  # iteration-capped: equal work, deterministic
        max_iterations=iterations,
        seed=seed,
        final_cap=final_cap,
    )
    log = repetitive_log(workload, distinct, repeat, seed)

    counters_before = memo.INGEST.snapshot()
    reference = ingest(log, screen, config, fast=False)
    fast = ingest(log, screen, config, fast=True)
    counters_after = memo.INGEST.snapshot()

    cost_ref = interface_cost(log, screen, config, fast=False)
    cost_fast = interface_cost(log, screen, config, fast=True)

    speedup = fast["qps"] / reference["qps"] if reference["qps"] > 0 else None
    return {
        "workload": workload,
        "appends": len(log),
        "distinct": distinct,
        "repeat": repeat,
        "iterations": iterations,
        "final_cap": final_cap,
        "seed": seed,
        "reference": {k: round(v, 4) if isinstance(v, float) else v
                      for k, v in reference.items()},
        "fast": {k: round(v, 4) if isinstance(v, float) else v
                 for k, v in fast.items()},
        "speedup": round(speedup, 2) if speedup is not None else None,
        "tree_parity": fast["tree_key"] == reference["tree_key"],
        "cost_reference": round(cost_ref, 6),
        "cost_fast": round(cost_fast, 6),
        "cost_parity": cost_ref == cost_fast,
        "ingest_counters": {
            key: counters_after[key] - counters_before[key]
            for key in counters_after
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--distinct", type=int, default=12,
        help="distinct session queries per workload (before repetition)",
    )
    parser.add_argument(
        "--repeat", type=int, default=25,
        help="how many times the session block repeats in the growing log",
    )
    parser.add_argument(
        "--iterations", type=int, default=8,
        help="search iterations for the cost-parity check",
    )
    parser.add_argument(
        "--final-cap", type=int, default=200,
        help="widget-enumeration cap of the final phase (parity check)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/search seed")
    parser.add_argument(
        "--workload",
        choices=growing_workloads(),
        action="append",
        help="growing-log scenario(s); default: all registered",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless speedup >= 5x with tree and cost parity",
    )
    args = parser.parse_args(argv)
    if min(args.distinct, args.repeat, args.iterations) < 1:
        parser.error("--distinct/--repeat/--iterations must be >= 1")
    workloads = args.workload or list(growing_workloads())

    results = []
    for workload in workloads:
        results.append(
            run(
                workload,
                args.distinct,
                args.repeat,
                args.iterations,
                args.final_cap,
                args.seed,
            )
        )

    print(
        f"\n=== BENCH-INGEST — hash-consed vs reference ingestion, "
        f"{args.distinct} distinct x {args.repeat} repeats ==="
    )
    header = (
        f"{'workload':>10}  {'appends':>7}  {'ref q/s':>9}  {'fast q/s':>9}  "
        f"{'speedup':>8}  {'tree':>5}  {'cost':>5}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result['workload']:>10}  {result['appends']:>7}  "
            f"{result['reference']['qps']:>9.0f}  {result['fast']['qps']:>9.0f}  "
            f"{result['speedup']:>7.1f}x  "
            f"{'OK' if result['tree_parity'] else 'FAIL':>5}  "
            f"{'OK' if result['cost_parity'] else 'FAIL':>5}"
        )

    payload = {
        "bench": "ingest",
        "api": "serve.LogStream + difftree.extend_difftree + InterfaceCache.key_for",
        "results": results,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if args.strict:
        failed = [
            r["workload"]
            for r in results
            if not r["tree_parity"]
            or not r["cost_parity"]
            or r["speedup"] is None
            or r["speedup"] < 5.0
        ]
        if failed:
            print(
                f"STRICT: acceptance criteria not met for {failed} "
                f"(need tree+cost parity and >= 5x ingest throughput)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
