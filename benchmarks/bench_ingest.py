"""BENCH-INGEST: hash-consed ingestion vs the un-interned reference path.

The ingest claim (ISSUE 5 / structural interning): real session logs are
highly repetitive — mostly template-equal queries differing in literals —
so ingestion cost should track *distinct structure*, not raw log length.
With hash-consed AST/difftree nodes, memoized ``parse`` / ``wrap_ast`` /
``expresses`` / ``anti_unify`` / ``graft``, and fingerprint-based cache
keys, re-ingesting a repeated query is a handful of dict lookups instead
of a parse + tree rebuild + matcher run + full-log re-key.

Both sides run the same per-append serving pipeline — append to a
:class:`LogStream`, extend the difftree, recompute the interface-cache
key — once with the memo fast paths enabled and once with them disabled
(:func:`repro.memo.fast_paths`), which recomputes everything from
scratch the way the pre-interning code did.  Results must be bit-for-bit
identical: same final difftree canonical key, and identical interface
cost from a seed-fixed search over the ingested log in both modes.

Standalone script (CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_ingest.py \
        --distinct 12 --repeat 25 --iterations 8 \
        --json BENCH_ingest.json --strict

With ``--strict`` the script exits non-zero unless, for every workload:
fast-path ingest throughput >= 5x the reference path, the final difftree
canonical keys match, the seed-fixed interface costs match exactly, the
two cache-key derivations agree across modes (their divergence from
*each other* is asserted as the expected split), and the anti-unify/
graft memo tables are demonstrably consulted (direct probe + warm
re-ingest hits).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro import Engine, GenerationConfig
from repro import memo
from repro.difftree import anti_unify, extend_difftree, graft, initial_difftree, wrap_ast
from repro.engine import get_workload, workload_names
from repro.layout import Screen
from repro.serve import LogStream
from repro.serve.cache import context_key, log_key_fast, log_key_reference
from repro.sqlast import parse
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> tuple:
    """Registered growing-log session generators (sdss, tpch, ...)."""
    return workload_names(tag="growing")


def repetitive_log(workload: str, distinct: int, repeat: int, seed: int) -> List[str]:
    """A growing log that revisits ``distinct`` session queries ``repeat`` times.

    The session generators already revisit a small palette of values;
    cycling the generated block models the analyst re-running their
    recent history — the dominant pattern hash-consed ingestion targets.
    """
    base = get_workload(workload)(distinct, seed=seed)
    log: List[str] = []
    for _ in range(repeat):
        log.extend(base)
    return log


def ingest(
    log: List[str],
    screen: Screen,
    config: GenerationConfig,
    fast: bool,
    cold: bool = True,
) -> Dict[str, object]:
    """Run the per-append serving ingest pipeline in one memo mode.

    Each append does exactly what a serving session does per query:
    ingest the text (parse/dedup tiers), extend the difftree to express
    it, and recompute the interface-cache key of the grown log — via the
    stream's incrementally maintained :meth:`LogStream.log_key`, the
    same path ``IncrementalGenerator.open_search`` probes.

    ``cold=False`` keeps the process-wide memo tables warm (a *second*
    session re-ingesting a familiar log — the scenario the anti-unify/
    graft memo tables serve, since within one session the evolving tree
    never repeats a ``(tree, query)`` pair).

    Besides the mode's own ``cache_key``, both key derivations are
    reported explicitly: the fast set-fingerprint (``log_key_fast``) and
    the historical initial-difftree key (``log_key_reference``).  Each
    derivation is mode-independent; the two derivations differ from each
    other by construction — ``run()`` asserts exactly that split, which
    is the cross-mode ``cache_key`` prefix divergence visible in
    BENCH_ingest.json.
    """
    counters_before = memo.INGEST.snapshot()
    with memo.fast_paths(fast):
        if cold:
            memo.clear_memo_caches()
        stream = LogStream()
        ctx = context_key(screen, config)
        tree = None
        t0 = time.perf_counter()
        for sql in log:
            stream.append(sql)
            ast = stream.ast(-1)
            if tree is None:
                tree = initial_difftree([ast])
            else:
                tree = extend_difftree(tree, [ast])
            key = f"{stream.log_key()}:{ctx}"
        elapsed = time.perf_counter() - t0
        counters = memo.INGEST.snapshot()
        fast_key = log_key_fast(stream.query_keys())
        reference_key = log_key_reference(stream.asts())
    return {
        "elapsed_s": elapsed,
        "qps": len(log) / elapsed if elapsed > 0 else float("inf"),
        "tree_key": tree.canonical_key,
        "cache_key": key,
        "log_key_fast": fast_key,
        "log_key_reference": reference_key,
        "parses": stream.parses,
        "parse_hits": stream.parse_hits,
        "counters": {k: counters[k] - counters_before[k] for k in counters},
    }


def memo_probe() -> Dict[str, bool]:
    """Deterministic wiring check: are the au/graft memo tables consulted?

    Within one ingest run the evolving tree never repeats a ``(tree,
    query)`` pair, so zero graft hits there is expected — this probe
    exercises the tables directly: the second identical call must be
    served from the memo (counter attribution included).
    """
    a = wrap_ast(parse("SELECT c0 FROM t0 WHERE c1 < 1"))
    b = wrap_ast(parse("SELECT c0, c2 FROM t0 WHERE c1 < 2"))
    with memo.fast_paths(True):
        memo.clear_memo_caches()
        anti_unify(a, b)
        before = memo.INGEST.au_memo_hits
        anti_unify(a, b)
        au_consulted = memo.INGEST.au_memo_hits > before
        tree = initial_difftree([parse("SELECT c0 FROM t0 WHERE c1 < 1")])
        graft(tree, b)
        before = memo.INGEST.graft_memo_hits
        graft(tree, b)
        graft_consulted = memo.INGEST.graft_memo_hits > before
    return {"au_consulted": au_consulted, "graft_consulted": graft_consulted}


def interface_cost(
    log: List[str], screen: Screen, config: GenerationConfig, fast: bool
) -> float:
    """Seed-fixed interface cost over the ingested log in one memo mode."""
    with memo.fast_paths(fast):
        memo.clear_memo_caches()
        engine = Engine(screen=screen, config=config)
        return engine.generate(log).cost


def run(
    workload: str,
    distinct: int,
    repeat: int,
    iterations: int,
    final_cap: int,
    seed: int,
) -> dict:
    """Compare fast-path vs reference ingestion on one workload."""
    screen = Screen.wide()
    config = GenerationConfig(
        time_budget_s=0.0,  # iteration-capped: equal work, deterministic
        max_iterations=iterations,
        seed=seed,
        final_cap=final_cap,
    )
    log = repetitive_log(workload, distinct, repeat, seed)

    reference = ingest(log, screen, config, fast=False)
    fast = ingest(log, screen, config, fast=True)
    # Second session over a familiar log, memo tables warm: the
    # anti-unify/graft memo scenario (within one session the evolving
    # tree never repeats a (tree, query) pair, so cold-run hits are 0).
    warm = ingest(log, screen, config, fast=True, cold=False)

    # Satellite: the cross-mode cache_key divergence is the derivation
    # split, not drift — each derivation agrees across modes, the two
    # derivations differ from each other by construction.
    key_paths = {
        "fast_derivation_agrees": fast["log_key_fast"] == reference["log_key_fast"],
        "reference_derivation_agrees": (
            fast["log_key_reference"] == reference["log_key_reference"]
        ),
        "fast_key_used_in_fast_mode": (
            fast["cache_key"].split(":")[0] == fast["log_key_fast"]
        ),
        "reference_key_used_in_reference_mode": (
            reference["cache_key"].split(":")[0] == reference["log_key_reference"]
        ),
        "derivations_diverge_as_expected": (
            fast["log_key_fast"] != fast["log_key_reference"]
        ),
    }

    cost_ref = interface_cost(log, screen, config, fast=False)
    cost_fast = interface_cost(log, screen, config, fast=True)

    speedup = fast["qps"] / reference["qps"] if reference["qps"] > 0 else None
    return {
        "workload": workload,
        "appends": len(log),
        "distinct": distinct,
        "repeat": repeat,
        "iterations": iterations,
        "final_cap": final_cap,
        "seed": seed,
        "reference": {k: round(v, 4) if isinstance(v, float) else v
                      for k, v in reference.items()},
        "fast": {k: round(v, 4) if isinstance(v, float) else v
                 for k, v in fast.items()},
        "warm": {k: round(v, 4) if isinstance(v, float) else v
                 for k, v in warm.items()},
        "speedup": round(speedup, 2) if speedup is not None else None,
        "tree_parity": fast["tree_key"] == reference["tree_key"],
        "key_paths": key_paths,
        "memo_probe": memo_probe(),
        "warm_graft_memo_hits": warm["counters"]["graft_memo_hits"],
        "cost_reference": round(cost_ref, 6),
        "cost_fast": round(cost_fast, 6),
        "cost_parity": cost_ref == cost_fast,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--distinct", type=int, default=12,
        help="distinct session queries per workload (before repetition)",
    )
    parser.add_argument(
        "--repeat", type=int, default=25,
        help="how many times the session block repeats in the growing log",
    )
    parser.add_argument(
        "--iterations", type=int, default=8,
        help="search iterations for the cost-parity check",
    )
    parser.add_argument(
        "--final-cap", type=int, default=200,
        help="widget-enumeration cap of the final phase (parity check)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/search seed")
    parser.add_argument(
        "--workload",
        choices=growing_workloads(),
        action="append",
        help="growing-log scenario(s); default: all registered",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless speedup >= 5x with tree and cost parity",
    )
    args = parser.parse_args(argv)
    if min(args.distinct, args.repeat, args.iterations) < 1:
        parser.error("--distinct/--repeat/--iterations must be >= 1")
    workloads = args.workload or list(growing_workloads())

    results = []
    for workload in workloads:
        results.append(
            run(
                workload,
                args.distinct,
                args.repeat,
                args.iterations,
                args.final_cap,
                args.seed,
            )
        )

    print(
        f"\n=== BENCH-INGEST — hash-consed vs reference ingestion, "
        f"{args.distinct} distinct x {args.repeat} repeats ==="
    )
    header = (
        f"{'workload':>10}  {'appends':>7}  {'ref q/s':>9}  {'fast q/s':>9}  "
        f"{'warm q/s':>9}  {'speedup':>8}  {'tree':>5}  {'cost':>5}  "
        f"{'keys':>5}  {'memo':>5}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        memo_ok = (
            all(result["memo_probe"].values())
            and result["warm_graft_memo_hits"] >= 1
        )
        print(
            f"{result['workload']:>10}  {result['appends']:>7}  "
            f"{result['reference']['qps']:>9.0f}  {result['fast']['qps']:>9.0f}  "
            f"{result['warm']['qps']:>9.0f}  "
            f"{result['speedup']:>7.1f}x  "
            f"{'OK' if result['tree_parity'] else 'FAIL':>5}  "
            f"{'OK' if result['cost_parity'] else 'FAIL':>5}  "
            f"{'OK' if all(result['key_paths'].values()) else 'FAIL':>5}  "
            f"{'OK' if memo_ok else 'FAIL':>5}"
        )

    payload = {
        "bench": "ingest",
        "api": "serve.LogStream.log_key + difftree.extend_difftree",
        "results": results,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if args.strict:
        failed = [
            r["workload"]
            for r in results
            if not r["tree_parity"]
            or not r["cost_parity"]
            or not all(r["key_paths"].values())
            or not all(r["memo_probe"].values())
            or r["warm_graft_memo_hits"] < 1
            or r["speedup"] is None
            or r["speedup"] < 5.0
        ]
        if failed:
            print(
                f"STRICT: acceptance criteria not met for {failed} "
                f"(need tree+cost parity, explained key paths, consulted "
                f"memo tables, and >= 5x ingest throughput)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
