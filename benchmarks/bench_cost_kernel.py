"""BENCH-KERNEL: compiled cost-evaluation kernel vs the reference path.

Two claims (ISSUE 2 / `repro.cost.kernel`):

1. **Throughput** — on the exhaustive widget pass (the paper's final
   phase and the hot loop of every search), scoring candidates as
   decision vectors against the compiled flat arrays with delta
   re-evaluation is >= 3x faster than deriving and walk-scoring each
   widget tree from scratch.
2. **Equal-budget search** — MCTS with the kernel reaches a final cost
   <= the pre-refactor run at the same iteration budget on the SDSS and
   TPC-H-style workloads.  (The kernel is bitwise-parity exact and
   consumes the RNG identically, so at equal iterations the costs are
   *equal* — the kernel just gets there in a fraction of the wall
   clock.)

Standalone script (also the CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_cost_kernel.py \
        --queries 8 --evals 400 --iterations 10 --json BENCH_cost_kernel.json

The "legacy" side reconstructs the pre-kernel evaluation pipeline
(derive-per-candidate + walk-everything ``evaluate_reference``) and is
temporarily patched into the search layer for the MCTS comparison.
With ``--strict`` the script exits non-zero unless both claims hold.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List, Optional

import repro.search.common as search_common
from repro.cost import CostModel, EvaluatedInterface
from repro.difftree import DTNode, initial_difftree
from repro.layout import Screen
from repro.rules import forward_engine
from repro.search import MCTSConfig, mcts_search
from repro.sqlast import parse
from repro.widgets import (
    ORIENTATIONS,
    SIZE_CLASSES,
    GreedyChooser,
    RandomChooser,
    ReplayChooser,
    decision_space,
    derive_widget_tree,
    enumerate_widget_trees,
)
from repro.registry import get_workload, workload_names
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> Dict[str, object]:
    """Registered growing-log generators by name (sdss, tpch, ...)."""
    return {name: get_workload(name) for name in workload_names(tag="growing")}


# -- the pre-kernel evaluation pipeline (reference semantics) --------------------


def legacy_sampled_evaluation(model, tree, k=5, rng=None, include_greedy=True):
    """Pre-kernel sampled evaluation: derive every sample, walk-score it."""
    rng = rng or random.Random(0)
    samples = []
    if include_greedy:
        samples.append(derive_widget_tree(tree, GreedyChooser()))
        k = max(0, k - 1)
    for _ in range(k):
        samples.append(derive_widget_tree(tree, RandomChooser(rng)))
    best = None
    for root in samples:
        candidate = EvaluatedInterface(
            tree, root, model.evaluate_reference(tree, root)
        )
        if best is None or candidate.rank < best.rank:
            best = candidate
    return best


def legacy_exhaustive_evaluation(model, tree, cap=4000):
    """Pre-kernel final pass: enumerate real trees, walk-score each."""
    space = decision_space(tree)
    if space.num_assignments <= cap:
        best = None
        for root in enumerate_widget_trees(tree, cap=cap):
            candidate = EvaluatedInterface(
                tree, root, model.evaluate_reference(tree, root)
            )
            if best is None or candidate.rank < best.rank:
                best = candidate
        return best
    return legacy_coordinate_descent(model, tree)


def legacy_coordinate_descent(model, tree, max_rounds=6):
    """Pre-kernel coordinate descent: rebuild + walk-score per trial."""
    space = decision_space(tree)
    widgets = {path: (opts[0], "M") for path, opts in space.widget_options.items()}
    orientations = {path: "vertical" for path in space.orientation_points}

    def build_and_cost():
        root = derive_widget_tree(tree, ReplayChooser(dict(widgets), dict(orientations)))
        return EvaluatedInterface(tree, root, model.evaluate_reference(tree, root))

    current = build_and_cost()
    for _ in range(max_rounds):
        improved = False
        for path, options in sorted(space.widget_options.items()):
            original = widgets[path]
            for name in options:
                for size_class in SIZE_CLASSES:
                    if (name, size_class) == original:
                        continue
                    widgets[path] = (name, size_class)
                    candidate = build_and_cost()
                    if candidate.rank < current.rank:
                        current = candidate
                        original = (name, size_class)
                        improved = True
            widgets[path] = original
        for path in space.orientation_points:
            original_o = orientations[path]
            for orientation in ORIENTATIONS:
                if orientation == original_o:
                    continue
                orientations[path] = orientation
                candidate = build_and_cost()
                if candidate.rank < current.rank:
                    current = candidate
                    original_o = orientation
                    improved = True
            orientations[path] = original_o
        if not improved:
            break
    return current


class _patched_legacy_search:
    """Route the search layer's state evaluation through the legacy path."""

    def __enter__(self):
        self._sampled = search_common.sampled_evaluation
        self._exhaustive = search_common.exhaustive_evaluation
        search_common.sampled_evaluation = legacy_sampled_evaluation
        search_common.exhaustive_evaluation = legacy_exhaustive_evaluation
        return self

    def __exit__(self, *exc):
        search_common.sampled_evaluation = self._sampled
        search_common.exhaustive_evaluation = self._exhaustive
        return False


# -- benchmark passes ------------------------------------------------------------


def factored_state(asts: List, max_steps: int = 200) -> DTNode:
    """A deterministic well-factored difftree (forward rules to fixpoint)."""
    engine = forward_engine()
    tree = initial_difftree(asts)
    for _ in range(max_steps):
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            break
        tree = engine.apply(tree, moves[0])
    return tree


def throughput_pass(asts: List, screen: Screen, evals: int) -> Dict:
    """Candidate-evaluations/sec: legacy derive+walk vs kernel deltas."""
    state = factored_state(asts)
    model = CostModel(asts, screen)
    kernel = model.kernel_for(state)
    candidates = min(evals, kernel.schema.num_assignments)

    t0 = time.perf_counter()
    legacy = [
        model.evaluate_reference(state, root)
        for root in enumerate_widget_trees(state, cap=candidates)
    ]
    legacy_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = [breakdown for _, breakdown in kernel.iter_enumeration(cap=candidates)]
    kernel_s = time.perf_counter() - t0

    mismatches = sum(1 for a, b in zip(legacy, compiled) if a != b)
    return {
        "candidates": candidates,
        "decision_product": kernel.schema.num_assignments,
        "legacy_seconds": round(legacy_s, 4),
        "kernel_seconds": round(kernel_s, 4),
        "legacy_evals_per_s": round(candidates / legacy_s, 1) if legacy_s else None,
        "kernel_evals_per_s": round(candidates / kernel_s, 1) if kernel_s else None,
        "speedup": round(legacy_s / kernel_s, 2) if kernel_s else None,
        "parity_mismatches": mismatches,
        "delta_evals": model.kernel_stats.delta_evals,
    }


def mcts_pass(
    asts: List, screen: Screen, iterations: int, final_cap: int, seed: int
) -> Dict:
    """Equal-iteration MCTS: kernel-backed vs pre-refactor evaluation."""
    config = MCTSConfig(
        time_budget_s=3600.0,  # iteration-capped: wall clock must not bite
        max_iterations=iterations,
        seed=seed,
        final_cap=final_cap,
    )

    def run() -> Dict:
        model = CostModel(asts, screen)
        initial = initial_difftree(asts)
        t0 = time.perf_counter()
        result = mcts_search(model, initial, config=config)
        return {
            "cost": result.best_cost,
            "seconds": round(time.perf_counter() - t0, 3),
            "states_evaluated": result.stats.states_evaluated,
            "kernel_full_evals": result.stats.kernel_full_evals,
            "kernel_delta_evals": result.stats.kernel_delta_evals,
        }

    with _patched_legacy_search():
        legacy = run()
    kernel = run()
    return {
        "iterations": iterations,
        "legacy_cost": legacy["cost"],
        "kernel_cost": kernel["cost"],
        "legacy_seconds": legacy["seconds"],
        "kernel_seconds": kernel["seconds"],
        "speedup": (
            round(legacy["seconds"] / kernel["seconds"], 2)
            if kernel["seconds"]
            else None
        ),
        "cost_leq_legacy": kernel["cost"] <= legacy["cost"] + 1e-9,
        "costs_equal": abs(kernel["cost"] - legacy["cost"]) <= 1e-12,
        "states_evaluated": kernel["states_evaluated"],
        "kernel_full_evals": kernel["kernel_full_evals"],
        "kernel_delta_evals": kernel["kernel_delta_evals"],
    }


def run(queries: int, evals: int, iterations: int, final_cap: int, seed: int) -> Dict:
    screen = Screen.wide()
    workloads: Dict[str, Dict] = {}
    for name, generator in growing_workloads().items():
        asts = [parse(q) for q in generator(queries, seed=0)]
        workloads[name] = {
            "throughput": throughput_pass(asts, screen, evals),
            "mcts": mcts_pass(asts, screen, iterations, final_cap, seed),
        }
    speedups = [w["throughput"]["speedup"] for w in workloads.values()]
    return {
        "bench": "cost_kernel",
        "queries": queries,
        "evals": evals,
        "iterations": iterations,
        "final_cap": final_cap,
        "seed": seed,
        "workloads": workloads,
        "min_throughput_speedup": min(speedups),
        "throughput_geq_3x": all(s >= 3.0 for s in speedups),
        "parity_clean": all(
            w["throughput"]["parity_mismatches"] == 0 for w in workloads.values()
        ),
        "mcts_cost_leq_legacy": all(
            w["mcts"]["cost_leq_legacy"] for w in workloads.values()
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=8, help="session log size")
    parser.add_argument(
        "--evals", type=int, default=600, help="candidates in the throughput pass"
    )
    parser.add_argument(
        "--iterations", type=int, default=10, help="MCTS iteration budget"
    )
    parser.add_argument(
        "--final-cap", type=int, default=400, help="final widget-pass cap"
    )
    parser.add_argument("--seed", type=int, default=0, help="search RNG seed")
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless >=3x throughput, zero parity mismatches, "
        "and kernel MCTS cost <= legacy at equal iterations",
    )
    args = parser.parse_args(argv)
    if args.queries < 2 or args.evals < 2 or args.iterations < 1:
        parser.error("--queries/--evals must be >= 2, --iterations >= 1")

    result = run(args.queries, args.evals, args.iterations, args.final_cap, args.seed)

    print("\n=== BENCH-KERNEL — compiled cost kernel vs reference path ===")
    for name, data in result["workloads"].items():
        tp, mc = data["throughput"], data["mcts"]
        print(
            f"[{name}] exhaustive pass: {tp['candidates']} candidates  "
            f"legacy {tp['legacy_evals_per_s']:.0f}/s  "
            f"kernel {tp['kernel_evals_per_s']:.0f}/s  "
            f"speedup {tp['speedup']:.1f}x  "
            f"(mismatches: {tp['parity_mismatches']})"
        )
        print(
            f"[{name}] mcts x{mc['iterations']} iters: "
            f"legacy cost {mc['legacy_cost']:.3f} in {mc['legacy_seconds']:.2f}s, "
            f"kernel cost {mc['kernel_cost']:.3f} in {mc['kernel_seconds']:.2f}s "
            f"({mc['speedup']}x, equal={mc['costs_equal']})"
        )
    print(
        f"\nmin throughput speedup: {result['min_throughput_speedup']:.1f}x "
        f"(gate: >= 3x) | parity clean: {result['parity_clean']} | "
        f"mcts cost <= legacy: {result['mcts_cost_leq_legacy']}"
    )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json}")

    ok = (
        result["throughput_geq_3x"]
        and result["parity_clean"]
        and result["mcts_cost_leq_legacy"]
    )
    if args.strict and not ok:
        print("STRICT: acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
