"""T-SS: search-space statistics on the Listing-1 log.

The paper reports, for the 10-query SDSS log: "The fanout is as high as
50, and a search path can be as long as 100 steps."  This bench measures
both on our rule set (which includes the bidirectional inverses, so the
fanout ceiling is higher) and asserts the paper's orders of magnitude.
"""

from __future__ import annotations

import random

from repro.difftree import initial_difftree
from repro.rules import default_engine
from repro.workloads import listing1_queries


def test_fanout_and_path_length(benchmark, table_printer):
    engine = default_engine()
    queries = listing1_queries()

    def measure():
        rng = random.Random(0)
        max_fanout = 0
        root_fanout = engine.fanout(initial_difftree(queries))
        longest_path = 0
        for walk in range(8):
            tree = initial_difftree(queries)
            steps = 0
            for _ in range(150):
                moves = engine.moves(tree)
                max_fanout = max(max_fanout, len(moves))
                if not moves:
                    break
                tree = engine.apply(tree, rng.choice(moves))
                steps += 1
            longest_path = max(longest_path, steps)
        return root_fanout, max_fanout, longest_path

    root_fanout, max_fanout, longest_path = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table_printer(
        "T-SS — search-space statistics (Listing-1 log)",
        ["statistic", "paper", "measured"],
        [
            ("initial-state fanout", "-", root_fanout),
            ("max fanout along walks", "~50", max_fanout),
            ("random-walk path length", "up to 100+", longest_path),
        ],
    )
    # Shape: fanout in the tens-to-hundreds; paths can exceed 100 steps.
    assert max_fanout >= 50
    assert longest_path >= 100


def test_state_dedup_via_canonical_keys(benchmark, table_printer):
    """Transposition sanity: different rewrite orders reach shared states."""
    engine = default_engine()
    queries = listing1_queries(1, 4)

    def measure():
        rng = random.Random(1)
        seen = set()
        visits = 0
        for _ in range(6):
            tree = initial_difftree(queries)
            for _ in range(30):
                move = engine.random_move(tree, rng)
                if move is None:
                    break
                tree = engine.apply(tree, move)
                seen.add(tree.canonical_key)
                visits += 1
        return visits, len(seen)

    visits, unique = benchmark.pedantic(measure, rounds=1, iterations=1)
    table_printer(
        "T-SS — transposition rate",
        ["walk state visits", "unique states", "dedup ratio"],
        [(visits, unique, f"{unique / max(visits, 1):.2f}")],
    )
    assert unique <= visits
