"""Ablations over the design choices DESIGN.md calls out.

* A-C    — UCT exploration constant ``c``
* A-K    — ``k`` random widget assignments per state reward
* A-U    — dropping the sequence term ``U`` (appropriateness-only, the
           Zhang-style objective) and re-scoring under the full model
* A-RULE — disabling rule families (inverse rules, Multi)
"""

from __future__ import annotations

from repro.cost import CostModel, CostWeights
from repro.difftree import initial_difftree
from repro.layout import Screen
from repro.rules import default_engine
from repro.search import MCTSConfig, mcts_search
from repro.workloads import listing1_queries

BUDGET_S = 3.0
SEED = 31


def _run(queries, *, weights=None, engine=None, **config_kwargs):
    model = CostModel(queries, Screen.wide(), weights=weights or CostWeights())
    config = MCTSConfig(time_budget_s=BUDGET_S, seed=SEED, **config_kwargs)
    return mcts_search(model, initial_difftree(queries), engine=engine, config=config)


def test_exploration_constant(benchmark, table_printer):
    """A-C: sweep the UCT exploration constant."""
    queries = listing1_queries()
    values = (0.0, 0.7, 1.4, 2.8)

    def sweep():
        return {c: _run(queries, exploration_c=c).best_cost for c in values}

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "A-C — UCT exploration constant",
        ["c", "best cost"],
        [(c, f"{cost:.2f}") for c, cost in costs.items()],
    )
    # Shape: all settings produce valid interfaces; the sweep itself is
    # the artifact (the paper calls c "a tunable exploration parameter").
    assert all(cost < float("inf") for cost in costs.values())


def test_reward_assignments(benchmark, table_printer):
    """A-K: number of sampled widget assignments per state reward."""
    queries = listing1_queries()
    values = (1, 3, 8)

    def sweep():
        return {k: _run(queries, k_assignments=k).best_cost for k in values}

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "A-K — widget-assignment samples per reward",
        ["k", "best cost"],
        [(k, f"{cost:.2f}") for k, cost in costs.items()],
    )
    assert all(cost < float("inf") for cost in costs.values())


def test_cost_terms(benchmark, table_printer):
    """A-U: appropriateness-only objective vs the full cost model.

    Searching with u=0 (the prior work's objective) and re-scoring the
    winner under the full model shows what ignoring the query sequence
    costs.
    """
    queries = listing1_queries()

    def run_both():
        full = _run(queries)
        m_only = _run(queries, weights=CostWeights(u=0.0))
        # Re-score the M-only winner under the full model.
        full_model = CostModel(queries, Screen.wide())
        rescored = full_model.evaluate(m_only.best.tree, m_only.best.widget_tree)
        return full, m_only, rescored

    full, m_only, rescored = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table_printer(
        "A-U — dropping the sequence term U",
        ["objective", "search cost", "cost under full model"],
        [
            ("full C = M + U", f"{full.best_cost:.2f}", f"{full.best_cost:.2f}"),
            (
                "M-only (Zhang-style)",
                f"{m_only.best_cost:.2f}",
                f"{rescored.total:.2f}" if rescored.feasible else "inf",
            ),
        ],
    )
    # Shape: optimizing without U cannot beat the full objective when
    # judged by the full objective.
    if rescored.feasible:
        assert full.best_cost <= rescored.total + 1e-6


def test_rule_families(benchmark, table_printer):
    """A-RULE: disabling rule families changes the reachable space."""
    queries = listing1_queries()
    variants = {
        "full rule set": None,
        "no inverse rules": ("UnOptional", "Distribute"),
        "no Multi": ("Multi",),
        "no Lift": ("Lift",),
    }

    def sweep():
        out = {}
        for name, excluded in variants.items():
            engine = default_engine(exclude=excluded)
            out[name] = _run(queries, engine=engine).best_cost
        return out

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "A-RULE — rule-family ablation",
        ["rule set", "best cost"],
        [(name, f"{cost:.2f}") for name, cost in costs.items()],
    )
    assert all(cost < float("inf") for cost in costs.values())
