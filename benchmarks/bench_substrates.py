"""Micro-benchmarks of the substrate operations the search loop is built on.

The paper's "Ongoing Work" section flags the transformation rules as the
key optimization target ("become slow to evaluate as the difftree becomes
large"); these benches quantify the per-operation costs behind that
observation: parsing, execution, expressibility matching, move
enumeration, and rule application.
"""

from __future__ import annotations

import random

from repro.cost import CostModel, sampled_evaluation
from repro.database import execute
from repro.datagen import make_sdss_database
from repro.difftree import assignment_for, initial_difftree
from repro.layout import Screen
from repro.rules import default_engine
from repro.sqlast import parse
from repro.workloads import LISTING1_SQL, listing1_queries


def test_parse_listing1(benchmark):
    benchmark(lambda: [parse(sql) for sql in LISTING1_SQL])


def test_execute_listing1_on_sdss(benchmark):
    db = make_sdss_database(rows_per_table=500, seed=1)
    queries = listing1_queries()
    benchmark(lambda: [execute(db, q) for q in queries])


def test_initial_difftree_build(benchmark):
    queries = listing1_queries()
    benchmark(lambda: initial_difftree(queries))


def test_move_enumeration(benchmark):
    engine = default_engine()
    tree = initial_difftree(listing1_queries())
    benchmark(lambda: engine.moves(tree))


def test_rule_application(benchmark):
    engine = default_engine()
    tree = initial_difftree(listing1_queries())
    move = engine.moves(tree)[0]
    benchmark(lambda: engine.apply(tree, move))


def test_random_walk_step(benchmark):
    engine = default_engine()
    tree = initial_difftree(listing1_queries())
    rng = random.Random(0)

    def step():
        move = engine.random_move(tree, rng)
        return engine.apply(tree, move)

    benchmark(step)


def test_expressibility_match(benchmark):
    engine = default_engine()
    queries = listing1_queries()
    tree = initial_difftree(queries)
    rng = random.Random(0)
    for _ in range(15):
        move = engine.random_move(tree, rng)
        if move is None:
            break
        tree = engine.apply(tree, move)
    benchmark(lambda: [assignment_for(tree, q) for q in queries])


def test_state_evaluation(benchmark):
    queries = listing1_queries()
    model = CostModel(queries, Screen.wide())
    tree = initial_difftree(queries)
    rng = random.Random(0)
    benchmark(lambda: sampled_evaluation(model, tree, k=5, rng=rng))
