"""BENCH-SERVE: concurrent multi-session scheduling vs FIFO serving.

The scheduling claim (ISSUE 4 / `repro.engine.SessionScheduler`): when N
sessions with growing query logs arrive together, time-slicing their
searches round-robin delivers every session's *first* interface after
roughly the cohort's first-step work, while FIFO serving makes session N
wait for every predecessor's *entire* script — so the scheduler's p95
first-interface latency beats FIFO by >= 2x at equal per-search
iteration budgets, with bit-for-bit identical per-session results.

Both sides run through the same `Engine.scheduler()` machinery — FIFO is
the `policy="fifo"` degenerate case (no preemption, submission order) —
and a serial `Engine.session()` loop provides the pre-scheduler
reference the per-session costs must match exactly (the searches are
iteration-capped and seed-fixed, so slicing must not change results).

Standalone script (CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --sessions 8 --chunks 3 --chunk-size 2 --iterations 8 \
        --json BENCH_serving.json --strict

With ``--strict`` the script exits non-zero unless, for every workload:
scheduler p95 >= 2x better than FIFO p95, all per-session costs match
across fifo/round_robin/serial, and every ticket completed.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Tuple

from repro import Engine, GenerationConfig
from repro.engine import get_workload, workload_names
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> tuple:
    """Registered growing-log session generators (sdss, tpch, ...)."""
    return workload_names(tag="growing")


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1])."""
    ranked = sorted(values)
    index = max(0, math.ceil(q * len(ranked)) - 1)
    return ranked[index]


def session_scripts(
    workload: str, sessions: int, chunks: int, chunk_size: int
) -> Dict[str, List[Tuple[str, ...]]]:
    """One growing-log script per session (distinct seeds => distinct logs)."""
    scripts: Dict[str, List[Tuple[str, ...]]] = {}
    factory = get_workload(workload)
    for i in range(sessions):
        log = factory(chunks * chunk_size, seed=i)
        scripts[f"{workload}-{i}"] = [
            tuple(log[start : start + chunk_size])
            for start in range(0, chunks * chunk_size, chunk_size)
        ]
    return scripts


def run_scheduler(
    policy: str,
    scripts: Dict[str, List[Tuple[str, ...]]],
    config: GenerationConfig,
    slice_iterations: int,
) -> dict:
    """Drain all scripts under one policy on a fresh engine."""
    engine = Engine(config=config)
    scheduler = engine.scheduler(
        policy=policy,
        slice_iterations=None if policy == "fifo" else slice_iterations,
    )
    for session_id, chunks in scripts.items():
        scheduler.submit(session_id, chunks)
    t0 = time.perf_counter()
    tickets = scheduler.run()
    wall_s = time.perf_counter() - t0
    return {
        "policy": policy,
        "wall_s": round(wall_s, 3),
        "all_done": all(t.state == "done" for t in tickets),
        "first_interface_s": {
            t.session_id: round(t.first_interface_s, 4) for t in tickets
        },
        "costs": {
            t.session_id: [round(r.cost, 6) for r in t.reports] for t in tickets
        },
        "slices": sum(t.slices for t in tickets),
        "preemptions": sum(t.preemptions for t in tickets),
        "errors": {
            t.session_id: t.error for t in tickets if t.error is not None
        },
    }


def run_serial(
    scripts: Dict[str, List[Tuple[str, ...]]], config: GenerationConfig
) -> Dict[str, List[float]]:
    """The pre-scheduler reference: one engine, sessions served in turn."""
    engine = Engine(config=config)
    costs: Dict[str, List[float]] = {}
    for session_id, chunks in scripts.items():
        session = engine.session(session_id)
        per_step: List[float] = []
        for chunk in chunks:
            session.append(*chunk)
            per_step.append(round(session.interface().cost, 6))
        costs[session_id] = per_step
    return costs


def run(
    workload: str,
    sessions: int,
    chunks: int,
    chunk_size: int,
    iterations: int,
    slice_iterations: int,
    final_cap: int,
    seed: int,
) -> dict:
    """Compare fifo vs round_robin vs serial on one workload."""
    config = GenerationConfig(
        time_budget_s=0.0,  # iteration-capped: equal work, deterministic
        max_iterations=iterations,
        seed=seed,
        final_cap=final_cap,
    )
    scripts = session_scripts(workload, sessions, chunks, chunk_size)

    fifo = run_scheduler("fifo", scripts, config, slice_iterations)
    sched = run_scheduler("round_robin", scripts, config, slice_iterations)
    serial = run_serial(scripts, config)

    fifo_lat = list(fifo["first_interface_s"].values())
    sched_lat = list(sched["first_interface_s"].values())
    fifo_p95 = percentile(fifo_lat, 0.95)
    sched_p95 = percentile(sched_lat, 0.95)
    parity = (
        fifo["costs"] == sched["costs"]
        and sched["costs"] == serial
        and fifo["all_done"]
        and sched["all_done"]
    )
    return {
        "workload": workload,
        "sessions": sessions,
        "chunks": chunks,
        "chunk_size": chunk_size,
        "iterations": iterations,
        "slice_iterations": slice_iterations,
        "final_cap": final_cap,
        "seed": seed,
        "fifo": fifo,
        "scheduler": sched,
        "serial_costs": serial,
        "fifo_p50_s": round(percentile(fifo_lat, 0.5), 4),
        "fifo_p95_s": round(fifo_p95, 4),
        "scheduler_p50_s": round(percentile(sched_lat, 0.5), 4),
        "scheduler_p95_s": round(sched_p95, 4),
        "p95_speedup": round(fifo_p95 / sched_p95, 3) if sched_p95 > 0 else None,
        "parity": parity,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sessions", type=int, default=8, help="concurrent sessions per workload"
    )
    parser.add_argument(
        "--chunks", type=int, default=3, help="growing-log steps per session"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2, help="queries appended per step"
    )
    parser.add_argument(
        "--iterations", type=int, default=8, help="search iterations per interface"
    )
    parser.add_argument(
        "--slice", type=int, default=3, dest="slice_iterations",
        help="iterations per scheduler slice",
    )
    parser.add_argument(
        "--final-cap", type=int, default=300,
        help="widget-enumeration cap of the final phase",
    )
    parser.add_argument("--seed", type=int, default=0, help="search RNG seed")
    parser.add_argument(
        "--workload",
        choices=growing_workloads(),
        action="append",
        help="growing-log scenario(s); default: all registered",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless p95 speedup >= 2x with exact cost parity",
    )
    args = parser.parse_args(argv)
    if min(args.sessions, args.chunks, args.chunk_size, args.iterations) < 1:
        parser.error("--sessions/--chunks/--chunk-size/--iterations must be >= 1")
    workloads = args.workload or list(growing_workloads())

    results = []
    for workload in workloads:
        results.append(
            run(
                workload,
                args.sessions,
                args.chunks,
                args.chunk_size,
                args.iterations,
                args.slice_iterations,
                args.final_cap,
                args.seed,
            )
        )

    print(
        f"\n=== BENCH-SERVE — scheduler vs FIFO, {args.sessions} sessions x "
        f"{args.chunks} growing-log steps, {args.iterations} iterations/search ==="
    )
    header = (
        f"{'workload':>10}  {'fifo p50':>9}  {'fifo p95':>9}  "
        f"{'sched p50':>9}  {'sched p95':>9}  {'speedup':>8}  {'parity':>6}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result['workload']:>10}  {result['fifo_p50_s']:>8.2f}s  "
            f"{result['fifo_p95_s']:>8.2f}s  {result['scheduler_p50_s']:>8.2f}s  "
            f"{result['scheduler_p95_s']:>8.2f}s  "
            f"{result['p95_speedup']:>7.2f}x  "
            f"{'OK' if result['parity'] else 'FAIL'}"
        )

    payload = {
        "bench": "serving",
        "api": "engine.scheduler",
        "results": results,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if args.strict:
        failed = [
            r["workload"]
            for r in results
            if not r["parity"]
            or r["p95_speedup"] is None
            or r["p95_speedup"] < 2.0
        ]
        if failed:
            print(
                f"STRICT: acceptance criteria not met for {failed} "
                f"(need parity and >= 2x p95 speedup)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
