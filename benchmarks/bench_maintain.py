"""BENCH-MAINTAIN: maintainable search state across appends + retention.

The maintainability claim (ISSUE 9 / `repro.search.carry`): carrying the
MCTS tree across a session's appends — invalidating only subtrees whose
decisions touch the append's changed choice-paths — keeps per-append
interface latency sublinear in log size, at the same seed-fixed final
cost as the warm-only reference path; and retention windows
(`session.retain(last_n=...)`) recompute only the choice-sets anchored
in dropped queries (counter-asserted against `search.carry.*`).

Three curves per growing workload, all iteration-capped and seed-fixed
so latency measures maintenance work rather than a wall-clock budget:

* **carried** — one live session, carry gate on (the default stack);
* **warm**    — the same session protocol under ``memo.carry(False)``:
  warm-started incumbents/elites but the tree rebuilt every append (the
  parity oracle);
* **cold**    — a fresh engine per measured size (full recompute).

The log grows one query at a time inside a measurement window before
each probed size (bulk appends in between keep the runtime bounded);
the reported latency is the median per-append serve time of the window.

Cost parity is asserted in a separate **parity phase**: a small growing
log served per-append under a convergence-sized iteration cap, where
both paths reach the same optimum — carrying never changes what a
converged search reports, only how fast it gets there.  (At the sweep's
deliberately tight caps the trajectories are mid-convergence and may
differ either way; the sweep records both cost columns and their delta
in the artifact rather than gating on a mid-convergence coincidence.)

Standalone CI smoke target, runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_maintain.py \
        --sizes 8,32,128 --iterations 4 --json BENCH_maintain.json --strict

With ``--strict`` the exit code is non-zero unless, on every workload:
the carried curve's log-log latency slope stays < 1 (sublinear), the
convergence-capped parity phase reports identical carried and warm-only
final costs, and the retention pass re-diffed at most one rejoined
boundary pair per retracted sequence.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from typing import Dict, List

from repro import Engine, GenerationConfig, memo
from repro.engine import get_workload
from repro.search.carry import STATS
import repro.workloads  # noqa: F401  (registers the built-in workloads)

WORKLOADS = ("sdss", "tpch")


def _serve_growing(
    log: List[str],
    sizes: List[int],
    config: GenerationConfig,
    window: int,
) -> List[dict]:
    """One session over the growing log; per-append serves near each size."""
    engine = Engine(config=config)
    session = engine.session("bench")
    points: List[dict] = []
    grown = 0
    for size in sizes:
        measured: List[float] = []
        carry = None
        report = None
        window_start = max(grown, size - window)
        if window_start > grown:
            # Bulk-append the stretch before the measurement window; one
            # serve re-establishes the carried tree for the window.
            session.append(*log[grown:window_start])
            session.interface()
            grown = window_start
        searched: List[float] = []
        while grown < size:
            session.append(log[grown])
            grown += 1
            t0 = time.perf_counter()
            report = session.interface()
            seconds = time.perf_counter() - t0
            measured.append(seconds)
            if report.source == "search":
                # Duplicate appends can be served from the interface
                # cache with zero search work; only searched serves
                # measure maintenance cost.
                searched.append(seconds)
                carry = report.to_dict()["provenance"]["carry"]
        points.append(
            {
                "log_size": size,
                "seconds": round(statistics.median(searched or measured), 4),
                "cost": report.cost,
                "iterations": report.search.stats.iterations,
                "carry": carry,
            }
        )
    return points


def _serve_cold(
    log: List[str], sizes: List[int], config: GenerationConfig
) -> List[dict]:
    """A fresh engine per probed size: the full-recompute baseline."""
    points: List[dict] = []
    for size in sizes:
        t0 = time.perf_counter()
        report = Engine(config=config).generate(log[:size])
        points.append(
            {
                "log_size": size,
                "seconds": round(time.perf_counter() - t0, 4),
                "cost": report.cost,
                "iterations": report.search.stats.iterations,
            }
        )
    return points


def _slope(points: List[dict]) -> float:
    """Least-squares slope of log(latency) vs log(log_size)."""
    xs = [math.log(p["log_size"]) for p in points]
    ys = [math.log(max(p["seconds"], 1e-6)) for p in points]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denominator


def _retention_pass(
    log: List[str], size: int, config: GenerationConfig
) -> dict:
    """Serve, apply a retention window, counter-assert bounded recompute."""
    engine = Engine(config=config)
    session = engine.session("retain")
    session.append(*log[:size])
    session.interface()
    before = STATS.snapshot()
    kept = session.retain(last_n=size // 2)
    after = STATS.snapshot()
    removed = after["retention_removals"] - before["retention_removals"]
    retracted = after["retention_retracts"] - before["retention_retracts"]
    rediffed = (
        after["retention_pairs_rediffed"] - before["retention_pairs_rediffed"]
    )
    t0 = time.perf_counter()
    report = session.interface()
    return {
        "kept": kept,
        "removed": removed,
        "sequences_retracted": retracted,
        "boundary_pairs_rediffed": rediffed,
        # Retention retires a prefix, so every retracted sequence rejoins
        # at most one boundary pair — the only changed-choice recompute
        # the window is allowed to pay.
        "bounded_recompute": removed == size - kept and rediffed <= retracted,
        "post_retention_cost": report.cost,
        "post_retention_seconds": round(time.perf_counter() - t0, 4),
        "post_retention_log_size": report.log_size,
    }


def _parity_pass(
    workload: str, n: int, iterations: int, seed: int
) -> dict:
    """Per-append serves at a convergence-sized cap: carried == warm."""

    def final_cost(carry_on: bool) -> float:
        log = get_workload(workload)(n, seed=0)
        config = GenerationConfig(
            time_budget_s=0.0, max_iterations=iterations, seed=seed
        )
        with memo.carry(carry_on):
            session = Engine(config=config).session("parity")
            cost = math.inf
            for query in log:
                session.append(query)
                cost = session.interface().cost
            return cost

    carried_cost, warm_cost = final_cost(True), final_cost(False)
    return {
        "queries": n,
        "iterations": iterations,
        "carried_cost": carried_cost,
        "warm_cost": warm_cost,
        "equal": abs(carried_cost - warm_cost) <= 1e-9,
    }


def run(
    sizes: List[int],
    iterations: int,
    seed: int,
    window: int,
    workload: str,
    parity_queries: int,
    parity_iterations: int,
) -> dict:
    log = get_workload(workload)(sizes[-1], seed=0)
    config = GenerationConfig(
        time_budget_s=0.0, max_iterations=iterations, seed=seed
    )

    carried = _serve_growing(log, sizes, config, window)
    with memo.carry(False):
        warm = _serve_growing(log, sizes, config, window)
        cold = _serve_cold(log, sizes, config)
    retention = _retention_pass(log, sizes[-1], config)
    parity = _parity_pass(workload, parity_queries, parity_iterations, seed)

    slope = _slope(carried)
    return {
        "workload": workload,
        "sizes": sizes,
        "carried": carried,
        "warm": warm,
        "cold": cold,
        # Mid-convergence sweep quality (carried - warm; <= 0 means the
        # carried tree found an interface at least as good).
        "sweep_cost_delta": round(carried[-1]["cost"] - warm[-1]["cost"], 4),
        "carried_slope": round(slope, 3),
        "sublinear": slope < 1.0,
        "parity": parity,
        "retention": retention,
        "pass": (
            slope < 1.0
            and parity["equal"]
            and retention["bounded_recompute"]
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="8,32,128",
        help="comma-separated log sizes to probe (ascending)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=4,
        help="seed-fixed MCTS iteration cap per serve",
    )
    parser.add_argument("--seed", type=int, default=0, help="search RNG seed")
    parser.add_argument(
        "--window",
        type=int,
        default=4,
        help="per-append serves measured before each probed size",
    )
    parser.add_argument(
        "--workloads",
        default=",".join(WORKLOADS),
        help="comma-separated growing workloads",
    )
    parser.add_argument(
        "--parity-queries",
        type=int,
        default=5,
        help="growing-log size of the convergence-capped parity phase",
    )
    parser.add_argument(
        "--parity-iterations",
        type=int,
        default=32,
        help="iteration cap of the parity phase (large enough to converge)",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless every workload passes the maintenance gate",
    )
    args = parser.parse_args(argv)
    sizes = sorted({int(s) for s in args.sizes.split(",") if s.strip()})
    if not sizes or sizes[0] < 2:
        parser.error("--sizes needs ascending integers >= 2")
    if args.iterations < 1 or args.window < 1:
        parser.error("--iterations and --window must be >= 1")
    if args.parity_queries < 2 or args.parity_iterations < 1:
        parser.error("--parity-queries must be >= 2, --parity-iterations >= 1")

    results: Dict[str, dict] = {}
    for workload in args.workloads.split(","):
        workload = workload.strip()
        results[workload] = run(
            sizes,
            args.iterations,
            args.seed,
            args.window,
            workload,
            args.parity_queries,
            args.parity_iterations,
        )

    print("\n=== BENCH-MAINTAIN — carried tree vs warm-only vs cold ===")
    for workload, result in results.items():
        header = (
            f"{'log':>5}  {'carried s':>9}  {'warm s':>7}  {'cold s':>7}"
            f"  {'carried cost':>12}  {'warm cost':>10}"
        )
        print(f"\n[{workload}]")
        print(header)
        print("-" * len(header))
        for c, w, f in zip(result["carried"], result["warm"], result["cold"]):
            print(
                f"{c['log_size']:>5}  {c['seconds']:>9.3f}  {w['seconds']:>7.3f}"
                f"  {f['seconds']:>7.3f}  {c['cost']:>12.2f}  {w['cost']:>10.2f}"
            )
        retention = result["retention"]
        parity = result["parity"]
        print(
            f"slope {result['carried_slope']:+.3f} "
            f"({'SUBLINEAR' if result['sublinear'] else 'SUPERLINEAR (!)'}); "
            f"sweep cost delta {result['sweep_cost_delta']:+.4f}"
        )
        print(
            f"converged parity ({parity['queries']} queries, "
            f"{parity['iterations']} iterations): carried "
            f"{parity['carried_cost']:.4f} vs warm {parity['warm_cost']:.4f} "
            f"-> {'IDENTICAL' if parity['equal'] else 'DIVERGED (!)'}"
        )
        print(
            f"retention: dropped {retention['removed']} -> kept "
            f"{retention['kept']}, {retention['sequences_retracted']} sequences "
            f"retracted, {retention['boundary_pairs_rediffed']} boundary pairs "
            f"re-diffed "
            f"({'BOUNDED' if retention['bounded_recompute'] else 'UNBOUNDED (!)'})"
        )

    payload = {
        "bench": "maintain",
        "api": "engine",
        "iterations": args.iterations,
        "seed": args.seed,
        "window": args.window,
        "parity_queries": args.parity_queries,
        "parity_iterations": args.parity_iterations,
        "workloads": results,
        "pass": all(result["pass"] for result in results.values()),
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")

    if args.strict and not payload["pass"]:
        print("STRICT: maintenance gate not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
