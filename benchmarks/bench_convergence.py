"""T-RT: cost versus wall-clock budget (the paper's ~1-minute searches).

The paper runs MCTS "for around 1 minute to generate each interface".
This bench sweeps the time budget and reports the best cost reached at
each budget — the convergence series behind that choice.  Budgets are
scaled down (laptop CI-friendly) but the shape is what matters: cost is
non-increasing in budget and most of the improvement arrives early.
"""

from __future__ import annotations

from repro.cost import CostModel, sampled_evaluation
from repro.difftree import initial_difftree
from repro.layout import Screen
from repro.search import MCTSConfig, mcts_search
from repro.workloads import listing1_queries

BUDGETS_S = (0.5, 2.0, 6.0)
SEED = 4


def test_cost_vs_budget(benchmark, table_printer):
    queries = listing1_queries()
    initial = initial_difftree(queries)
    initial_cost = sampled_evaluation(
        CostModel(queries, Screen.wide()), initial, k=5
    ).cost

    def run_sweep():
        costs = []
        for budget in BUDGETS_S:
            model = CostModel(queries, Screen.wide())
            result = mcts_search(
                model,
                initial,
                config=MCTSConfig(time_budget_s=budget, seed=SEED),
            )
            costs.append((budget, result.best_cost, result.stats.iterations,
                          result.stats.states_evaluated))
        return costs

    costs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [("0 (initial state)", f"{initial_cost:.2f}", "-", "-")]
    rows += [
        (f"{budget:.1f}s", f"{cost:.2f}", iters, evals)
        for budget, cost, iters, evals in costs
    ]
    table_printer(
        "T-RT — best cost vs MCTS wall-clock budget (Listing-1 log)",
        ["budget", "best cost", "iterations", "states evaluated"],
        rows,
    )
    series = [cost for _, cost, _, _ in costs]
    # Shape: non-increasing in budget, and better than the initial state.
    assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
    assert series[-1] <= initial_cost


def test_incumbent_history_is_monotone(benchmark, table_printer):
    queries = listing1_queries()
    model = CostModel(queries, Screen.wide())
    initial = initial_difftree(queries)

    result = benchmark.pedantic(
        lambda: mcts_search(
            model, initial, config=MCTSConfig(time_budget_s=4.0, seed=SEED)
        ),
        rounds=1,
        iterations=1,
    )
    table_printer(
        "T-RT — incumbent improvements over time",
        ["elapsed (s)", "best cost"],
        [(f"{t:.2f}", f"{c:.2f}") for t, c in result.history],
    )
    costs = [c for _, c in result.history]
    assert costs == sorted(costs, reverse=True)
