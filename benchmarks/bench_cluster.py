"""BENCH-CLUSTER: sharded multi-process serving vs one-process scheduling.

The cluster claim (`repro.serve.cluster.ClusterFront`): when dozens of
growing-log sessions arrive together, sharding them across N worker
processes — each running its own `SessionScheduler` over its own engine
— delivers first interfaces after roughly 1/N of the single-process
rotation, so the cluster's p95 first-interface latency beats one
process by >= 2x at 4 workers, with bit-for-bit identical per-session
costs and difftree fingerprints (iteration-capped seed-fixed searches
are placement-independent).

Durability rides along: a second cluster run SIGKILLs one worker
mid-flight and must still complete *every* session with the same final
costs — survivors rehydrate the dead worker's sessions from the shared
SQLite snapshot store and continue their scripts mid-conversation.

Standalone script (CI smoke target), runnable without pytest:

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --sessions 64 --workers 4 --chunks 2 --chunk-size 2 \
        --iterations 4 --json BENCH_cluster.json --strict

With ``--strict`` the script exits non-zero unless, for every workload:
cluster p95 >= 2x better than the single-process scheduler p95, all
per-session costs *and* fingerprints match, and the kill-one-worker run
completes every session with identical final costs after recovering at
least one session.

The p95 gate is hardware-aware: worker processes can only run
concurrently when the host exposes multiple cores, so on a
single-core host (``min(workers, cores) < 2``) the >= 2x latency gate
is reported informationally instead of enforced — parity, completion,
and crash recovery are *always* enforced, as they are
placement-independent.  (On one core the cluster is strictly overhead:
the workers time-share the core and forfeit the single engine's
cross-session memo sharing.)
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro import Engine, GenerationConfig
from repro.engine import get_workload, workload_names
from repro.serve.cluster import HashRing
import repro.workloads  # noqa: F401  (registers the built-in workloads)


def growing_workloads() -> tuple:
    """Registered growing-log session generators (sdss, tpch, ...)."""
    return workload_names(tag="growing")


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1])."""
    ranked = sorted(values)
    index = max(0, math.ceil(q * len(ranked)) - 1)
    return ranked[index]


def session_scripts(
    workload: str, sessions: int, chunks: int, chunk_size: int
) -> Dict[str, List[Tuple[str, ...]]]:
    """One growing-log script per session, pairwise cache-independent.

    Parity between the single-process scheduler (one shared
    ``InterfaceCache`` across all sessions) and the cluster (one cache
    per worker) is only well-defined when no session's serve hits
    another session's cache entry: a cross-session hit clears the
    hitting session's elite carry, so its *next* search depends on
    whether the colliding session ran in the same cache — i.e. on shard
    placement.  Workload generators can emit colliding prefixes at
    small log sizes (seeds 0..63 of the TPC-H session collide 18
    times at 2 queries), so seeds whose chunk-boundary prefixes map to
    an already-used cache key are skipped.
    """
    from repro.serve.cache import log_key
    from repro.sqlast import parse

    scripts: Dict[str, List[Tuple[str, ...]]] = {}
    factory = get_workload(workload)
    seen_prefix_keys: set = set()
    seed = 0
    while len(scripts) < sessions:
        if seed >= sessions * 50:
            raise RuntimeError(
                f"workload {workload!r} cannot produce {sessions} "
                f"cache-independent sessions of {chunks * chunk_size} queries"
            )
        log = factory(chunks * chunk_size, seed=seed)
        seed += 1
        asts = [parse(q) if isinstance(q, str) else q for q in log]
        boundary_keys = [
            log_key(asts[:end])
            for end in range(chunk_size, len(asts) + 1, chunk_size)
        ]
        if any(key in seen_prefix_keys for key in boundary_keys):
            continue
        seen_prefix_keys.update(boundary_keys)
        scripts[f"{workload}-{len(scripts)}"] = [
            tuple(log[start : start + chunk_size])
            for start in range(0, chunks * chunk_size, chunk_size)
        ]
    return scripts


def run_single(
    scripts: Dict[str, List[Tuple[str, ...]]],
    config: GenerationConfig,
    slice_iterations: int,
) -> dict:
    """The baseline: every session on one round-robin scheduler."""
    engine = Engine(config=config)
    scheduler = engine.scheduler(
        policy="round_robin", slice_iterations=slice_iterations
    )
    for session_id, chunks in scripts.items():
        scheduler.submit(session_id, chunks)
    t0 = time.perf_counter()
    tickets = scheduler.run()
    wall_s = time.perf_counter() - t0
    return {
        "mode": "single-process",
        "wall_s": round(wall_s, 3),
        "all_done": all(t.state == "done" for t in tickets),
        "first_interface_s": {
            t.session_id: round(t.first_interface_s, 4) for t in tickets
        },
        "costs": {
            t.session_id: [round(r.cost, 6) for r in t.reports] for t in tickets
        },
        "fingerprints": {
            t.session_id: [r.difftree.canonical_key for r in t.reports]
            for t in tickets
        },
    }


def run_cluster(
    scripts: Dict[str, List[Tuple[str, ...]]],
    config: GenerationConfig,
    workers: int,
    slice_iterations: int,
    timeout_s: float,
    kill_worker: Optional[int] = None,
    kill_after: int = 1,
) -> dict:
    """Every session across N worker processes (optionally killing one)."""
    engine = Engine(config=config)
    front = engine.cluster(workers=workers, slice_iterations=slice_iterations)
    try:
        for session_id, chunks in scripts.items():
            front.submit(session_id, chunks)
        t0 = time.perf_counter()
        tickets = front.run(
            timeout_s=timeout_s, kill_worker=kill_worker, kill_after=kill_after
        )
        wall_s = time.perf_counter() - t0
        return {
            "mode": "cluster",
            "workers": workers,
            "killed_worker": kill_worker,
            "wall_s": round(wall_s, 3),
            "all_done": all(t.state == "done" for t in tickets),
            "recovered_sessions": sum(1 for t in tickets if t.recovered),
            "first_interface_s": {
                t.session_id: round(t.first_interface_s, 4) for t in tickets
            },
            "costs": {
                t.session_id: [round(c, 6) for c in t.costs] for t in tickets
            },
            "fingerprints": {
                t.session_id: list(t.fingerprints) for t in tickets
            },
        }
    finally:
        front.close()


def effective_parallelism(workers: int) -> int:
    """How many cluster workers can actually run concurrently here."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return min(workers, cores)


def busiest_worker(session_ids, workers: int) -> int:
    """The worker the hash ring loads most (the kill run's best target)."""
    ring = HashRing(range(workers))
    counts = Counter(ring.node_for(sid) for sid in session_ids)
    return counts.most_common(1)[0][0]


def run(
    workload: str,
    sessions: int,
    workers: int,
    chunks: int,
    chunk_size: int,
    iterations: int,
    slice_iterations: int,
    final_cap: int,
    seed: int,
    timeout_s: float,
) -> dict:
    """Compare single-process vs cluster (+ kill run) on one workload."""
    config = GenerationConfig(
        time_budget_s=0.0,  # iteration-capped: equal work, deterministic
        max_iterations=iterations,
        seed=seed,
        final_cap=final_cap,
    )
    scripts = session_scripts(workload, sessions, chunks, chunk_size)

    single = run_single(scripts, config, slice_iterations)
    cluster = run_cluster(scripts, config, workers, slice_iterations, timeout_s)
    kill = run_cluster(
        scripts,
        config,
        workers,
        slice_iterations,
        timeout_s,
        kill_worker=busiest_worker(scripts, workers),
        kill_after=max(1, sessions // 8),
    )

    single_lat = list(single["first_interface_s"].values())
    cluster_lat = list(cluster["first_interface_s"].values())
    single_p95 = percentile(single_lat, 0.95)
    cluster_p95 = percentile(cluster_lat, 0.95)
    parity = (
        cluster["costs"] == single["costs"]
        and cluster["fingerprints"] == single["fingerprints"]
        and single["all_done"]
        and cluster["all_done"]
    )
    recovery_ok = (
        kill["all_done"]
        and kill["costs"] == single["costs"]
        and kill["recovered_sessions"] >= 1
    )
    return {
        "workload": workload,
        "sessions": sessions,
        "workers": workers,
        "chunks": chunks,
        "chunk_size": chunk_size,
        "iterations": iterations,
        "slice_iterations": slice_iterations,
        "final_cap": final_cap,
        "seed": seed,
        "single": single,
        "cluster": cluster,
        "kill_run": kill,
        "single_p50_s": round(percentile(single_lat, 0.5), 4),
        "single_p95_s": round(single_p95, 4),
        "cluster_p50_s": round(percentile(cluster_lat, 0.5), 4),
        "cluster_p95_s": round(cluster_p95, 4),
        "p95_speedup": (
            round(single_p95 / cluster_p95, 3) if cluster_p95 > 0 else None
        ),
        "effective_parallelism": effective_parallelism(workers),
        "p95_gate_enforced": effective_parallelism(workers) >= 2,
        "parity": parity,
        "recovery_ok": recovery_ok,
        "recovered_sessions": kill["recovered_sessions"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sessions", type=int, default=64, help="concurrent sessions per workload"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="cluster worker processes"
    )
    parser.add_argument(
        "--chunks", type=int, default=2, help="growing-log steps per session"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2, help="queries appended per step"
    )
    parser.add_argument(
        "--iterations", type=int, default=4, help="search iterations per interface"
    )
    parser.add_argument(
        "--slice", type=int, default=4, dest="slice_iterations",
        help="iterations per scheduler slice",
    )
    parser.add_argument(
        "--final-cap", type=int, default=120,
        help="widget-enumeration cap of the final phase",
    )
    parser.add_argument("--seed", type=int, default=0, help="search RNG seed")
    parser.add_argument(
        "--timeout", type=float, default=600.0, dest="timeout_s",
        help="per-cluster-run wall-clock bound in seconds",
    )
    parser.add_argument(
        "--workload",
        choices=growing_workloads(),
        action="append",
        help="growing-log scenario(s); default: all registered",
    )
    parser.add_argument("--json", metavar="PATH", help="write machine-readable results")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless p95 speedup >= 2x with exact parity "
        "and a clean kill-one-worker recovery",
    )
    args = parser.parse_args(argv)
    if min(args.sessions, args.workers, args.chunks, args.chunk_size,
           args.iterations) < 1:
        parser.error(
            "--sessions/--workers/--chunks/--chunk-size/--iterations must be >= 1"
        )
    workloads = args.workload or list(growing_workloads())

    results = []
    for workload in workloads:
        results.append(
            run(
                workload,
                args.sessions,
                args.workers,
                args.chunks,
                args.chunk_size,
                args.iterations,
                args.slice_iterations,
                args.final_cap,
                args.seed,
                args.timeout_s,
            )
        )

    print(
        f"\n=== BENCH-CLUSTER — {args.workers} workers vs 1 process, "
        f"{args.sessions} sessions x {args.chunks} growing-log steps, "
        f"{args.iterations} iterations/search ==="
    )
    header = (
        f"{'workload':>10}  {'1-proc p50':>10}  {'1-proc p95':>10}  "
        f"{'clust p50':>9}  {'clust p95':>9}  {'speedup':>8}  "
        f"{'parity':>6}  {'recovery':>8}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result['workload']:>10}  {result['single_p50_s']:>9.2f}s  "
            f"{result['single_p95_s']:>9.2f}s  {result['cluster_p50_s']:>8.2f}s  "
            f"{result['cluster_p95_s']:>8.2f}s  "
            f"{result['p95_speedup']:>7.2f}x  "
            f"{'OK' if result['parity'] else 'FAIL'}  "
            f"{'OK' if result['recovery_ok'] else 'FAIL'}"
            f" ({result['recovered_sessions']} rehydrated)"
        )

    payload = {
        "bench": "cluster",
        "api": "engine.cluster",
        "results": results,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")

    if results and not results[0]["p95_gate_enforced"]:
        print(
            f"note: host exposes {results[0]['effective_parallelism']} "
            "concurrent worker(s); the >= 2x p95 gate needs multi-core "
            "parallelism and is reported informationally only"
        )

    if args.strict:
        failed = [
            r["workload"]
            for r in results
            if not r["parity"]
            or not r["recovery_ok"]
            or (
                r["p95_gate_enforced"]
                and (r["p95_speedup"] is None or r["p95_speedup"] < 2.0)
            )
        ]
        if failed:
            print(
                f"STRICT: acceptance criteria not met for {failed} "
                f"(need parity, clean recovery, and >= 2x p95 speedup "
                "where the host can parallelize)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
