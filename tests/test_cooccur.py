"""Tests for the co-occurrence extension (paper's Ongoing Work)."""

import pytest

from repro.cooccur import CooccurrenceModel
from repro.difftree import assignment_for, enumerate_queries, initial_difftree
from repro.rules import forward_engine
from repro.sqlast import parse


def factored(sqls):
    engine = forward_engine()
    tree = initial_difftree([parse(q) for q in sqls])
    while True:
        moves = [m for m in engine.moves(tree) if m.rule_name != "Multi"]
        if not moves:
            return tree
        tree = engine.apply(tree, moves[0])


LOG = (
    "select objid from stars where u < 10",
    "select objid from stars where u < 20",
    "select count(*) from galaxies where u < 10",
)


@pytest.fixture
def fitted():
    queries = [parse(q) for q in LOG]
    tree = factored(LOG)
    return tree, queries, CooccurrenceModel.from_log(tree, queries)


class TestCooccurrence:
    def test_counts_all_queries(self, fitted):
        _, queries, model = fitted
        assert model.num_queries == len(queries)

    def test_observed_assignments_are_likely(self, fitted):
        tree, queries, model = fitted
        for query in queries:
            assignment = assignment_for(tree, query)
            assert model.is_likely(assignment)
            assert model.assignment_support(assignment) >= 1

    def test_unwitnessed_combination_is_unlikely(self, fitted):
        tree, queries, model = fitted
        # count(*) over stars with u < 20 was never in the log.
        novel = parse("select count(*) from stars where u < 20")
        assignment = assignment_for(tree, novel)
        if assignment is None:
            pytest.skip("tree does not generalize to the novel query")
        assert not model.is_likely(assignment)
        assert model.unlikely_pairs(assignment)

    def test_pair_support_symmetric(self, fitted):
        tree, queries, model = fitted
        assignment = assignment_for(tree, queries[0])
        items = sorted(assignment.items())
        if len(items) >= 2:
            (pa, va), (pb, vb) = items[0], items[1]
            assert model.pair_support(pa, va, pb, vb) == model.pair_support(
                pb, vb, pa, va
            )

    def test_generalization_ratio(self, fitted):
        tree, queries, model = fitted
        sample = []
        for query in enumerate_queries(tree, limit=50):
            assignment = assignment_for(tree, query)
            if assignment is not None:
                sample.append(assignment)
        ratio = model.generalization_ratio(sample)
        assert 0.0 < ratio <= 1.0
        # The tree generalizes: some expressible states are unwitnessed.
        assert ratio < 1.0

    def test_empty_sample_ratio_is_one(self, fitted):
        _, _, model = fitted
        assert model.generalization_ratio([]) == 1.0

    def test_inexpressible_queries_skipped(self):
        tree = factored(LOG)
        model = CooccurrenceModel.from_log(
            tree, [parse("select nothing from nowhere")]
        )
        assert model.num_queries == 0

    def test_sdss_log_fit(self):
        from repro.workloads import listing1_sql, listing1_queries

        tree = factored(listing1_sql())
        model = CooccurrenceModel.from_log(tree, listing1_queries())
        assert model.num_queries == 10
        for query in listing1_queries():
            assert model.is_likely(assignment_for(tree, query))
