"""Tests for the in-memory storage engine and query executor."""

import pytest

from repro.database import (
    Database,
    ExecutionError,
    ResultSet,
    SchemaError,
    Table,
    execute,
)
from repro.sqlast import parse


@pytest.fixture
def db():
    sales = Table(
        "sales",
        {
            "cty": ["USA", "EUR", "USA", "APAC"],
            "sales": [10, 20, 30, 40],
            "costs": [5, 15, 25, 35],
        },
    )
    tiny = Table("tiny", {"x": [1]})
    return Database([sales, tiny])


class TestStorage:
    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("bad", {"a": [1, 2], "b": [1]})

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            Table("bad", {})

    def test_row_access(self, db):
        assert db.table("sales").row(0) == {"cty": "USA", "sales": 10, "costs": 5}

    def test_unknown_column(self, db):
        with pytest.raises(SchemaError):
            db.table("sales").column("nope")

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.table("nope")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add_table(Table("sales", {"x": [1]}))

    def test_select_rows(self, db):
        subset = db.table("sales").select_rows([0, 2])
        assert subset.num_rows == 2
        assert subset.column("sales") == [10, 30]

    def test_column_type(self, db):
        assert db.table("sales").column_type("sales") is int
        assert db.table("sales").column_type("cty") is str

    def test_result_set_validation(self):
        with pytest.raises(SchemaError):
            ResultSet(["a", "b"], [(1,)])

    def test_result_set_column(self):
        rs = ResultSet(["a", "b"], [(1, 2), (3, 4)])
        assert rs.column("b") == [2, 4]
        assert rs.first() == (1, 2)
        assert rs.to_dicts()[1] == {"a": 3, "b": 4}


class TestExecutor:
    def run(self, db, sql):
        return execute(db, parse(sql))

    def test_simple_projection(self, db):
        rs = self.run(db, "select sales from sales")
        assert rs.columns == ["sales"]
        assert rs.column("sales") == [10, 20, 30, 40]

    def test_star_projection(self, db):
        rs = self.run(db, "select * from sales")
        assert set(rs.columns) == {"cty", "sales", "costs"}

    def test_where_equality(self, db):
        rs = self.run(db, "select sales from sales where cty = 'USA'")
        assert rs.column("sales") == [10, 30]

    def test_where_between(self, db):
        rs = self.run(db, "select sales from sales where sales between 15 and 35")
        assert rs.column("sales") == [20, 30]

    def test_where_in(self, db):
        rs = self.run(db, "select sales from sales where cty in ('EUR', 'APAC')")
        assert rs.column("sales") == [20, 40]

    def test_where_and_or_not(self, db):
        rs = self.run(
            db,
            "select sales from sales where not cty = 'USA' and (sales < 25 or sales > 35)",
        )
        assert rs.column("sales") == [20, 40]

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("<", [10]),
            ("<=", [10, 20]),
            (">", [30, 40]),
            (">=", [20, 30, 40]),
            ("<>", [10, 30, 40]),
            ("=", [20]),
        ],
    )
    def test_comparison_operators(self, db, op, expected):
        rs = self.run(db, f"select sales from sales where sales {op} 20")
        assert rs.column("sales") == expected

    def test_top(self, db):
        rs = self.run(db, "select top 2 sales from sales")
        assert rs.column("sales") == [10, 20]

    def test_limit(self, db):
        rs = self.run(db, "select sales from sales limit 3")
        assert rs.num_rows == 3

    def test_count_star(self, db):
        rs = self.run(db, "select count(*) from sales")
        assert rs.rows == [(4,)]
        assert rs.columns == ["count(*)"]

    def test_aggregates(self, db):
        rs = self.run(db, "select sum(sales), avg(sales), min(sales), max(sales) from sales")
        assert rs.rows == [(100, 25.0, 10, 40)]

    def test_group_by(self, db):
        rs = self.run(db, "select cty, count(*) from sales group by cty")
        assert dict(rs.rows) == {"USA": 2, "EUR": 1, "APAC": 1}

    def test_group_by_with_aggregate_ordering(self, db):
        rs = self.run(db, "select cty, sum(sales) from sales group by cty")
        as_dict = dict(rs.rows)
        assert as_dict["USA"] == 40

    def test_order_by_desc(self, db):
        rs = self.run(db, "select sales from sales order by sales desc")
        assert rs.column("sales") == [40, 30, 20, 10]

    def test_order_by_then_top(self, db):
        rs = self.run(db, "select top 1 sales from sales order by sales desc")
        assert rs.column("sales") == [40]

    def test_cross_product(self, db):
        rs = self.run(db, "select x from sales, tiny")
        assert rs.num_rows == 4

    def test_qualified_column(self, db):
        rs = self.run(db, "select sales.cty from sales")
        assert rs.num_rows == 4

    def test_aggregate_ignores_nulls(self):
        t = Table("t", {"x": [1, None, 3]})
        rs = execute(Database([t]), parse("select avg(x) from t"))
        assert rs.rows == [(2.0,)]

    def test_comparison_with_null_is_false(self):
        t = Table("t", {"x": [1, None]})
        rs = execute(Database([t]), parse("select x from t where x < 10"))
        assert rs.column("x") == [1]

    def test_unknown_column_raises(self, db):
        with pytest.raises(ExecutionError):
            self.run(db, "select nope from sales")

    def test_bare_column_with_aggregate_raises(self, db):
        with pytest.raises(ExecutionError):
            self.run(db, "select cty, count(*) from sales")

    def test_order_by_column_not_in_output_raises(self, db):
        with pytest.raises(ExecutionError):
            self.run(db, "select sales from sales order by costs")

    def test_empty_result(self, db):
        rs = self.run(db, "select sales from sales where sales > 1000")
        assert rs.num_rows == 0


class TestDatagen:
    def test_sdss_schema(self):
        from repro.datagen import make_sdss_database

        db = make_sdss_database(rows_per_table=50, seed=7)
        assert set(db.table_names) == {"stars", "galaxies", "quasars"}
        stars = db.table("stars")
        for col in ("objid", "u", "g", "r", "i", "z", "ra", "dec", "redshift"):
            assert stars.has_column(col)
        assert stars.num_rows == 50

    def test_sdss_deterministic(self):
        from repro.datagen import make_sdss_database

        a = make_sdss_database(rows_per_table=20, seed=3)
        b = make_sdss_database(rows_per_table=20, seed=3)
        assert a.table("quasars").column("u") == b.table("quasars").column("u")

    def test_sdss_magnitudes_in_range(self):
        from repro.datagen import make_sdss_database

        db = make_sdss_database(rows_per_table=100, seed=1)
        for table in db.table_names:
            for band in "ugriz":
                values = db.table(table).column(band)
                assert all(0.0 <= v <= 30.0 for v in values)

    def test_listing1_queries_run_on_sdss(self):
        from repro.datagen import make_sdss_database
        from repro.workloads import listing1_queries

        db = make_sdss_database(rows_per_table=60, seed=2)
        for query in listing1_queries():
            execute(db, query)  # must not raise
