"""Batch cost kernel parity: vectorized populations vs the scalar kernel.

The batch kernel's contract (see ``repro/cost/batch.py``) is *exact*
parity: every per-candidate ``CostBreakdown`` extracted from a batched
population must equal the scalar compiled kernel's result bit for bit —
including after chains of batched ``apply_delta`` patches, in any patch
order.  These tests enforce that on randomized states and populations
(hypothesis-driven), and pin the gate/fallback plumbing: the
``memo.batch`` gate changes throughput, never results.
"""

import random

import pytest

np = pytest.importorskip("numpy")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import memo
from repro.cost import (
    BatchCostKernel,
    CostModel,
    coordinate_descent,
    exhaustive_evaluation,
    sampled_evaluation,
    worst_sampled_evaluation,
)
from repro.cost.batch import STATS as BATCH_STATS
from repro.cost.batch import available
from repro.difftree import initial_difftree
from repro.layout import Screen
from repro.rules import default_engine
from repro.sqlast import parse
from repro.workloads import sdss_session_sql, tpch_session_sql

WORKLOADS = {
    "sdss": sdss_session_sql(8, seed=3),
    "tpch": tpch_session_sql(8, seed=5),
}

_STATE_CACHE = {}


@pytest.fixture(scope="module", autouse=True)
def _release_cached_models():
    """Drop cached CostModels at module teardown.

    Their per-instance caches are weak obs sources; keeping the models
    alive for the whole pytest session would leak ``cache.cost.*``
    entries into later tests' registry snapshots (test_obs asserts they
    vanish with their owner).
    """
    yield
    _STATE_CACHE.clear()


def state_and_model(workload, walk_seed, steps=6):
    """A (cached) random-walk state with its model and scalar kernel."""
    key = (workload, walk_seed, steps)
    if key not in _STATE_CACHE:
        asts = [parse(q) for q in WORKLOADS[workload]]
        engine = default_engine()
        rng = random.Random(walk_seed)
        state = initial_difftree(asts)
        for _ in range(steps):
            move = engine.random_move(state, rng)
            if move is None:
                break
            state = engine.apply(state, move)
        model = CostModel(asts, Screen.wide())
        _STATE_CACHE[key] = (state, model, model.kernel_for(state))
    return _STATE_CACHE[key]


def assert_column_parity(kernel, batch_breakdowns, vectors, context=""):
    for j, vector in enumerate(vectors):
        scalar = kernel.evaluate(tuple(vector))
        batched = batch_breakdowns.breakdown(j)
        assert batched == scalar, (
            f"batch/scalar divergence {context} column {j}:\n"
            f"  batch:  {batched}\n"
            f"  scalar: {scalar}"
        )


class TestPopulationParity:
    """evaluate_population columns == scalar evaluations, bit for bit."""

    @settings(max_examples=20, deadline=None)
    @given(
        workload=st.sampled_from(sorted(WORKLOADS)),
        walk_seed=st.integers(0, 7),
        pop_seed=st.integers(0, 1000),
        population=st.integers(1, 9),
    )
    def test_random_populations(self, workload, walk_seed, pop_seed, population):
        state, model, kernel = state_and_model(workload, walk_seed)
        rng = random.Random(pop_seed)
        vectors = [kernel.schema.random_vector(rng) for _ in range(population)]
        batch = BatchCostKernel(kernel)
        bb = batch.evaluate_population(vectors)
        assert_column_parity(kernel, bb, vectors, context=workload)

    @settings(max_examples=15, deadline=None)
    @given(
        workload=st.sampled_from(sorted(WORKLOADS)),
        walk_seed=st.integers(0, 7),
        chain_seed=st.integers(0, 1000),
    )
    def test_mixed_delta_chains(self, workload, walk_seed, chain_seed):
        """Batched apply_delta chains (mixed widget/orientation decisions,
        per-column values) stay bit-identical to scalar evaluation."""
        state, model, kernel = state_and_model(workload, walk_seed)
        schema = kernel.schema
        if not schema.decisions:
            return
        rng = random.Random(chain_seed)
        K = 4
        columns = [schema.random_vector(rng) for _ in range(K)]
        batch = BatchCostKernel(kernel)
        batch.set_population([list(v) for v in columns])
        for step in range(12):
            index = rng.randrange(len(schema.decisions))
            options = schema.options_for(index)
            values = [options[rng.randrange(len(options))] for _ in range(K)]
            for j in range(K):
                columns[j][index] = values[j]
            batch.apply_delta(index, values)
            bb = batch.breakdowns()
            assert_column_parity(
                kernel, bb, columns, context=f"{workload} step {step}"
            )

    def test_best_and_worst_index_match_scalar_scan(self):
        state, model, kernel = state_and_model("sdss", 2)
        rng = random.Random(17)
        vectors = [kernel.schema.random_vector(rng) for _ in range(24)]
        batch = BatchCostKernel(kernel)
        bb = batch.evaluate_population(vectors)
        scalars = [kernel.evaluate(tuple(v)) for v in vectors]
        best = min(range(len(scalars)), key=lambda j: scalars[j].rank)
        assert bb.best_index() == best
        feasible = [j for j, s in enumerate(scalars) if s.feasible]
        if feasible:
            worst = max(feasible, key=lambda j: scalars[j].total)
            assert bb.worst_index() == worst


class TestDeltaOrderIndependence:
    def test_permuted_apply_delta_orders_converge(self):
        """Patching the same decisions in any order gives the same state."""
        state, model, kernel = state_and_model("tpch", 1)
        schema = kernel.schema
        rng = random.Random(23)
        K = 5
        base = [schema.random_vector(rng) for _ in range(K)]
        indices = list(range(len(schema.decisions)))
        rng.shuffle(indices)
        indices = indices[: min(6, len(indices))]
        patches = []
        for index in indices:
            options = schema.options_for(index)
            patches.append(
                (index, [options[rng.randrange(len(options))] for _ in range(K)])
            )

        def run(order):
            batch = BatchCostKernel(kernel)
            batch.set_population([list(v) for v in base])
            for index, values in order:
                batch.apply_delta(index, values)
            return batch.breakdowns()

        forward = run(patches)
        shuffled = list(patches)
        rng.shuffle(shuffled)
        backward = run(list(reversed(patches)))
        permuted = run(shuffled)
        for j in range(K):
            assert forward.breakdown(j) == backward.breakdown(j)
            assert forward.breakdown(j) == permuted.breakdown(j)

    def test_apply_delta_equals_fresh_population(self):
        """A delta-patched population == set_population from scratch."""
        state, model, kernel = state_and_model("sdss", 4)
        schema = kernel.schema
        rng = random.Random(29)
        K = 3
        columns = [schema.random_vector(rng) for _ in range(K)]
        patched = BatchCostKernel(kernel)
        patched.set_population([list(v) for v in columns])
        for _ in range(8):
            index = rng.randrange(len(schema.decisions))
            options = schema.options_for(index)
            values = [options[rng.randrange(len(options))] for _ in range(K)]
            for j in range(K):
                columns[j][index] = values[j]
            patched.apply_delta(index, values)
        fresh = BatchCostKernel(kernel)
        fresh.set_population([list(v) for v in columns])
        for j in range(K):
            assert patched.breakdowns().breakdown(j) == fresh.breakdowns().breakdown(j)


class TestEnumeration:
    def test_enumerate_best_matches_scalar_enumeration(self):
        state, model, kernel = state_and_model("tpch", 3)
        cap = min(600, kernel.schema.num_assignments)
        batch = BatchCostKernel(kernel)
        vector, breakdown = batch.enumerate_best(cap=cap, chunk=64)
        best = None
        best_vector = None
        for v, b in kernel.iter_enumeration(cap=cap):
            if best is None or b.rank < best.rank:
                # iter_enumeration mutates its vector in place — snapshot.
                best, best_vector = b, tuple(v)
        assert breakdown == best
        assert vector == best_vector


class TestGateAndCounters:
    def test_gate_off_routes_to_scalar(self):
        state, model, kernel = state_and_model("sdss", 5)
        with memo.batch(False):
            assert model.batch_kernel_for(state) is None
        with memo.batch(True):
            assert model.batch_kernel_for(state) is not None

    @pytest.mark.parametrize(
        "optimizer",
        [
            lambda m, s: sampled_evaluation(m, s, k=20, rng=random.Random(7)),
            lambda m, s: exhaustive_evaluation(m, s, cap=400),
            lambda m, s: coordinate_descent(m, s),
            lambda m, s: worst_sampled_evaluation(m, s, k=20, rng=random.Random(7)),
        ],
        ids=["sampled", "exhaustive", "descent", "worst"],
    )
    def test_gate_changes_throughput_never_results(self, optimizer):
        asts = [parse(q) for q in WORKLOADS["sdss"]]
        state = initial_difftree(asts)
        with memo.batch(True):
            on = optimizer(CostModel(asts, Screen.wide()), state)
        with memo.batch(False):
            off = optimizer(CostModel(asts, Screen.wide()), state)
        assert on.breakdown == off.breakdown
        assert on.widget_tree == off.widget_tree

    def test_population_stats_and_obs_source(self):
        from repro.obs import REGISTRY

        state, model, kernel = state_and_model("tpch", 6)
        before = BATCH_STATS.snapshot()
        batch = BatchCostKernel(kernel)
        rng = random.Random(31)
        batch.evaluate_population(
            [kernel.schema.random_vector(rng) for _ in range(7)]
        )
        after = BATCH_STATS.snapshot()
        assert after["batched_evals"] - before["batched_evals"] == 7
        assert after["batch_calls"] - before["batch_calls"] == 1
        assert after["max_batch_size"] >= 7
        assert model.kernel_stats.batched_evals >= 7
        assert "cost.kernel.batch" in REGISTRY.sources()

    def test_fallback_counts_only_failed_compiles(self, monkeypatch):
        from repro.cost import evaluate as evaluate_mod

        state, model, kernel = state_and_model("sdss", 7)
        monkeypatch.setattr(
            type(model), "batch_kernel_for", lambda self, tree: None
        )
        before = BATCH_STATS.snapshot()["fallback_scalar_evals"]
        with memo.batch(True):
            result = evaluate_mod._batch_for(model, state, 32)
        assert result is None
        assert BATCH_STATS.snapshot()["fallback_scalar_evals"] == before + 32
        assert model.kernel_stats.batch_fallback_evals >= 32
        # Small one-shot populations route to scalar *by design* — no
        # fallback is counted for them.
        before = BATCH_STATS.snapshot()["fallback_scalar_evals"]
        with memo.batch(True):
            assert evaluate_mod._batch_for(model, state, 2) is None
        assert BATCH_STATS.snapshot()["fallback_scalar_evals"] == before


class TestValidation:
    def test_population_shape_errors(self):
        state, model, kernel = state_and_model("sdss", 0)
        batch = BatchCostKernel(kernel)
        with pytest.raises(ValueError):
            batch.set_population([])
        with pytest.raises(ValueError):
            batch.set_population([kernel.schema.greedy_vector()[:-1]])
        with pytest.raises(ValueError):
            batch.evaluate_population([["no-such-option"] * len(kernel.schema.decisions)])

    def test_apply_delta_validation(self):
        state, model, kernel = state_and_model("sdss", 0)
        batch = BatchCostKernel(kernel)
        vector = kernel.schema.greedy_vector()
        batch.set_population([vector, list(vector)])
        with pytest.raises(ValueError, match="out of range"):
            batch.apply_delta(len(kernel.schema.decisions), [vector[0]] * 2)
        with pytest.raises(ValueError):
            batch.apply_delta(0, [vector[0]])  # wrong column count

    def test_available_reports_numpy(self):
        assert available()  # importorskip guaranteed numpy above
