"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sqlast.errors import LexError
from repro.sqlast.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PUNCT,
    STRING,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == KEYWORD for t in tokens[:-1])
        assert all(t.text == "select" for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        assert texts("objid RA MyCol") == ["objid", "RA", "MyCol"]
        assert kinds("objid")[:-1] == [IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("col_1 _x a2b") == ["col_1", "_x", "a2b"]

    def test_integer_and_float_numbers(self):
        tokens = tokenize("10 3.5 0.25")
        assert [t.kind for t in tokens[:-1]] == [NUMBER] * 3
        assert [t.text for t in tokens[:-1]] == ["10", "3.5", "0.25"]

    def test_leading_dot_float(self):
        assert texts(".5") == [".5"]

    def test_qualified_name_is_not_a_float(self):
        assert texts("t.col") == ["t", ".", "col"]
        assert kinds("t.col")[:-1] == [IDENT, PUNCT, IDENT]

    def test_single_and_double_quoted_strings(self):
        assert texts("'USA' \"EUR\"") == ["USA", "EUR"]
        assert kinds("'USA'")[:-1] == [STRING]

    def test_escaped_quote_inside_string(self):
        assert texts("'it''s'") == ["it's"]

    def test_operators(self):
        assert texts("= < > <= >= <> !=") == ["=", "<", ">", "<=", ">=", "<>", "!="]
        assert all(k == OP for k in kinds("= <= <>")[:-1])

    def test_punctuation(self):
        assert texts("( ) , *") == ["(", ")", ",", "*"]

    def test_eof_token_is_appended(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == EOF


class TestEdgeCases:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_whitespace_only(self):
        assert len(tokenize("  \n\t  ")) == 1

    def test_line_comment_is_skipped(self):
        assert texts("select -- comment here\n x") == ["select", "x"]

    def test_comment_at_end_without_newline(self):
        assert texts("x -- trailing") == ["x"]

    def test_positions_are_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a ; b")

    def test_matches_helper(self):
        token = tokenize("select")[0]
        assert token.matches(KEYWORD)
        assert token.matches(KEYWORD, "select")
        assert not token.matches(KEYWORD, "from")
        assert not token.matches(IDENT)
