"""Tests for expressibility matching, assignments, and enumeration."""

import pytest

from repro.difftree import (
    EMPTY_NODE,
    all_node,
    any_node,
    assignment_for,
    changed_choices,
    count_queries,
    enumerate_queries,
    expresses,
    expresses_all,
    initial_difftree,
    multi_node,
    opt_node,
    wrap_ast,
)
from repro.rules import default_engine, forward_engine
from repro.sqlast import parse


def factored(queries, skip_multi=True):
    """Drive forward rules to a fixpoint (deterministic helper)."""
    engine = forward_engine()
    tree = initial_difftree(queries)
    while True:
        moves = engine.moves(tree)
        if skip_multi:
            moves = [m for m in moves if m.rule_name != "Multi"]
        if not moves:
            return tree
        tree = engine.apply(tree, moves[0])


class TestExpresses:
    def test_initial_tree_expresses_inputs(self, fig1_queries, fig1_tree):
        assert expresses_all(fig1_tree, fig1_queries)

    def test_does_not_express_unrelated(self, fig1_tree):
        assert not expresses(fig1_tree, parse("select zzz from nowhere"))

    def test_factored_tree_expresses_inputs(self, fig1_queries):
        tree = factored(fig1_queries)
        assert expresses_all(tree, fig1_queries)

    def test_factored_tree_generalizes(self, fig1_queries):
        # Figure 4: the factored tree also expresses sales+EUR (not in log).
        tree = factored(fig1_queries)
        assert expresses(tree, parse("SELECT sales FROM sales WHERE cty = 'EUR'"))
        assert expresses(tree, parse("SELECT sales FROM sales"))

    def test_opt_expresses_absence(self):
        q_with = parse("select a from t where x < 1")
        q_without = parse("select a from t")
        tree = factored([q_with, q_without])
        assert expresses(tree, q_with)
        assert expresses(tree, q_without)

    def test_multi_expresses_variable_repetitions(self):
        queries = [
            parse("select a from t where x < 1"),
            parse("select a from t where x < 1 and x < 1"),
        ]
        base = wrap_ast(queries[1])
        # Hand-build: And children merged into MULTI.
        engine = forward_engine()
        tree = initial_difftree(queries)
        moves = [m for m in engine.moves(tree)]
        # Whatever the rule path, the invariant below must hold for three
        # repetitions too once a MULTI exists.
        for move in moves:
            after = engine.apply(tree, move)
            assert expresses_all(after, queries)

    def test_multi_matches_zero_and_many(self):
        template = wrap_ast(parse("select a from t").child_by_label("Project").children[0])
        tree = all_node("Project", None, (multi_node(template),))
        assert count_queries(tree, multi_cap=3) == 4  # 0..3 repetitions

    def test_sdss_log_expressible_through_factoring(self, sdss_queries):
        tree = factored(sdss_queries)
        assert expresses_all(tree, sdss_queries)


class TestAssignments:
    def test_assignment_roundtrip_via_instantiate(self, fig1_queries):
        from repro.interface import instantiate

        tree = factored(fig1_queries)
        for query in fig1_queries:
            assignment = assignment_for(tree, query)
            assert assignment is not None
            assert instantiate(tree, assignment) == query

    def test_assignment_none_for_inexpressible(self, fig1_tree):
        assert assignment_for(fig1_tree, parse("select q from q")) is None

    def test_changed_choices_between_queries(self, fig1_queries):
        tree = factored(fig1_queries)
        a = assignment_for(tree, fig1_queries[0])
        b = assignment_for(tree, fig1_queries[1])
        changed = changed_choices(a, b)
        assert changed  # projection + literal differ
        assert changed_choices(a, a) == []

    def test_changed_includes_missing_keys(self):
        assert changed_choices({(0,): 1}, {}) == [(0,)]

    def test_opt_assignment_values(self):
        q_with = parse("select a from t where x < 1")
        q_without = parse("select a from t")
        tree = factored([q_with, q_without])
        with_a = assignment_for(tree, q_with)
        without_a = assignment_for(tree, q_without)
        assert True in with_a.values()
        assert False in without_a.values()


class TestCounting:
    def test_initial_counts_inputs(self, fig1_queries, fig1_tree):
        assert count_queries(fig1_tree) == 3

    def test_factored_counts_product(self, fig1_queries):
        tree = factored(fig1_queries)
        # 2 projections x (absent + 2 literals) = 6 (paper: "can express
        # more queries than the initial difftree").
        assert count_queries(tree) == 6

    def test_enumerate_contains_inputs(self, fig1_queries):
        tree = factored(fig1_queries)
        enumerated = enumerate_queries(tree, limit=100)
        for query in fig1_queries:
            assert query in enumerated

    def test_enumerate_respects_limit(self, sdss_queries):
        tree = factored(sdss_queries)
        assert len(enumerate_queries(tree, limit=10)) == 10

    def test_enumerate_unique(self, fig1_queries):
        tree = factored(fig1_queries)
        out = enumerate_queries(tree, limit=1000)
        assert len(out) == len(set(out))

    def test_opt_counting(self):
        leaf = all_node("ColExpr", "a")
        tree = all_node("Project", None, (opt_node(leaf),))
        assert count_queries(tree) == 2
