"""Tests for the serving layer: streams, cache, incremental generation,
warm-started search, and the batch worker pool."""

import pytest

from repro import GenerationConfig, Screen, generate_interface
from repro.cost import CostModel
from repro.difftree import (
    as_asts,
    expresses_all,
    extend_difftree,
    graft,
    initial_difftree,
    wrap_ast,
)
from repro.search import MCTSConfig, mcts_search
from repro.serve import (
    DEFAULT_SESSION,
    InterfaceCache,
    IncrementalGenerator,
    LogStream,
    SessionRouter,
    context_key,
    generate_interfaces_batch,
)
from repro.sqlast import parse
from repro.workloads import listing1_sql, sdss_session_sql

#: A fast config for tests that exercise plumbing, not search quality.
FAST = GenerationConfig(time_budget_s=0.3, seed=0)


class TestLogStream:
    def test_append_and_version(self):
        stream = LogStream()
        assert len(stream) == 0
        assert stream.append(listing1_sql()[0]) == 1
        assert stream.version == 1

    def test_parse_once(self):
        stream = LogStream()
        sql = listing1_sql()[0]
        stream.append(sql, sql, sql)
        assert stream.parses == 1
        assert stream.parse_hits == 2
        assert len(stream) == 3

    def test_shared_parse_cache(self):
        cache = {}
        a = LogStream(parse_cache=cache)
        b = LogStream(parse_cache=cache)
        sql = listing1_sql()[0]
        a.append(sql)
        b.append(sql)
        assert a.parses == 1
        assert b.parses == 0
        assert b.parse_hits == 1

    def test_ast_append(self):
        stream = LogStream()
        ast = parse(listing1_sql()[0])
        stream.append(ast)
        assert stream.asts() == (ast,)

    def test_query_keys_match_content(self):
        stream = LogStream()
        stream.append(*listing1_sql(1, 3))
        keys = stream.query_keys()
        assert len(keys) == 3
        assert keys[0] == wrap_ast(parse(listing1_sql()[0])).canonical_key

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            LogStream().append(42)


class TestSessionRouter:
    def test_sessions_isolated(self):
        router = SessionRouter()
        router.append("a", listing1_sql()[0])
        router.append("b", *listing1_sql(1, 2))
        assert len(router.stream("a")) == 1
        assert len(router.stream("b")) == 2

    def test_sharding_stable(self):
        a = SessionRouter(num_shards=8)
        b = SessionRouter(num_shards=8)
        for sid in ("alpha", "beta", "gamma"):
            assert a.shard_of(sid) == b.shard_of(sid)

    def test_same_shard_shares_parse_cache(self):
        router = SessionRouter(num_shards=1)
        sql = listing1_sql()[0]
        router.append("a", sql)
        router.append("b", sql)
        assert router.stream("b").parses == 0

    def test_drop(self):
        router = SessionRouter()
        router.append("a", listing1_sql()[0])
        assert router.drop("a")
        assert not router.drop("a")
        assert len(router.stream("a")) == 0


class TestInterfaceCache:
    def _result(self, n):
        return generate_interface(listing1_sql(1, n), config=FAST)

    def test_hit_miss_stats(self):
        cache = InterfaceCache(capacity=4)
        result = self._result(2)
        key = InterfaceCache.key_for(result.queries, result.screen, FAST)
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.get(key) is result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_reordered_log_hits_same_entry(self):
        cache = InterfaceCache()
        queries = as_asts(listing1_sql(1, 3))
        key_fwd = InterfaceCache.key_for(queries, Screen.wide(), FAST)
        key_rev = InterfaceCache.key_for(list(reversed(queries)), Screen.wide(), FAST)
        assert key_fwd == key_rev

    def test_screen_and_config_in_key(self):
        queries = as_asts(listing1_sql(1, 3))
        wide = InterfaceCache.key_for(queries, Screen.wide(), FAST)
        narrow = InterfaceCache.key_for(queries, Screen.narrow(), FAST)
        other = InterfaceCache.key_for(
            queries, Screen.wide(), GenerationConfig(time_budget_s=9.0)
        )
        assert len({wide, narrow, other}) == 3

    def test_lru_eviction(self):
        cache = InterfaceCache(capacity=2)
        result = self._result(2)
        cache.put("k1", result)
        cache.put("k2", result)
        cache.get("k1")  # refresh k1 -> k2 is now LRU
        cache.put("k3", result)
        assert cache.stats.evictions == 1
        assert cache.get("k2") is None
        assert cache.get("k1") is result
        assert cache.get("k3") is result

    def test_longest_prefix(self):
        cache = InterfaceCache()
        ctx = "ctx"
        short = self._result(2)
        longer = self._result(4)
        keys6 = tuple(f"q{i}" for i in range(6))
        cache.put("short", short, query_keys=keys6[:2], ctx=ctx)
        cache.put("longer", longer, query_keys=keys6[:4], ctx=ctx)
        match = cache.longest_prefix(keys6, ctx)
        assert match is not None
        assert match.result is longer
        assert match.matched == 4
        assert cache.stats.prefix_hits == 1

    def test_prefix_requires_matching_context(self):
        cache = InterfaceCache()
        cache.put("k", self._result(2), query_keys=("a", "b"), ctx="ctx1")
        assert cache.longest_prefix(("a", "b", "c"), "ctx2") is None

    def test_prefix_must_be_proper(self):
        cache = InterfaceCache()
        cache.put("k", self._result(2), query_keys=("a", "b"), ctx="ctx")
        assert cache.longest_prefix(("a", "b"), "ctx") is None
        assert cache.longest_prefix(("a", "x", "c"), "ctx") is None


class TestGraftExtension:
    def test_extension_expresses_everything(self):
        log = sdss_session_sql(12, seed=3)
        result = generate_interface(log[:6], config=FAST)
        extended = extend_difftree(result.difftree, log[6:])
        assert expresses_all(extended, as_asts(log))

    def test_graft_extends_any_domain_in_place(self):
        log = ["select objid from stars where u < 5",
               "select objid from stars where u < 7"]
        base = initial_difftree(as_asts(log))
        # First graft merges into one alternative, creating a deep ANY
        # over the differing literal (+2 nodes: ANY + NumExpr)...
        merged = graft(base, wrap_ast(parse("select objid from stars where u < 9")))
        assert merged.size == base.size + 2
        # ...the next literal then lands in that existing ANY domain
        # (+1 node), not as a whole-query alternative.
        again = graft(merged, wrap_ast(parse("select objid from stars where u < 11")))
        assert again.size == merged.size + 1
        assert expresses_all(
            again,
            as_asts(log + ["select objid from stars where u < 9",
                           "select objid from stars where u < 11"]),
        )

    def test_duplicate_append_returns_same_tree(self):
        log = listing1_sql(1, 4)
        result = generate_interface(log, config=FAST)
        assert extend_difftree(result.difftree, log) is result.difftree


class TestWarmStartedSearch:
    def test_warm_state_seeds_incumbent(self):
        queries = as_asts(listing1_sql(1, 6))
        model = CostModel(queries, Screen.wide())
        initial = initial_difftree(queries)
        # A known-good state: a prior (longer) search's winner.
        prior = mcts_search(
            CostModel(queries, Screen.wide()),
            initial,
            config=MCTSConfig(time_budget_s=1.5, seed=0),
        )
        warm = mcts_search(
            model,
            initial,
            config=MCTSConfig(time_budget_s=0.2, seed=1),
            warm_states=[prior.best_state],
        )
        assert warm.stats.warm_states_seeded == 1
        # The seeded incumbent is a floor: the tiny-budget warm run can
        # never end worse than the seed it was given.
        assert warm.best_cost <= prior.best_cost + 1e-9

    def test_warm_states_rejected_by_baselines(self):
        queries = as_asts(listing1_sql(1, 3))
        tree = initial_difftree(queries)
        with pytest.raises(ValueError):
            generate_interface(
                queries,
                config=GenerationConfig(strategy="greedy", time_budget_s=0.2),
                warm_states=[tree],
            )

    def test_injected_node_table_resumes_search(self):
        """A later search over the same log can continue from a prior
        instance's transposition table: known states are reused and
        their unexpanded frontier re-enters selection."""
        from repro.search import MCTS

        queries = as_asts(listing1_sql(1, 4))
        initial = initial_difftree(queries)
        first = MCTS(
            CostModel(queries, Screen.wide()),
            config=MCTSConfig(time_budget_s=0.4, seed=0),
        )
        first.search(initial)
        table_size = len(first.nodes)
        assert table_size > 1

        resumed = MCTS(
            CostModel(queries, Screen.wide()),
            config=MCTSConfig(time_budget_s=0.4, seed=1),
            node_table=first.nodes,
        )
        result = resumed.search(initial)
        assert resumed.nodes is first.nodes
        assert len(resumed.nodes) >= table_size
        assert result.best.breakdown.feasible

    def test_injected_evaluator_carries_incumbent(self):
        from repro.search import MCTS, StateEvaluator

        queries = as_asts(listing1_sql(1, 4))
        model = CostModel(queries, Screen.wide())
        initial = initial_difftree(queries)
        prior = mcts_search(
            CostModel(queries, Screen.wide()),
            initial,
            config=MCTSConfig(time_budget_s=1.0, seed=0),
        )
        evaluator = StateEvaluator(model, seed=0)
        evaluator.seed_incumbent(prior.best_state)
        floor = evaluator.best.cost
        mcts = MCTS(
            model,
            config=MCTSConfig(time_budget_s=0.2, seed=1),
            evaluator=evaluator,
        )
        result = mcts.search(initial)
        # The reused evaluator's incumbent is a floor for the new run.
        assert result.best_cost <= floor + 1e-9

    def test_frontier_stats_recorded(self):
        queries = as_asts(listing1_sql(1, 3))
        result = mcts_search(
            CostModel(queries, Screen.wide()),
            initial_difftree(queries),
            config=MCTSConfig(time_budget_s=0.5, seed=0),
        )
        assert result.stats.frontier_peak >= 1


class TestIncrementalGenerator:
    def test_cache_hit_runs_zero_search(self):
        svc = IncrementalGenerator(config=FAST)
        svc.append(*listing1_sql(1, 4))
        first = svc.generate()
        searches = svc.searches_run
        iterations = first.search.stats.iterations
        again = svc.generate()
        assert again is first
        assert svc.searches_run == searches
        assert again.search.stats.iterations == iterations
        assert svc.cache.stats.hits == 1

    def test_incremental_appends_express_full_log(self):
        log = sdss_session_sql(12, seed=1)
        svc = IncrementalGenerator(config=FAST)
        for step in range(0, 12, 4):
            svc.append(*log[step : step + 4])
            result = svc.generate()
            assert expresses_all(result.difftree, as_asts(log[: step + 4]))
        assert svc.searches_run == 3

    def test_warm_beats_cold_at_equal_iteration_budget(self):
        """The acceptance contract, deterministically: equal per-step
        iteration caps (generous wall-clock), warm final <= cold final."""
        log = sdss_session_sql(16, seed=0)
        config = GenerationConfig(time_budget_s=30.0, max_iterations=2, seed=0)
        svc = IncrementalGenerator(config=config)
        warm = cold = None
        for step in range(0, 16, 4):
            svc.append(*log[step : step + 4])
            warm = svc.generate()
            cold = generate_interface(log[: step + 4], config=config)
        assert warm.cost <= cold.cost + 1e-9

    def test_sessions_are_independent(self):
        svc = IncrementalGenerator(config=FAST)
        svc.append(*listing1_sql(1, 3), session_id="a")
        svc.append(*listing1_sql(4, 6), session_id="b")
        ra = svc.generate("a")
        rb = svc.generate("b")
        assert expresses_all(ra.difftree, as_asts(listing1_sql(1, 3)))
        assert expresses_all(rb.difftree, as_asts(listing1_sql(4, 6)))

    def test_prefix_warm_start_from_cache(self):
        log = listing1_sql(1, 6)
        svc = IncrementalGenerator(config=FAST)
        svc.append(*log[:4], session_id="a")
        svc.generate("a")
        # A fresh session replays the same prefix plus new queries: no
        # session state, but the cache's prefix entry feeds the warm start.
        svc.append(*log, session_id="b")
        result = svc.generate("b")
        assert svc.cache.stats.prefix_hits == 1
        assert result.search.stats.warm_states_seeded >= 1
        assert expresses_all(result.difftree, as_asts(log))

    def test_empty_session_raises(self):
        with pytest.raises(ValueError):
            IncrementalGenerator(config=FAST).generate()

    def test_non_mcts_strategy_rejected(self):
        with pytest.raises(ValueError):
            IncrementalGenerator(
                config=GenerationConfig(strategy="random")
            )


class TestBatch:
    def test_batch_preserves_order_and_feasibility(self):
        logs = [listing1_sql(1, 2), listing1_sql(3, 4), listing1_sql(5, 6)]
        results = generate_interfaces_batch(logs, config=FAST, max_workers=2)
        assert len(results) == 3
        for log, result in zip(logs, results):
            assert result.best.breakdown.feasible
            assert expresses_all(result.difftree, as_asts(log))

    def test_serial_executor_matches_shape(self):
        logs = [listing1_sql(1, 2)]
        results = generate_interfaces_batch(logs, config=FAST, executor="serial")
        assert len(results) == 1

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            generate_interfaces_batch([listing1_sql(1, 2)], executor="gpu")

    def test_context_key_is_deterministic(self):
        assert context_key(Screen.wide(), FAST) == context_key(Screen.wide(), FAST)
        assert context_key(Screen.wide(), FAST) != context_key(Screen.narrow(), FAST)
