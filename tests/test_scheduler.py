"""Tests for resumable search tasks and the concurrent session scheduler.

The two contracts of ISSUE 4:

* **Slicing parity** — every strategy stepped in arbitrary slices equals
  its monolithic run bit-for-bit at equal totals (seed-fixed).
* **Scheduler parity** — sessions served through the time-slicing
  scheduler (any policy, any worker count) produce exactly the reports a
  serial engine produces, while fairness/admission/cancellation behave
  as declared.
"""

import threading

import pytest

from repro import Engine, GenerationConfig, generate_interface
from repro.cost import BoundedLRU
from repro.core import open_search_task, prepare_search
from repro.engine import POLICIES, SessionScheduler
from repro.search import (
    BeamSearchTask,
    ExhaustiveSearchTask,
    GreedySearchTask,
    RandomSearchTask,
    TaskClock,
    exhaustive_search,
)
from repro.workloads import listing1_sql, sdss_session_sql

#: Iteration-capped, seed-fixed: equal work regardless of wall clock.
DETERMINISTIC = GenerationConfig(
    time_budget_s=0.0, max_iterations=6, seed=0, final_cap=200
)
#: Tiny config for scheduler-mechanics tests (search quality irrelevant).
TINY = GenerationConfig(time_budget_s=0.0, max_iterations=2, seed=0, final_cap=50)

LOG = listing1_sql(1, 3)


def _open_task(config, log=LOG):
    asts, screen, model, initial, engine = prepare_search(log, config=config)
    return open_search_task(model, initial, engine, config)


class TestTaskClock:
    def test_pause_stops_accumulation(self):
        clock = TaskClock()
        clock.pause()
        frozen = clock.elapsed
        assert clock.elapsed == frozen
        clock.resume()
        assert clock.running

    def test_restart_zeroes(self):
        clock = TaskClock()
        clock.pause()
        clock.restart()
        assert clock.running
        assert clock.elapsed < 1.0


class TestSlicingParity:
    def test_mcts_sliced_equals_monolithic(self):
        """step(1)+step(2)+... == one monolithic run at equal iterations."""
        mono = generate_interface(LOG, config=DETERMINISTIC)

        task = _open_task(DETERMINISTIC)
        slices = []
        while not task.done:
            slices.append(task.step(n_iterations=2))
        result = task.result()

        assert result.best_cost == mono.cost
        assert result.stats.iterations == mono.search.stats.iterations
        assert result.stats.states_evaluated == mono.search.stats.states_evaluated
        assert result.best_state.canonical_key == mono.best.tree.canonical_key
        assert sum(slices) == DETERMINISTIC.max_iterations
        assert task.slices >= 3

    def test_mcts_one_iteration_slices(self):
        mono = generate_interface(LOG, config=DETERMINISTIC)
        task = _open_task(DETERMINISTIC)
        while not task.done:
            task.step(n_iterations=1)
        result = task.result()
        assert result.best_cost == mono.cost
        assert result.best_state.canonical_key == mono.best.tree.canonical_key

    def test_step_after_done_is_noop(self):
        task = _open_task(DETERMINISTIC)
        task.step()
        assert task.done
        assert task.step() == 0
        assert task.step(n_iterations=5) == 0

    def test_result_before_done_returns_incumbent(self):
        task = _open_task(DETERMINISTIC)
        task.step(n_iterations=1)
        assert not task.done
        early = task.result()
        assert early.best_cost > 0

    def test_tiny_slice_still_makes_progress(self):
        """An expired slice deadline must not yield zero-progress slices
        forever (the scheduler re-queues preempted sessions)."""
        task = _open_task(DETERMINISTIC)
        steps = 0
        while not task.done:
            performed = task.step(slice_s=1e-9)
            # Zero progress is only legal when the call detected
            # completion (cap/budget reached before the first unit).
            assert performed >= 1 or task.done
            steps += 1
            assert steps <= DETERMINISTIC.max_iterations + 1

    @pytest.mark.parametrize(
        "factory",
        [
            lambda model, initial, engine: RandomSearchTask(
                model, initial, engine=engine, time_budget_s=60.0,
                max_walk_steps=12, seed=3,
            ),
            lambda model, initial, engine: GreedySearchTask(
                model, initial, engine=engine, time_budget_s=60.0,
                restarts=2, seed=3,
            ),
            lambda model, initial, engine: BeamSearchTask(
                model, initial, engine=engine, time_budget_s=60.0,
                beam_width=3, max_depth=4, seed=3,
            ),
            lambda model, initial, engine: ExhaustiveSearchTask(
                model, initial, engine=engine, max_states=60, seed=3
            ),
        ],
        ids=["random", "greedy", "beam", "exhaustive"],
    )
    def test_baseline_sliced_equals_batched(self, factory):
        """One-unit slices equal one big slice at equal unit totals."""
        asts, screen, model, initial, engine = prepare_search(
            LOG, config=DETERMINISTIC
        )
        _, _, model2, initial2, engine2 = prepare_search(
            LOG, config=DETERMINISTIC
        )

        sliced = factory(model, initial, engine)
        units = 0
        while units < 6 and not sliced.done:
            units += sliced.step(n_iterations=1)
        batched = factory(model2, initial2, engine2)
        batched_units = batched.step(n_iterations=units)

        assert batched_units == units
        a, b = sliced.result(), batched.result()
        assert a.best_cost == b.best_cost
        assert a.best_state.canonical_key == b.best_state.canonical_key
        assert a.stats.states_evaluated == b.stats.states_evaluated

    def test_exhaustive_task_matches_function(self):
        asts, screen, model, initial, engine = prepare_search(
            LOG, config=DETERMINISTIC
        )
        mono = exhaustive_search(model, initial, engine=engine, max_states=60)
        _, _, model2, initial2, engine2 = prepare_search(
            LOG, config=DETERMINISTIC
        )
        task = ExhaustiveSearchTask(model2, initial2, engine=engine2, max_states=60)
        while not task.done:
            task.step(n_iterations=3)
        sliced = task.result()
        assert sliced.best_cost == mono.best_cost
        assert sliced.stats.iterations == mono.stats.iterations

    def test_incremental_open_search_sliced_parity(self):
        """Warm-started session searches slice identically too."""
        log = sdss_session_sql(6, seed=0)
        mono_engine = Engine(config=DETERMINISTIC)
        mono_session = mono_engine.session("a")
        sliced_engine = Engine(config=DETERMINISTIC)
        sliced_service = sliced_engine._incremental_service()

        for start in (0, 3):
            chunk = log[start : start + 3]
            mono_session.append(*chunk)
            mono_report = mono_session.interface()

            sliced_service.append(*chunk, session_id="a")
            pending = sliced_service.open_search("a")
            assert pending.cached is None
            while not pending.task.done:
                pending.task.step(n_iterations=2)
            sliced_result = pending.finish()

            assert sliced_result.cost == mono_report.cost
            assert (
                sliced_result.difftree.canonical_key
                == mono_report.difftree.canonical_key
            )


class TestSchedulerMechanics:
    def _scripts(self, n, chunks=2, size=1):
        return {
            f"s{i}": [
                tuple(sdss_session_sql(chunks * size, seed=i)[c * size : (c + 1) * size])
                for c in range(chunks)
            ]
            for i in range(n)
        }

    def test_policies_exposed(self):
        assert set(POLICIES) == {"round_robin", "deadline", "fifo"}

    def test_validation(self):
        engine = Engine(config=TINY)
        with pytest.raises(ValueError, match="policy"):
            engine.scheduler(policy="lifo")
        with pytest.raises(ValueError, match="slice_iterations"):
            engine.scheduler(slice_iterations=0)
        with pytest.raises(ValueError, match="max_active"):
            engine.scheduler(max_active=0)
        scheduler = engine.scheduler()
        with pytest.raises(ValueError, match="non-empty chunk"):
            scheduler.submit("a", [])
        scheduler.submit("a", [LOG])
        with pytest.raises(ValueError, match="unfinished ticket"):
            scheduler.submit("a", [LOG])

    def test_scheduler_requires_warm_capable_strategy(self):
        engine = Engine(config=GenerationConfig(strategy="random", time_budget_s=0.2))
        with pytest.raises(ValueError, match="supports_warm_start"):
            engine.scheduler()

    def test_round_robin_drains_and_accounts(self):
        engine = Engine(config=TINY)
        scheduler = engine.scheduler(slice_iterations=1)
        for sid, chunks in self._scripts(3).items():
            scheduler.submit(sid, chunks)
        tickets = scheduler.run()
        assert [t.state for t in tickets] == ["done"] * 3
        for ticket in tickets:
            assert len(ticket.reports) == 2
            assert ticket.first_interface_s is not None
            assert ticket.iterations == 2 * TINY.max_iterations
            assert ticket.slices >= 2
            scheduling = ticket.reports[0].scheduling
            assert scheduling["policy"] == "round_robin"
            assert scheduling["latency_s"] >= 0.0
            wire = ticket.reports[0].to_dict()
            assert wire["scheduling"]["policy"] == "round_robin"
            assert wire["session_id"] == ticket.session_id

    def test_fifo_serves_in_submission_order(self):
        engine = Engine(config=TINY)
        scheduler = engine.scheduler(policy="fifo")
        for sid, chunks in self._scripts(3).items():
            scheduler.submit(sid, chunks)
        tickets = scheduler.run()
        firsts = [t.first_interface_s for t in tickets]
        assert firsts == sorted(firsts)
        assert all(t.preemptions == 0 for t in tickets)

    def test_deadline_policy_prefers_urgent(self):
        engine = Engine(config=TINY)
        scheduler = engine.scheduler(policy="deadline", slice_iterations=1)
        scripts = self._scripts(2)
        scheduler.submit("s0", scripts["s0"])  # no deadline
        scheduler.submit("s1", scripts["s1"], target_latency_s=0.001)
        tickets = {t.session_id: t for t in scheduler.run()}
        assert tickets["s1"].first_interface_s < tickets["s0"].first_interface_s

    def test_admission_control_queues_and_admits(self):
        engine = Engine(config=TINY)
        scheduler = engine.scheduler(max_active=1, slice_iterations=1)
        scripts = self._scripts(3)
        tickets = [scheduler.submit(sid, chunks) for sid, chunks in scripts.items()]
        assert tickets[0].state == "active"
        assert tickets[1].state == "queued"
        assert tickets[2].state == "queued"
        scheduler.run()
        assert all(t.state == "done" for t in tickets)
        # Later sessions measurably waited for a slot.
        assert tickets[2].queue_wait_s > 0.0
        assert tickets[2].queue_wait_s >= tickets[1].queue_wait_s

    def test_cancellation(self):
        engine = Engine(config=TINY)
        scheduler = engine.scheduler(slice_iterations=1)
        scripts = self._scripts(2, chunks=3)
        for sid, chunks in scripts.items():
            scheduler.submit(sid, chunks)
        # Deliver s0's first interface, then cancel the rest of s0.
        while not scheduler.ticket("s0").reports:
            scheduler.step()
        assert scheduler.cancel("s0") is True
        assert scheduler.cancel("s0") is False  # already cancelled
        tickets = {t.session_id: t for t in scheduler.run()}
        assert tickets["s0"].state == "cancelled"
        assert len(tickets["s0"].reports) < 3
        assert tickets["s1"].state == "done"
        assert len(tickets["s1"].reports) == 3
        # Undelivered chunks rolled back: the log holds exactly the
        # queries of the delivered interfaces, no unserved leftovers.
        delivered = sum(
            len(scripts["s0"][i]) for i in range(len(tickets["s0"].reports))
        )
        assert len(engine.router.stream("s0")) == delivered

    def test_failed_chunk_leaves_log_unchanged(self):
        """A parse error mid-chunk must not leak a partial chunk into the
        session's append-only log (LogStream.append is atomic)."""
        engine = Engine(config=TINY)
        scheduler = engine.scheduler()
        good = sdss_session_sql(1, seed=0)[0]
        scheduler.submit("bad", [(good, "SELECT !!! garbage $$$")])
        (ticket,) = scheduler.run()
        assert ticket.state == "failed"
        assert ticket.error is not None
        assert len(engine.router.stream("bad")) == 0

    def test_cache_hit_delivered_without_search(self):
        engine = Engine(config=TINY)
        log = tuple(sdss_session_sql(2, seed=0))
        first = engine.scheduler()
        first.submit("warmup", [log])
        first.run()
        searches = engine.searches_run
        second = engine.scheduler()
        second.submit("repeat", [log])
        (ticket,) = second.run()
        assert ticket.state == "done"
        assert ticket.reports[0].source == "cache"
        assert engine.searches_run == searches

    def test_scheduler_matches_serial_engine(self):
        """Round-robin slicing must not change any session's results."""
        scripts = self._scripts(3, chunks=2)
        serial_engine = Engine(config=TINY)
        expected = {}
        for sid, chunks in scripts.items():
            session = serial_engine.session(sid)
            costs = []
            for chunk in chunks:
                session.append(*chunk)
                costs.append(session.interface().cost)
            expected[sid] = costs

        engine = Engine(config=TINY)
        scheduler = engine.scheduler(slice_iterations=1)
        for sid, chunks in scripts.items():
            scheduler.submit(sid, chunks)
        tickets = scheduler.run()
        for ticket in tickets:
            assert [r.cost for r in ticket.reports] == expected[ticket.session_id]


class TestThreadedStress:
    def test_eight_sessions_four_workers_match_serial(self):
        """>= 8 concurrent sessions, multi-threaded: per-session results
        must be bit-for-bit the serial ones (the lease keeps each task
        single-threaded; shared caches are lock-protected)."""
        scripts = {
            f"s{i}": [
                tuple(sdss_session_sql(2, seed=i)[:1]),
                tuple(sdss_session_sql(2, seed=i)[1:]),
            ]
            for i in range(8)
        }
        serial_engine = Engine(config=TINY)
        expected = {}
        for sid, chunks in scripts.items():
            session = serial_engine.session(sid)
            costs = []
            for chunk in chunks:
                session.append(*chunk)
                costs.append(session.interface().cost)
            expected[sid] = costs

        engine = Engine(config=TINY)
        scheduler = engine.scheduler(slice_iterations=1)
        for sid, chunks in scripts.items():
            scheduler.submit(sid, chunks)
        tickets = scheduler.run(workers=4)

        assert len(tickets) == 8
        assert all(t.state == "done" for t in tickets), [
            (t.session_id, t.state, t.error) for t in tickets
        ]
        for ticket in tickets:
            assert [r.cost for r in ticket.reports] == expected[ticket.session_id]

    def test_observability_does_not_perturb_threaded_results(self):
        """The same 8-session/4-worker cohort with tracing + telemetry on
        must deliver bit-for-bit the disabled run's costs, and each
        report's trace must contain only its own session's spans."""
        from repro import obs

        scripts = {
            f"s{i}": [
                tuple(sdss_session_sql(2, seed=i)[:1]),
                tuple(sdss_session_sql(2, seed=i)[1:]),
            ]
            for i in range(8)
        }

        def run_cohort():
            engine = Engine(config=TINY)
            scheduler = engine.scheduler(slice_iterations=1)
            for sid, chunks in scripts.items():
                scheduler.submit(sid, chunks)
            return scheduler.run(workers=4)

        obs.configure(enabled=False, telemetry=None)
        baseline = {
            t.session_id: [r.cost for r in t.reports] for t in run_cohort()
        }
        sink = obs.MemoryTelemetry()
        try:
            with obs.observed(True, telemetry=sink):
                tickets = run_cohort()
        finally:
            obs.configure(enabled=False, telemetry=None)

        assert all(t.state == "done" for t in tickets)
        for ticket in tickets:
            assert [r.cost for r in ticket.reports] == baseline[ticket.session_id]
            for report in ticket.reports:
                assert report.trace, "instrumented run must carry spans"
                for span in report.trace:
                    session = span.get("tags", {}).get("session")
                    if session is not None:
                        assert session == ticket.session_id
        # Telemetry carried one replayable record per delivered report.
        assert len(sink.of_type("report")) == sum(
            len(t.reports) for t in tickets
        )


class TestSessionEviction:
    def test_evicted_session_releases_warm_state(self):
        """Past max_sessions the LRU session's warm-start carry and log
        stream are dropped too — the regression was leaking
        IncrementalGenerator state for evicted handles."""
        engine = Engine(config=TINY, max_sessions=2)
        for i in range(3):
            session = engine.session(f"s{i}")
            session.append(*sdss_session_sql(1, seed=i))
            session.interface()
        service = engine._incremental
        assert "s0" not in engine._sessions
        assert "s0" not in service._sessions
        assert "s0" not in engine.router.sessions()
        # Survivors keep their carry.
        assert "s1" in service._sessions
        assert "s2" in service._sessions

    def test_lookup_refreshes_recency(self):
        engine = Engine(config=TINY, max_sessions=2)
        engine.session("a")
        engine.session("b")
        engine.session("a")  # refresh: 'b' is now the LRU entry
        engine.session("c")
        assert "b" not in engine._sessions
        assert "a" in engine._sessions and "c" in engine._sessions

    def test_use_through_retained_handle_refreshes_recency(self):
        """Appends/serves via a retained handle count as use — an
        actively-served session must not be evicted in favor of an idle
        one that was merely looked up later."""
        engine = Engine(config=TINY, max_sessions=2)
        active = engine.session("active")
        engine.session("idle")
        active.append(*sdss_session_sql(1, seed=0))  # touches 'active'
        engine.session("new")  # evicts 'idle', not 'active'
        assert "idle" not in engine._sessions
        assert "active" in engine._sessions
        assert active.log_length == 1

    def test_evicted_session_restarts_cleanly(self):
        engine = Engine(config=TINY, max_sessions=1)
        first = engine.session("a")
        first.append(*sdss_session_sql(1, seed=0))
        engine.session("b")  # evicts 'a'
        fresh = engine.session("a")  # evicts 'b', creates a fresh 'a'
        assert fresh.log_length == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_sessions"):
            Engine(config=TINY, max_sessions=0)


class TestBoundedLRUThreadSafety:
    def test_concurrent_hammer_preserves_bound(self):
        cache = BoundedLRU(64)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(2000):
                    key = (worker * 7 + i) % 200
                    cache[key] = i
                    cache.get((i * 13) % 200)
                    if i % 50 == 0:
                        len(cache), list(cache.items())
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
