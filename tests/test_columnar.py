"""Columnar difftree store: round-trips, kernel parity, topology, wiring.

The columnar contract (``repro/difftree/columnar.py``) is *exact*
interchangeability: ``from_node``/``to_node`` round-trip interned trees
to the same objects, the array kernels (anti-unify, graft, canonical
keys, Steiner/LCA) produce results identical to the object-walk
references on every workload, and the encoding's derived columns obey
the XPath-accelerator identities (subtree = ``(pre, size)`` range,
``post = pre - level + size - 1``).  Property-based tests draw random
query logs and random rewrite walks; workload tests cover the SDSS /
TPC-H / synthetic generators.
"""

import json
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import memo, obs
from repro.cost import CostModel
from repro.difftree import (
    ColumnarTree,
    Topology,
    anti_unify,
    any_node,
    anti_unify_reference,
    canonical_key_reference,
    extend_difftree,
    graft,
    graft_reference,
    initial_difftree,
    wrap_ast,
)
from repro.difftree import columnar as columnar_mod
from repro.difftree.columnar import STATS
from repro.difftree.dtnodes import DTNode
from repro.layout import Screen
from repro.memo import INGEST
from repro.serve import LogStream
from repro.serve.cache import log_key, log_key_fast, log_key_reference
from repro.sqlast import SYMBOLS, head_symbol, parse
from repro.sqlast.symbols import SymbolTable
from repro.workloads import mixed_session_log, sdss_session_sql, tpch_session_sql

_COLUMNS = ["u", "g", "r", "i"]
_TABLES = ["stars", "galaxies"]


@st.composite
def query_sql(draw):
    parts = ["select"]
    if draw(st.booleans()):
        parts.append(f"top {draw(st.sampled_from([10, 100]))}")
    parts.append(draw(st.sampled_from(["objid", "ra", "count(*)"])))
    parts.append(f"from {draw(st.sampled_from(_TABLES))}")
    num_preds = draw(st.integers(min_value=0, max_value=3))
    if num_preds:
        conjuncts = []
        for _ in range(num_preds):
            column = draw(st.sampled_from(_COLUMNS))
            lo = draw(st.integers(min_value=0, max_value=9))
            conjuncts.append(f"{column} between {lo} and {lo + 5}")
        parts.append("where " + " and ".join(conjuncts))
    return " ".join(parts)


@st.composite
def query_log(draw):
    size = draw(st.integers(min_value=1, max_value=6))
    return [draw(query_sql()) for _ in range(size)]


def workload_logs():
    return [
        sdss_session_sql(8, seed=11),
        tpch_session_sql(8, seed=13),
        mixed_session_log(8, seed=17),
    ]


def session_trees(log):
    """The evolving difftrees of a session ingesting ``log``."""
    asts = [parse(q) if isinstance(q, str) else q for q in log]
    tree = initial_difftree([asts[0]])
    trees = [tree]
    for ast in asts[1:]:
        tree = extend_difftree(tree, [ast])
        trees.append(tree)
    return asts, trees


def check_encoding_invariants(tree):
    """Every structural identity the parallel columns promise."""
    ct = ColumnarTree.from_node(tree)
    assert ct.n == tree.size
    assert ct.to_node() is tree
    assert ct.parent[0] == -1 and ct.level[0] == 0
    for i in range(ct.n):
        node = ct.nodes[i]
        assert ct.size[i] == node.size
        assert ct.nkids[i] == len(node.children)
        assert ct.fp[i] == node._hash
        kids = list(ct.children_of(i))
        assert [ct.nodes[j] for j in kids] == list(node.children)
        for j in kids:
            assert ct.parent[j] == i
            assert ct.level[j] == ct.level[i] + 1
            assert ct.contains(i, j)
        # Postorder identity: children precede parents, and the ranks
        # are a permutation of 0..n-1 (checked globally below).
        for j in kids:
            assert ct.post(j) < ct.post(i)
    assert sorted(ct.post(i) for i in range(ct.n)) == list(range(ct.n))


class TestRoundTrip:
    def test_workload_trees_round_trip(self):
        for log in workload_logs():
            asts, trees = session_trees(log)
            for ast in asts:
                assert ColumnarTree.from_node(ast).to_node() is ast
                check_encoding_invariants(wrap_ast(ast))
            for tree in trees:
                check_encoding_invariants(tree)

    @given(query_log())
    @settings(max_examples=40, deadline=None)
    def test_random_trees_round_trip(self, sqls):
        asts = [parse(s) for s in sqls]
        tree = initial_difftree(asts)
        check_encoding_invariants(tree)
        assert ColumnarTree.from_node(tree).to_node() is tree

    def test_payload_round_trip(self):
        for log in workload_logs():
            _, trees = session_trees(log)
            for tree in trees[-2:]:
                payload = json.loads(json.dumps(ColumnarTree.from_node(tree).to_payload()))
                assert ColumnarTree.from_payload(payload).to_node() is tree

    def test_payload_round_trip_ast_mode(self):
        ast = parse(sdss_session_sql(3, seed=5)[0])
        ct = ColumnarTree.from_node(ast)
        assert ct.is_ast
        payload = json.loads(json.dumps(ct.to_payload()))
        assert ColumnarTree.from_payload(payload).to_node() is ast

    def test_payload_version_check(self):
        with pytest.raises(ValueError):
            ColumnarTree.from_payload({"version": 99})


class TestExtend:
    def test_extend_matches_full_encode(self):
        _, trees = session_trees(sdss_session_sql(6, seed=23))
        base = trees[-1]
        extras = [wrap_ast(parse(q)) for q in tpch_session_sql(3, seed=29)]
        ct = ColumnarTree.from_node(base)
        grown = ct.extend(extras)
        expected_root = DTNode(
            base.kind, base.label, base.value, base.children + tuple(extras)
        )
        assert grown.to_node() is expected_root
        full = ColumnarTree._encode(expected_root)
        for column in (
            "kind", "head", "gkey", "nkids", "size",
            "parent", "level", "absent", "fp",
        ):
            assert getattr(grown, column) == getattr(full, column), column
        assert grown.nodes == full.nodes
        # The carried prefix was not re-encoded (O(appended) contract).
        assert grown.n == ct.n + sum(e.size for e in extras)

    def test_extend_rejects_unary_roots(self):
        leaf = wrap_ast(parse("select ra from stars"))
        from repro.difftree import opt_node

        with pytest.raises(ValueError):
            ColumnarTree.from_node(opt_node(leaf)).extend([leaf])

    def test_extend_empty_is_identity(self):
        ct = ColumnarTree.from_node(wrap_ast(parse("select ra from stars")))
        assert ct.extend([]) is ct


class TestCanonicalKeys:
    def test_batch_keys_match_reference(self):
        for log in workload_logs():
            _, trees = session_trees(log)
            for tree in trees:
                ct = ColumnarTree.from_node(tree)
                keys = ct.canonical_keys(use_cache=False)
                assert keys[0] == canonical_key_reference(tree) == tree.canonical_key
                for i in range(ct.n):
                    assert keys[i] == ct.nodes[i].canonical_key

    def test_ast_mode_keys_match_wrapped(self):
        for sql in sdss_session_sql(4, seed=31):
            ast = parse(sql)
            keys = ColumnarTree.from_node(ast).canonical_keys()
            assert keys[0] == wrap_ast(ast).canonical_key

    def test_batch_hook_fires_on_cold_large_trees(self):
        # Fresh literals so no subtree is already keyed from other tests;
        # assembled with any_node directly because normalize() keys the
        # alternatives while sorting them.
        sqls = [
            f"select objid from stars where r between {i}.125 and {i}.875"
            for i in range(40)
        ]
        tree = any_node([wrap_ast(parse(s)) for s in sqls])
        assert tree.size >= 256
        assert all(c._key is None for c in tree.children)
        before = STATS.key_batches
        key = tree.canonical_key
        assert STATS.key_batches == before + 1
        assert key == canonical_key_reference(tree)

    def test_batch_hook_skips_warm_trees(self):
        _, trees = session_trees(tpch_session_sql(6, seed=37))
        tree = trees[-1]
        tree.canonical_key  # key everything once
        before = STATS.key_batches
        assert tree.canonical_key == canonical_key_reference(tree)
        assert STATS.key_batches == before


class TestKernelParity:
    def test_workload_anti_unify_and_graft_parity(self):
        for log in workload_logs():
            asts, _ = session_trees(log)
            wrapped = [wrap_ast(a) for a in asts]
            tree = initial_difftree([asts[0]])
            for query in wrapped[1:]:
                with memo.fast_paths(False):
                    au_ref = anti_unify_reference(tree, query)
                    graft_ref = graft_reference(tree, query)
                with memo.columnar(True):
                    memo.clear_memo_caches()
                    assert anti_unify(tree, query) is au_ref
                    assert graft(tree, query) is graft_ref
                tree = graft_ref

    @given(query_log(), query_log())
    @settings(max_examples=40, deadline=None)
    def test_random_pair_parity(self, sqls_a, sqls_b):
        a = initial_difftree([parse(s) for s in sqls_a])
        b = initial_difftree([parse(s) for s in sqls_b])
        with memo.fast_paths(False):
            au_ref = anti_unify_reference(a, b)
            graft_ref = graft_reference(a, b)
        with memo.columnar(True):
            memo.clear_memo_caches()
            assert anti_unify(a, b) is au_ref
            assert graft(a, b) is graft_ref

    def test_columnar_gate_is_subordinate_to_fast_paths(self):
        assert memo.columnar_enabled()
        with memo.fast_paths(False):
            assert not memo.columnar_enabled()
        with memo.columnar(False):
            assert not memo.columnar_enabled()

    def test_memo_tables_consulted_with_columnar(self):
        a = wrap_ast(parse("select ra from stars where u between 1 and 2"))
        b = wrap_ast(parse("select ra, objid from stars where u between 1 and 3"))
        with memo.fast_paths(True), memo.columnar(True):
            memo.clear_memo_caches()
            anti_unify(a, b)
            before = INGEST.au_memo_hits
            anti_unify(a, b)
            assert INGEST.au_memo_hits > before
            tree = initial_difftree([parse("select ra from stars")])
            graft(tree, b)
            before = INGEST.graft_memo_hits
            graft(tree, b)
            assert INGEST.graft_memo_hits > before


class TestTopology:
    def naive_distance(self, parent, depth, a, b):
        d = 0
        da, db = depth[a], depth[b]
        while da > db:
            a, da, d = parent[a], da - 1, d + 1
        while db > da:
            b, db, d = parent[b], db - 1, d + 1
        while a != b:
            a, b, d = parent[a], parent[b], d + 2
        return d

    def test_matches_parent_chain_walks(self):
        rng = random.Random(41)
        for log in workload_logs():
            _, trees = session_trees(log)
            ct = ColumnarTree.from_node(trees[-1])
            topo = Topology(ct.parent)
            for _ in range(200):
                a = rng.randrange(ct.n)
                b = rng.randrange(ct.n)
                expected = self.naive_distance(ct.parent, ct.level, a, b)
                assert topo.distance(a, b) == expected
                lca = topo.lca(a, b)
                assert ct.contains(lca, a) and ct.contains(lca, b)
            touched = tuple(rng.randrange(ct.n) for _ in range(5))
            cycle = sum(
                self.naive_distance(ct.parent, ct.level, x, y)
                for x, y in zip(sorted(touched), sorted(touched)[1:])
            ) + self.naive_distance(
                ct.parent, ct.level, sorted(touched)[-1], sorted(touched)[0]
            )
            assert topo.steiner_size(touched) == cycle // 2 + 1

    def test_steiner_degenerate_cases(self):
        topo = Topology([-1, 0, 0, 1])
        assert topo.steiner_size(()) == 0
        assert topo.steiner_size((2,)) == 1
        assert topo.steiner_size((3, 3)) == 1

    def test_rejects_non_preorder_parents(self):
        with pytest.raises(ValueError):
            Topology([1, -1])

    def test_cost_kernel_uses_topology(self):
        sql = sdss_session_sql(8, seed=43)
        asts = [parse(q) for q in sql]
        tree = initial_difftree(asts)
        with memo.columnar(True):
            kernel = CostModel(asts, Screen.wide()).kernel_for(tree)
        with memo.columnar(False):
            reference = CostModel(asts, Screen.wide()).kernel_for(tree)
        assert kernel._num_pairs > 0
        assert kernel.topology is not None
        assert reference.topology is None
        assert kernel._pair_steiner == reference._pair_steiner


class TestSymbols:
    def test_interning_is_bijective_and_stable(self):
        table = SymbolTable()
        sid = table.id_of(("ALL", "Select", None))
        assert table.id_of(("ALL", "Select", None)) == sid
        assert table.symbol_of(sid) == ("ALL", "Select", None)
        assert ("ALL", "Select", None) in table
        other = table.id_of(("ANY", None, None))
        assert other != sid
        assert len(table) == 2
        assert table.stats() == {"symbols": 2}

    def test_head_symbol_equality_iff_id_equality(self):
        a = head_symbol("ALL", "ColExpr", "ra")
        b = head_symbol("ALL", "ColExpr", "ra")
        c = head_symbol("ALL", "ColExpr", "dec")
        assert a == b and a != c
        assert SYMBOLS.symbol_of(a) == ("ALL", "ColExpr", "ra")


class TestObservability:
    def test_columnar_metrics_registered(self):
        tree = wrap_ast(parse("select objid from galaxies where g between 3 and 4"))
        before = STATS.encodes
        ColumnarTree._encode(tree)
        assert STATS.encodes == before + 1
        snap = obs.snapshot()
        assert "difftree.columnar.encodes" in snap
        assert "sqlast.symbols.symbols" in snap
        assert "cache.difftree.columnar.encode.hits" in snap

    def test_encode_memo_serves_repeat_encodings(self):
        tree = wrap_ast(parse("select ra from stars where i between 5 and 6"))
        first = ColumnarTree.from_node(tree)
        assert ColumnarTree.from_node(tree) is first


class TestStreamLogKey:
    def test_matches_cache_derivations_in_both_modes(self):
        stream = LogStream()
        stream.append(*sdss_session_sql(5, seed=47))
        assert stream.log_key() == log_key(stream.asts())
        assert stream.log_key() == log_key_fast(stream.query_keys())
        with memo.fast_paths(False):
            assert stream.log_key() == log_key_reference(stream.asts())

    def test_incremental_maintenance_under_appends_and_truncate(self):
        sqls = tpch_session_sql(6, seed=53)
        stream = LogStream()
        stream.append(sqls[0])
        first = stream.log_key()
        stream.append(sqls[0])  # duplicate: key unchanged, cache valid
        assert stream.log_key() == first
        stream.append(*sqls[1:])
        assert stream.log_key() == log_key(stream.asts())
        stream.truncate(1)
        assert stream.log_key() == first
        with pytest.raises(ValueError):
            LogStream().log_key()

    def test_derivations_diverge_by_construction(self):
        stream = LogStream()
        stream.append(*sdss_session_sql(4, seed=59))
        assert log_key_fast(stream.query_keys()) != log_key_reference(stream.asts())
